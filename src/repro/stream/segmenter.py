"""Event-time watermark segmentation of live detection streams.

The batch builder (:class:`~repro.core.builder.TrajectoryBuilder`)
sees a whole corpus at once: it sorts globally by ``(mo_id, t_start,
t_end)``, repairs overlaps per moving object, and splits visits on the
inactivity gap.  A live deployment sees the same records *interleaved
across visitors* and never "at once" — something must decide that an
episode is finished while events for other visitors keep arriving.

:class:`WatermarkSegmenter` makes that decision with an event-time
**watermark**: the producer's promise that no future event will carry
``t_start`` below the watermark.  An open episode whose last record
ended more than the inactivity gap before the watermark can therefore
never be extended by an in-order event — the batch builder would have
split at that silence too — so the segmenter closes it and emits the
completed :class:`~repro.core.trajectory.SemanticTrajectory`.

**Byte-identity contract.**  Fed any corpus in per-visitor time order
(arbitrarily interleaved across visitors, which is what a live feed
delivers), the segmenter emits *exactly* the episodes the batch
builder produces, each byte-identical under canonical JSON.  Closure
order differs from the batch output order (episodes close when their
watermark passes, not sorted by visitor), so the guarantee is per
episode and store content, not store sequence — see
``docs/streaming.md``.  The contract is property-tested in
``tests/stream/``.

Events that break the in-order premise are **late**: counted, and
dropped when accepting them could contradict an already-emitted
episode.  Records sharing a ``visit_id`` are never gap-split (exactly
as in batch), but a visit that stays silent past the gap threshold
while the watermark advances is considered complete — producers
needing longer intra-visit silences must widen the gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.builder import DetectionRecord, TrajectoryBuilder
from repro.core.trajectory import (
    DETECTION_OVERLAP_TOLERANCE,
    SemanticTrajectory,
)

#: The watermark before any ``advance()`` — every event is on time.
NO_WATERMARK = float("-inf")


# ----------------------------------------------------------------------
# the wire codec for detection events
# ----------------------------------------------------------------------
def event_to_dict(record: DetectionRecord) -> Dict[str, object]:
    """A JSON-native dict for one detection event (wire shape)."""
    data: Dict[str, object] = {
        "mo_id": record.mo_id,
        "state": record.state,
        "t_start": record.t_start,
        "t_end": record.t_end,
    }
    if record.visit_id is not None:
        data["visit_id"] = record.visit_id
    if record.attributes:
        data["attributes"] = dict(record.attributes)
    return data


def event_from_dict(data: Mapping) -> DetectionRecord:
    """Parse one wire-shaped detection event.

    Raises:
        ValueError: for anything but a mapping with string
            ``mo_id``/``state`` and numeric ``t_start``/``t_end``.
    """
    try:
        mo_id = data["mo_id"]
        state = data["state"]
        if not isinstance(mo_id, str) or not isinstance(state, str):
            raise TypeError("mo_id/state must be strings")
        visit_id = data.get("visit_id")
        if visit_id is not None and not isinstance(visit_id, str):
            raise TypeError("visit_id must be a string or null")
        return DetectionRecord(
            mo_id=mo_id,
            state=state,
            t_start=float(data["t_start"]),
            t_end=float(data["t_end"]),
            visit_id=visit_id,
            attributes=dict(data.get("attributes") or {}),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ValueError(
            "malformed detection event {!r}: {}".format(data, error))


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
@dataclass
class StreamMetrics:
    """Counters of one stream's ingestion history.

    ``drops`` uses the batch pipeline's stable reason keys
    (``negative_duration``, ``zero_duration``, ``unknown_state``,
    ``overlap_contained``) plus the stream-only reasons
    ``out_of_order`` and ``late``.
    """

    events_in: int = 0
    accepted: int = 0
    drops: Dict[str, int] = field(default_factory=dict)
    overlap_clipped: int = 0
    #: events arriving with ``t_start`` behind the watermark.
    late_events: int = 0
    #: late or out-of-order events that had to be discarded.
    dropped_late: int = 0
    episodes: int = 0

    def drop(self, reason: str) -> None:
        """Count one dropped event under ``reason``."""
        self.drops[reason] = self.drops.get(reason, 0) + 1

    @property
    def dropped(self) -> int:
        """Total events dropped for any reason."""
        return sum(self.drops.values())

    def to_dict(self) -> Dict[str, object]:
        """JSON-native snapshot (stable keys, sorted drop reasons)."""
        return {
            "events_in": self.events_in,
            "accepted": self.accepted,
            "drops": {k: self.drops[k] for k in sorted(self.drops)},
            "overlap_clipped": self.overlap_clipped,
            "late_events": self.late_events,
            "dropped_late": self.dropped_late,
            "episodes": self.episodes,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "StreamMetrics":
        """Rebuild a snapshot written by :meth:`to_dict`."""
        return cls(
            events_in=int(data.get("events_in", 0)),
            accepted=int(data.get("accepted", 0)),
            drops=dict(data.get("drops") or {}),
            overlap_clipped=int(data.get("overlap_clipped", 0)),
            late_events=int(data.get("late_events", 0)),
            dropped_late=int(data.get("dropped_late", 0)),
            episodes=int(data.get("episodes", 0)),
        )


#: One open episode's key: the visitor plus its (optional) visit id.
BufferKey = Tuple[str, Optional[str]]


class WatermarkSegmenter:
    """Segments an interleaved event stream into semantic trajectories.

    Args:
        builder: the batch builder whose semantics (cleaning rules,
            overlap tolerance, NRG, annotations, gap) this stream must
            reproduce byte-identically.
        gap_seconds: override of the builder's inactivity gap.

    Events enter through :meth:`feed`; the watermark advances through
    :meth:`advance`; both return the episodes they closed.
    :meth:`close` flushes everything still open (end of stream).
    """

    def __init__(self, builder: TrajectoryBuilder,
                 gap_seconds: Optional[float] = None) -> None:
        self.builder = builder
        self.gap_seconds = (builder.visit_gap_seconds
                            if gap_seconds is None else gap_seconds)
        self.watermark = NO_WATERMARK
        self.metrics = StreamMetrics()
        #: open episodes: ``(mo_id, visit_id) -> records`` in order.
        self._buffers: Dict[BufferKey, List[DetectionRecord]] = {}
        #: per-visitor repair state — carried *across* episodes,
        #: exactly like the batch ``_resolve_overlaps`` last_end map.
        self._last_end: Dict[str, float] = {}
        #: per-visitor sort-order key of the last accepted event, for
        #: detecting out-of-order arrivals (batch sorts globally).
        self._last_key: Dict[str, Tuple[float, float]] = {}

    # -- observation ----------------------------------------------------
    @property
    def open_buffers(self) -> int:
        """Episodes currently open (distinct visitor/visit keys)."""
        return len(self._buffers)

    @property
    def open_events(self) -> int:
        """Events buffered in open episodes (the memory gauge)."""
        return sum(len(records) for records in self._buffers.values())

    # -- ingestion ------------------------------------------------------
    def feed(self, record: DetectionRecord
             ) -> List[SemanticTrajectory]:
        """Ingest one event; returns episodes this event closed.

        An event closes an episode only on the gap-split path: a
        ``visit_id``-less record arriving more than the gap after its
        visitor's open buffer finishes that buffer and starts the
        next one.
        """
        metrics = self.metrics
        metrics.events_in += 1
        reason = self.builder.classify_record(record)
        if reason is not None:
            metrics.drop(reason)
            return []
        if record.t_start < self.watermark:
            metrics.late_events += 1
        order_key = (record.t_start, record.t_end)
        previous_key = self._last_key.get(record.mo_id)
        if previous_key is not None and order_key < previous_key:
            # Behind an event this visitor already produced: the batch
            # sort would have placed it earlier, so splicing it in now
            # could rewrite an episode that may already be emitted.
            metrics.drop("out_of_order")
            metrics.dropped_late += 1
            return []
        key: BufferKey = (record.mo_id, record.visit_id)
        buffer = self._buffers.get(key)
        if buffer is None and record.t_start < self.watermark:
            # Late with no open episode to extend: its episode (if it
            # had one) closed when the watermark passed.
            metrics.drop("late")
            metrics.dropped_late += 1
            return []
        self._last_key[record.mo_id] = order_key
        previous_end = self._last_end.get(record.mo_id)
        if previous_end is not None and record.t_start \
                < previous_end - DETECTION_OVERLAP_TOLERANCE:
            if record.t_end <= previous_end:
                metrics.drop("overlap_contained")
                return []
            record = DetectionRecord(
                record.mo_id, record.state, previous_end,
                record.t_end, record.visit_id, record.attributes)
            metrics.overlap_clipped += 1
        closed: List[SemanticTrajectory] = []
        if buffer is not None and record.visit_id is None \
                and record.t_start - buffer[-1].t_end \
                > self.gap_seconds:
            closed.append(self._emit(key))
            buffer = None
        if buffer is None:
            buffer = self._buffers.setdefault(key, [])
        buffer.append(record)
        self._last_end[record.mo_id] = max(
            record.t_end,
            previous_end if previous_end is not None else record.t_end)
        metrics.accepted += 1
        return closed

    def advance(self, watermark: float) -> List[SemanticTrajectory]:
        """Advance the watermark; returns the episodes it closed.

        A regressing (or equal) watermark is a no-op — watermarks are
        monotonic by definition.  Closes every open episode whose last
        record ended more than the gap before the new watermark, in
        deterministic ``(mo_id, first t_start)`` order.
        """
        if watermark <= self.watermark:
            return []
        self.watermark = watermark
        closable = [key for key, records in self._buffers.items()
                    if watermark - records[-1].t_end > self.gap_seconds]
        closable.sort(key=lambda key: (key[0],
                                       self._buffers[key][0].t_start))
        return [self._emit(key) for key in closable]

    def close(self) -> List[SemanticTrajectory]:
        """End of stream: flush every open episode."""
        keys = sorted(self._buffers,
                      key=lambda key: (key[0],
                                       self._buffers[key][0].t_start))
        return [self._emit(key) for key in keys]

    def _emit(self, key: BufferKey) -> SemanticTrajectory:
        records = self._buffers.pop(key)
        draft = self.builder.construct_trace(records)
        self.metrics.episodes += 1
        return self.builder.annotate(draft)

    # -- checkpoint state ----------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """JSON-native snapshot of everything :meth:`load_state`
        needs to resume this stream after a restart."""
        buffers = [
            {"mo_id": key[0], "visit_id": key[1],
             "records": [event_to_dict(r) for r in records]}
            for key, records in sorted(
                self._buffers.items(),
                key=lambda item: (item[0][0], item[1][0].t_start))
        ]
        return {
            "watermark": (None if self.watermark == NO_WATERMARK
                          else self.watermark),
            "gap_seconds": self.gap_seconds,
            "buffers": buffers,
            "last_end": dict(self._last_end),
            "last_key": {mo: list(key)
                         for mo, key in self._last_key.items()},
            "metrics": self.metrics.to_dict(),
        }

    def load_state(self, state: Mapping) -> None:
        """Restore a :meth:`state_dict` snapshot (replaces all
        in-memory state)."""
        watermark = state.get("watermark")
        self.watermark = (NO_WATERMARK if watermark is None
                          else float(watermark))
        self.gap_seconds = float(state.get("gap_seconds",
                                           self.gap_seconds))
        self._buffers = {
            (entry["mo_id"], entry.get("visit_id")):
                [event_from_dict(r) for r in entry["records"]]
            for entry in state.get("buffers", ())
        }
        self._last_end = {str(mo): float(end) for mo, end
                          in (state.get("last_end") or {}).items()}
        self._last_key = {str(mo): (float(key[0]), float(key[1]))
                          for mo, key
                          in (state.get("last_key") or {}).items()}
        self.metrics = StreamMetrics.from_dict(
            state.get("metrics") or {})
