"""Live trajectory ingestion (`repro.stream`).

Turns the batch-replay engine into a live trajectory feed: interleaved
``(visitor, position, timestamp)`` events from many concurrent
visitors enter through a bounded, back-pressure-aware source, are
segmented into episodes by an event-time **watermark segmenter**, and
every closed episode lands in the session's store through the same
WAL-journaled write path a batch build uses — so a replayed corpus is
byte-identical to its batch build, and an acked event survives
``kill -9``.

Layers:

* :mod:`repro.stream.segmenter` — the watermark segmenter
  (:class:`WatermarkSegmenter`) and the wire codec for detection
  events;
* :mod:`repro.stream.backpressure` — bounded inter-stage queues with
  blocking/shedding policies (:class:`BoundedBuffer`,
  :func:`bounded_iter`);
* :mod:`repro.stream.manager` — durable server-side streams
  (:class:`StreamManager`): the event journal, auto-checkpoint and
  crash recovery behind the ``OpenStream`` / ``AppendEvents`` /
  ``StreamStatus`` / ``CloseStream`` protocol family.

See ``docs/streaming.md`` for the watermark and durability contracts.
"""

from repro.stream.backpressure import BoundedBuffer, bounded_iter
from repro.stream.manager import (
    StreamManager,
    StreamOverloadedError,
    UnknownStreamError,
    stream_manager,
)
from repro.stream.segmenter import (
    StreamMetrics,
    WatermarkSegmenter,
    event_from_dict,
    event_to_dict,
)

__all__ = [
    "BoundedBuffer",
    "StreamManager",
    "StreamMetrics",
    "StreamOverloadedError",
    "UnknownStreamError",
    "WatermarkSegmenter",
    "bounded_iter",
    "event_from_dict",
    "event_to_dict",
    "stream_manager",
]
