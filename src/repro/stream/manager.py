"""Durable server-side streams: journal, auto-checkpoint, recovery.

A :class:`StreamManager` owns the live streams of one
:class:`~repro.service.registry.SessionRegistry` — the state behind
the ``OpenStream`` / ``AppendEvents`` / ``StreamStatus`` /
``CloseStream`` protocol family.  Each stream pairs a
:class:`~repro.stream.segmenter.WatermarkSegmenter` with a sidecar
**event journal** under the session's durable directory::

    <session dir>/streams/<stream>/
      events.log          appended event batches (WAL discipline)
      stream-state.json   segmenter snapshot + journal watermark

**Durability contract.**  ``AppendEvents`` acks only after the batch
is fsynced to the journal; episodes the batch closes are stored
through the session's normal write path, so they ride the session WAL
(the "piggy-back").  Every ``checkpoint_every`` closed episodes the
stream folds its journal: the segmenter snapshot is written atomically
with the journal's sequence watermark, then the journal truncates.
After ``kill -9``, recovery is *snapshot + journal-tail replay* —
events still buffered in open episodes come back from the journal,
episodes already stored come back from the session WAL, and replayed
episodes that the session WAL already holds are deduplicated by
canonical content (replay is deterministic, so an already-stored
episode regenerates byte-identically).  Net effect: zero acked-event
loss, no double-stored episodes.

**Back-pressure.**  A stream bounds its open-episode memory with
``max_open_events``; an append that would exceed it is rejected with
:class:`StreamOverloadedError` (mapped to a typed ``overloaded`` 503)
rather than buffered — blocking server-side would deadlock, since the
only thing that drains open episodes is a *later* append or watermark.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from typing import IO, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.core.builder import TrajectoryBuilder
from repro.core.trajectory import SemanticTrajectory
from repro.persist.format import PersistError
from repro.service.protocol import canonical_json
from repro.stream.segmenter import (
    NO_WATERMARK,
    WatermarkSegmenter,
    event_from_dict,
)

#: Subdirectory of a durable session holding its stream sidecars.
STREAMS_DIR = "streams"
STATE_NAME = "stream-state.json"
JOURNAL_NAME = "events.log"

DEFAULT_CHECKPOINT_EVERY = 64
DEFAULT_MAX_OPEN_EVENTS = 100_000


class UnknownStreamError(KeyError):
    """Lookup of a stream the session does not hold."""


class StreamOverloadedError(RuntimeError):
    """An append was rejected to bound open-episode memory."""


def _journal_crc(events: List[dict], seq: int,
                 watermark: Optional[float]) -> str:
    raw = canonical_json({"events": events, "seq": seq,
                          "watermark": watermark})
    return hashlib.sha256(raw).hexdigest()[:16]


class EventJournal:
    """Append-only event-batch log with the WAL's crash discipline.

    One JSON line per acked append::

        {"crc": "...", "events": [...], "seq": N, "watermark": W}

    Sequences increase strictly; a torn/corrupt/non-monotonic tail
    marks the end of the valid log (replay stops, the next append
    truncates it).  Single-writer by construction — the owning
    stream's lock serializes appends — so no group commit here.
    """

    def __init__(self, path: str, fsync: bool = True,
                 start_seq: int = 1) -> None:
        self.path = path
        self.fsync = fsync
        self._sink: Optional[IO[bytes]] = None
        last_seq = 0
        valid = 0
        for seq, _, _, end in self._iter_raw():
            last_seq = seq
            valid = end
        self._next_seq = max(int(start_seq), last_seq + 1)
        self._valid_bytes = valid

    def _iter_raw(self) -> Iterator[
            Tuple[int, List[dict], Optional[float], int]]:
        try:
            source = open(self.path, "rb")
        except FileNotFoundError:
            return
        with source:
            offset = 0
            last_seq = 0
            for line in source:
                end = offset + len(line)
                if not line.endswith(b"\n"):
                    return  # torn final write
                try:
                    record = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, ValueError):
                    return
                if not isinstance(record, dict):
                    return
                seq = record.get("seq")
                events = record.get("events")
                watermark = record.get("watermark")
                if not isinstance(seq, int) \
                        or not isinstance(events, list) \
                        or seq <= last_seq:
                    return
                if record.get("crc") != _journal_crc(events, seq,
                                                     watermark):
                    return
                yield seq, events, watermark, end
                last_seq = seq
                offset = end

    def records(self, after_seq: int = 0) -> Iterator[
            Tuple[int, List[dict], Optional[float]]]:
        """Valid records with ``seq > after_seq``, oldest first."""
        for seq, events, watermark, _ in self._iter_raw():
            if seq > after_seq:
                yield seq, events, watermark

    @property
    def last_seq(self) -> int:
        """Highest sequence allocated so far (0 when none)."""
        return self._next_seq - 1

    def _open_sink(self) -> IO[bytes]:
        if self._sink is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            sink = open(self.path, "ab")
            if sink.tell() > self._valid_bytes:
                sink.truncate(self._valid_bytes)
                sink.seek(self._valid_bytes)
            self._sink = sink
        return self._sink

    def append(self, events: List[dict],
               watermark: Optional[float]) -> int:
        """Durably append one batch; returns its sequence number.

        Raises:
            PersistError: when the write or fsync fails (the batch is
                then *not* acked; the reopened sink truncates any torn
                bytes first).
        """
        seq = self._next_seq
        line = canonical_json({
            "crc": _journal_crc(events, seq, watermark),
            "events": events, "seq": seq, "watermark": watermark,
        }) + b"\n"
        try:
            sink = self._open_sink()
            sink.write(line)
            sink.flush()
            if self.fsync:
                os.fsync(sink.fileno())
        except OSError as error:
            self.close()
            raise PersistError("cannot append to journal {}: {}"
                               .format(self.path, error))
        self._next_seq = seq + 1
        self._valid_bytes += len(line)
        return seq

    def reset(self, next_seq: Optional[int] = None) -> None:
        """Truncate after a checkpoint; sequences keep climbing."""
        self.close()
        try:
            with open(self.path, "wb"):
                pass
        except FileNotFoundError:
            pass
        except OSError as error:
            raise PersistError("cannot reset journal {}: {}"
                               .format(self.path, error))
        self._valid_bytes = 0
        if next_seq is not None:
            self._next_seq = max(self._next_seq, int(next_seq))

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()
            self._sink = None


class ServerStream:
    """One live stream bound to a session (internal to the manager).

    All mutation happens under :attr:`lock`; the lock order is stream
    lock → session ``build_lock`` (never the reverse).
    """

    def __init__(self, registry, session_name: str, name: str,
                 segmenter: WatermarkSegmenter,
                 directory: Optional[str],
                 fsync: bool = True,
                 checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
                 max_open_events: int = DEFAULT_MAX_OPEN_EVENTS,
                 relay: bool = False) -> None:
        self.registry = registry
        self.session_name = session_name
        self.name = name
        self.segmenter = segmenter
        self.directory = directory
        self.fsync = fsync
        self.checkpoint_every = max(1, int(checkpoint_every))
        self.max_open_events = max(1, int(max_open_events))
        #: Relay mode (coordinator shards): closed episodes queue in
        #: :attr:`pending` and leave through append/close acks instead
        #: of entering the local session store — the harvester routes
        #: them by global id.  ``pending`` rides the checkpoint state,
        #: so a fold never strands an undelivered episode.
        self.relay = bool(relay)
        self.pending: List[SemanticTrajectory] = []
        self.lock = threading.Lock()
        self.journal: Optional[EventJournal] = None
        if directory is not None:
            self.journal = EventJournal(
                os.path.join(directory, JOURNAL_NAME), fsync=fsync)
        #: events durably acknowledged (journaled, or — memory-only
        #: streams — accepted into the segmenter).
        self.events_acked = 0
        #: episodes handed to the session store (WAL-journaled).
        self.episodes_stored = 0
        self.checkpoints = 0
        self._episodes_at_checkpoint = 0

    # -- the ingest path ------------------------------------------------
    def append(self, events: List[Mapping],
               watermark: Optional[float]) -> Dict[str, object]:
        """Journal, segment and store one event batch.

        Raises:
            ValueError: malformed events (nothing is acked).
            StreamOverloadedError: accepting the batch would exceed
                ``max_open_events`` buffered events.
            PersistError: the journal write failed (nothing is acked).
        """
        records = [event_from_dict(event) for event in events]
        with self.lock:
            if self.segmenter.open_events + len(records) \
                    > self.max_open_events:
                raise StreamOverloadedError(
                    "stream {!r} has {} events open (cap {}); retry "
                    "after the watermark advances".format(
                        self.name, self.segmenter.open_events,
                        self.max_open_events))
            if self.journal is not None \
                    and (records or watermark is not None):
                # A pure poll (no events, no watermark) changes no
                # replayable state — don't grow the journal for it.
                self.journal.append([dict(e) for e in events],
                                    watermark)
            closed = []
            for record in records:
                closed.extend(self.segmenter.feed(record))
            if watermark is not None:
                closed.extend(self.segmenter.advance(watermark))
            if closed:
                self._store(closed)
            self.events_acked += len(records)
            if self.journal is not None \
                    and (self.segmenter.metrics.episodes
                         - self._episodes_at_checkpoint
                         >= self.checkpoint_every):
                self._checkpoint()
            result = {"appended": len(records),
                      "episodes_closed": len(closed),
                      "seq": (self.journal.last_seq
                              if self.journal is not None else 0)}
            if self.relay:
                result["episodes"] = self._drain_pending()
            return result

    def _store(self, episodes) -> None:
        """Closed episodes enter through the session's write path —
        the store WAL-journals them before indexing (caller holds the
        stream lock).  Relay streams queue them for the harvester
        instead; durability then comes from the event journal plus
        the pending list riding every checkpoint state."""
        if self.relay:
            self.pending.extend(episodes)
        else:
            session = self.registry.get(self.session_name)
            with session.build_lock:
                session.workbench.store.extend(episodes)
        self.episodes_stored += len(episodes)

    def _drain_pending(self) -> List[Dict]:
        """Hand every undelivered episode to the caller (relay mode;
        caller holds the stream lock).  At-least-once: a crash after
        the drain but before the harvester ingests regenerates these
        from the journal (or the checkpointed pending list), so the
        harvester must deduplicate by canonical content."""
        drained = [episode.to_dict() for episode in self.pending]
        self.pending = []
        return drained

    # -- checkpoint / recovery ------------------------------------------
    def state_payload(self) -> Dict[str, object]:
        payload = {
            "format": 1,
            "session": self.session_name,
            "stream": self.name,
            "checkpoint_every": self.checkpoint_every,
            "max_open_events": self.max_open_events,
            "events_acked": self.events_acked,
            "episodes_stored": self.episodes_stored,
            "checkpoints": self.checkpoints,
            "journal_seq": (self.journal.last_seq
                            if self.journal is not None else 0),
            "segmenter": self.segmenter.state_dict(),
        }
        if self.relay:
            payload["relay"] = True
            payload["pending"] = [episode.to_dict()
                                  for episode in self.pending]
        return payload

    def write_state(self) -> None:
        """Atomically persist :meth:`state_payload` (tmp + rename)."""
        if self.directory is None:
            return
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(self.directory, STATE_NAME)
        temp = path + ".tmp"
        try:
            with open(temp, "wb") as sink:
                sink.write(canonical_json(self.state_payload()))
                sink.write(b"\n")
                sink.flush()
                if self.fsync:
                    os.fsync(sink.fileno())
            os.replace(temp, path)
        except OSError as error:
            raise PersistError("cannot write stream state {}: {}"
                               .format(path, error))

    def checkpoint(self) -> None:
        """Fold the journal: snapshot the segmenter, truncate."""
        with self.lock:
            self._checkpoint()

    def _checkpoint(self) -> None:
        if self.directory is None:
            self._episodes_at_checkpoint = \
                self.segmenter.metrics.episodes
            return
        self.checkpoints += 1  # counted before the write so the
        self.write_state()     # persisted state includes this fold
        if self.journal is not None:
            self.journal.reset()
        self._episodes_at_checkpoint = self.segmenter.metrics.episodes

    def recover(self) -> None:
        """Replay the journal tail over the snapshot state.

        The state file (when present) restores the segmenter and
        counters as of the last checkpoint; journal records past its
        sequence watermark re-feed the segmenter.  Episodes the
        replay closes are stored *unless the session store already
        holds a byte-identical document* — replay is deterministic,
        so an episode stored (via the session WAL) before the crash
        regenerates byte-for-byte and is skipped, never duplicated.
        """
        if self.directory is None:
            return
        state_path = os.path.join(self.directory, STATE_NAME)
        journal_seq = 0
        try:
            with open(state_path, "rb") as source:
                state = json.load(source)
        except (OSError, ValueError):
            state = None  # no (or torn) checkpoint: journal has all
        if state is not None:
            self.checkpoint_every = max(1, int(
                state.get("checkpoint_every", self.checkpoint_every)))
            self.max_open_events = max(1, int(
                state.get("max_open_events", self.max_open_events)))
            self.events_acked = int(state.get("events_acked", 0))
            self.episodes_stored = int(state.get("episodes_stored", 0))
            self.checkpoints = int(state.get("checkpoints", 0))
            journal_seq = int(state.get("journal_seq", 0))
            self.segmenter.load_state(state.get("segmenter") or {})
            self.relay = bool(state.get("relay", self.relay))
            self.pending = [SemanticTrajectory.from_dict(item)
                            for item in state.get("pending") or []]
        self._episodes_at_checkpoint = self.segmenter.metrics.episodes
        if self.journal is None:
            return
        if self.relay:
            # Relay replay: regenerated episodes queue for the
            # harvester again — at-least-once, deduplicated there.
            for _, events, watermark in self.journal.records(
                    after_seq=journal_seq):
                closed = []
                for event in events:
                    closed.extend(self.segmenter.feed(
                        event_from_dict(event)))
                if watermark is not None:
                    closed.extend(self.segmenter.advance(watermark))
                self.events_acked += len(events)
                if closed:
                    self._store(closed)
            return
        stored_bytes = None
        session = self.registry.get(self.session_name)
        for _, events, watermark in self.journal.records(
                after_seq=journal_seq):
            closed = []
            for event in events:
                closed.extend(self.segmenter.feed(
                    event_from_dict(event)))
            if watermark is not None:
                closed.extend(self.segmenter.advance(watermark))
            self.events_acked += len(events)
            if not closed:
                continue
            if stored_bytes is None:
                stored_bytes = {canonical_json(t.to_dict())
                                for t in session.workbench.store}
            fresh = [t for t in closed
                     if canonical_json(t.to_dict())
                     not in stored_bytes]
            if fresh:
                self._store(fresh)
            self.episodes_stored += len(closed) - len(fresh)

    # -- observation ----------------------------------------------------
    def status(self) -> Dict[str, object]:
        """JSON-native snapshot for ``StreamStatus`` and health."""
        with self.lock:
            metrics = self.segmenter.metrics
            watermark = self.segmenter.watermark
            return {
                "session": self.session_name,
                "stream": self.name,
                "watermark": (None if watermark == NO_WATERMARK
                              else watermark),
                "open_buffers": self.segmenter.open_buffers,
                "open_events": self.segmenter.open_events,
                "events_in": metrics.events_in,
                "accepted": metrics.accepted,
                "drops": dict(metrics.drops),
                "late_events": metrics.late_events,
                "dropped_late": metrics.dropped_late,
                "episodes": metrics.episodes,
                "events_acked": self.events_acked,
                "episodes_stored": self.episodes_stored,
                "checkpoints": self.checkpoints,
                "durable": self.journal is not None,
                "max_open_events": self.max_open_events,
                "relay": self.relay,
                "pending": len(self.pending),
            }

    def close(self) -> Dict[str, object]:
        """Flush every open episode and retire the sidecar files."""
        with self.lock:
            closed = self.segmenter.close()
            if closed:
                self._store(closed)
            summary = {"episodes_closed": len(closed),
                       "episodes_total": self.episodes_stored,
                       "events_acked": self.events_acked}
            if self.relay:
                summary["episodes"] = self._drain_pending()
            if self.journal is not None:
                self.journal.close()
            if self.directory is not None:
                # A closed stream's episodes live in the session
                # store/WAL; the sidecar has nothing left to say.
                for name in (JOURNAL_NAME, STATE_NAME):
                    try:
                        os.unlink(os.path.join(self.directory, name))
                    except OSError:
                        pass
                try:
                    os.rmdir(self.directory)
                except OSError:
                    pass
            return summary


class StreamManager:
    """The registry's stream table (created lazily per registry).

    Keyed by ``(session, stream)``.  Streams of durable sessions get
    a journal + checkpoint sidecar and are **recovered lazily**: a
    stream found on disk but not in memory (the post-restart case) is
    rebuilt on first access, replaying its journal tail.
    """

    def __init__(self, registry) -> None:
        self.registry = registry
        self._streams: Dict[Tuple[str, str], ServerStream] = {}
        self._lock = threading.Lock()

    # -- plumbing -------------------------------------------------------
    def _directory_for(self, session, stream: str) -> Optional[str]:
        if session.durable is None:
            return None
        from urllib.parse import quote

        return os.path.join(session.durable.directory, STREAMS_DIR,
                            quote(stream, safe=""))

    def _builder_for(self, session) -> TrajectoryBuilder:
        space = session.workbench.space
        if space is None:
            from repro.louvre.space import LouvreSpace

            space = LouvreSpace()
            session.workbench.space = space
        return TrajectoryBuilder(space.dataset_zone_nrg())

    def _fsync(self) -> bool:
        return bool(getattr(self.registry, "_fsync", True))

    # -- the protocol surface -------------------------------------------
    def open(self, session_name: str, stream: str,
             gap_seconds: Optional[float] = None,
             checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
             max_open_events: int = DEFAULT_MAX_OPEN_EVENTS,
             relay: bool = False) -> ServerStream:
        """Open (or return the already-open) named stream.

        Creates the session on first use, like ingest does.  An
        existing open stream is returned as-is (idempotent) — the
        shape arguments of the first open win.
        """
        session = self.registry.create(session_name)
        key = (session_name, stream)
        with self._lock:
            existing = self._streams.get(key)
            if existing is not None:
                return existing
            recovered = self._recover_locked(session, stream,
                                             relay=relay)
            if recovered is not None:
                return recovered
            segmenter = WatermarkSegmenter(
                self._builder_for(session), gap_seconds=gap_seconds)
            server_stream = ServerStream(
                self.registry, session_name, stream, segmenter,
                self._directory_for(session, stream),
                fsync=self._fsync(),
                checkpoint_every=checkpoint_every,
                max_open_events=max_open_events,
                relay=relay)
            # The initial checkpoint records the stream's shape, so a
            # restart before the first fold still knows the stream.
            server_stream.write_state()
            self._streams[key] = server_stream
            return server_stream

    def get(self, session_name: str, stream: str) -> ServerStream:
        """The named stream, lazily recovered from disk.

        Raises:
            UnknownStreamError: never opened (or already closed).
        """
        key = (session_name, stream)
        with self._lock:
            held = self._streams.get(key)
            if held is not None:
                return held
            try:
                session = self.registry.get(session_name)
            except KeyError:
                # A stream that acked events but never closed an
                # episode leaves no session WAL, so a restarted
                # registry does not restore the session — only the
                # stream sidecar proves it existed.  Recreate the
                # session iff the sidecar is on disk.
                if self._sidecar_path(session_name, stream) is None:
                    raise UnknownStreamError(stream)
                session = self.registry.create(session_name)
            recovered = self._recover_locked(session, stream)
            if recovered is not None:
                return recovered
            raise UnknownStreamError(stream)

    def _sidecar_path(self, session_name: str,
                      stream: str) -> Optional[str]:
        """The stream's on-disk sidecar directory, or ``None`` when
        absent (mirrors the registry's percent-quoted layout)."""
        persist_dir = getattr(self.registry, "persist_dir", None)
        if persist_dir is None:
            return None
        from urllib.parse import quote

        path = os.path.join(persist_dir, quote(session_name, safe=""),
                            STREAMS_DIR, quote(stream, safe=""))
        return path if os.path.isdir(path) else None

    def _recover_locked(self, session, stream: str,
                        relay: bool = False
                        ) -> Optional[ServerStream]:
        """Rebuild a stream from its sidecar directory, if present.

        ``relay`` is only the fallback for a sidecar whose state file
        is missing or torn — a checkpointed state overrides it."""
        directory = self._directory_for(session, stream)
        if directory is None or not os.path.isdir(directory):
            return None
        segmenter = WatermarkSegmenter(self._builder_for(session))
        server_stream = ServerStream(
            self.registry, session.name, stream, segmenter,
            directory, fsync=self._fsync(), relay=relay)
        server_stream.recover()
        self._streams[(session.name, stream)] = server_stream
        return server_stream

    def close(self, session_name: str, stream: str
              ) -> Dict[str, object]:
        """Flush and retire a stream.

        Raises:
            UnknownStreamError: never opened (or already closed).
        """
        server_stream = self.get(session_name, stream)
        with self._lock:
            self._streams.pop((session_name, stream), None)
        return server_stream.close()

    def streams(self) -> List[ServerStream]:
        """Every open stream, insertion-ordered."""
        with self._lock:
            return list(self._streams.values())

    def report(self) -> Dict[str, object]:
        """Aggregate stream counters for ``GET /v1/health``."""
        statuses = [s.status() for s in self.streams()]
        watermarks = [s["watermark"] for s in statuses
                      if s["watermark"] is not None]
        return {
            "open": len(statuses),
            "events_acked": sum(s["events_acked"] for s in statuses),
            "open_events": sum(s["open_events"] for s in statuses),
            "episodes_stored": sum(s["episodes_stored"]
                                   for s in statuses),
            "late_events": sum(s["late_events"] for s in statuses),
            "dropped_late": sum(s["dropped_late"] for s in statuses),
            "watermark_min": (min(watermarks) if watermarks
                              else None),
        }


#: Per-registry manager table — attached lazily so the registry
#: module never imports this one (the service layer stays free of a
#: stream dependency until a stream command actually arrives).
_MANAGERS_LOCK = threading.Lock()


def stream_manager(registry) -> StreamManager:
    """The (lazily created) stream manager of a registry."""
    manager = getattr(registry, "_stream_manager", None)
    if manager is None:
        with _MANAGERS_LOCK:
            manager = getattr(registry, "_stream_manager", None)
            if manager is None:
                manager = StreamManager(registry)
                registry._stream_manager = manager
    return manager
