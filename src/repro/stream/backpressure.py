"""Bounded inter-stage buffers: back-pressure for stream sources.

An unbounded queue between a fast producer and a slow consumer is a
memory leak with extra steps.  :class:`BoundedBuffer` is the bounded
alternative with the two policies a stream pipeline needs:

* ``block`` — a full buffer makes :meth:`put` wait, so the producer
  runs at the consumer's pace (lossless back-pressure);
* ``shed`` — a full buffer makes :meth:`put` drop the item and count
  it, so the producer never stalls (lossy, for best-effort telemetry
  feeds).

:func:`bounded_iter` is the pipeline bridge: it drives any record
iterable from a daemon thread through a :class:`BoundedBuffer` and
yields from it, turning an unbounded source into a back-pressured one
— the pipeline engine pulling slowly throttles the producer thread to
at most ``capacity`` items of lead.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Iterable, Iterator, Optional, TypeVar

T = TypeVar("T")

#: Accepted overflow policies.
POLICIES = ("block", "shed")


class BufferClosed(RuntimeError):
    """:meth:`BoundedBuffer.put` after :meth:`BoundedBuffer.close`."""


class BoundedBuffer:
    """A thread-safe bounded FIFO with back-pressure counters.

    Args:
        capacity: maximum buffered items (>= 1).
        policy: ``"block"`` (producer waits) or ``"shed"`` (overflow
            items are dropped and counted).

    Counters ``puts`` / ``gets`` / ``sheds`` / ``blocked`` expose what
    the buffer did; ``blocked`` counts the times a ``block`` put had
    to wait, i.e. how often back-pressure actually throttled the
    producer.
    """

    def __init__(self, capacity: int, policy: str = "block") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1, got {}".format(
                capacity))
        if policy not in POLICIES:
            raise ValueError("unknown policy {!r}; one of: {}".format(
                policy, ", ".join(POLICIES)))
        self.capacity = capacity
        self.policy = policy
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self.puts = 0
        self.gets = 0
        self.sheds = 0
        self.blocked = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` was called."""
        return self._closed

    def put(self, item: T, timeout: Optional[float] = None) -> bool:
        """Offer one item; returns True when it was buffered.

        Under ``block`` a full buffer waits (up to ``timeout``
        seconds; ``None`` waits forever) and returns False only on
        timeout.  Under ``shed`` a full buffer drops the item
        immediately (counted in ``sheds``) and returns False.

        Raises:
            BufferClosed: when the buffer was closed.
        """
        with self._not_full:
            if self._closed:
                raise BufferClosed("put() on a closed buffer")
            if len(self._items) >= self.capacity:
                if self.policy == "shed":
                    self.sheds += 1
                    return False
                self.blocked += 1
                if not self._not_full.wait_for(
                        lambda: self._closed
                        or len(self._items) < self.capacity,
                        timeout=timeout):
                    return False
                if self._closed:
                    raise BufferClosed("put() on a closed buffer")
            self._items.append(item)
            self.puts += 1
            self._not_empty.notify()
            return True

    def get(self, timeout: Optional[float] = None):
        """Take the oldest item, waiting up to ``timeout`` seconds.

        Returns ``None`` when the buffer is closed and drained, or on
        timeout (closed-and-drained is the end-of-stream signal; a
        ``None`` item is not distinguishable, so don't buffer
        ``None``).
        """
        with self._not_empty:
            if not self._not_empty.wait_for(
                    lambda: self._items or self._closed,
                    timeout=timeout):
                return None
            if not self._items:
                return None  # closed and drained
            item = self._items.popleft()
            self.gets += 1
            self._not_full.notify()
            return item

    def close(self) -> None:
        """No further puts; pending gets drain what is buffered."""
        with self._lock:
            self._closed = True
            self._not_full.notify_all()
            self._not_empty.notify_all()

    def __iter__(self) -> Iterator:
        """Drain until closed-and-empty (a blocking ``get`` loop)."""
        while True:
            item = self.get()
            if item is None:
                return
            yield item

    def report(self) -> dict:
        """JSON-native counter snapshot."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "policy": self.policy,
                "depth": len(self._items),
                "puts": self.puts,
                "gets": self.gets,
                "sheds": self.sheds,
                "blocked": self.blocked,
            }


def bounded_iter(source: Iterable[T], capacity: int = 1024,
                 policy: str = "block",
                 buffer: Optional[BoundedBuffer] = None
                 ) -> Iterator[T]:
    """Yield ``source`` through a bounded buffer fed by a thread.

    The producer thread pushes source items into the buffer; the
    caller pulls them out.  With the default ``block`` policy a slow
    caller throttles the producer to ``capacity`` items of lead —
    memory stays O(capacity) no matter how fast the source is.  A
    source exception re-raises at the consumer, after the buffered
    items drain.

    Args:
        source: any iterable (e.g. a pipeline record source).
        capacity / policy: buffer shape, as :class:`BoundedBuffer`.
        buffer: an existing buffer to feed (capacity/policy ignored)
            — lets callers watch the counters while iterating.
    """
    queue = buffer if buffer is not None \
        else BoundedBuffer(capacity, policy=policy)
    failure: list = []

    def produce() -> None:
        try:
            for item in source:
                try:
                    queue.put(item)
                except BufferClosed:
                    return  # consumer went away first
        except BaseException as error:  # re-raised consumer-side
            failure.append(error)
        finally:
            queue.close()

    thread = threading.Thread(target=produce,
                              name="repro-stream-source", daemon=True)
    thread.start()
    try:
        for item in queue:
            yield item
        if failure:
            raise failure[0]
    finally:
        queue.close()  # unblock the producer if we exit early
