"""The append-only write-ahead log.

One log = one file of JSON lines, each line a *record*::

    {"crc": "<sha256[:16] of the payload>", "docs": [...], "seq": N}

where ``docs`` are :meth:`SemanticTrajectory.to_dict
<repro.core.trajectory.SemanticTrajectory.to_dict>` payloads and
``seq`` increases strictly monotonically across the log's whole
lifetime — it never restarts, even across :meth:`reset` — so a
snapshot can record the highest sequence it folded in (its
``wal_seq`` watermark) and recovery replays exactly the records past
it, regardless of crashes between "snapshot written" and "log
truncated".

Durability and crash tolerance:

* ``append`` returns only after its record is written, flushed, and
  (by default) fsynced — an acknowledged append survives a process
  kill.
* A torn final write (partial line, bad JSON, checksum mismatch,
  non-monotonic sequence) marks the *end* of the valid log: replay
  stops there, and the next ``append`` truncates the garbage tail
  first.  Every valid prefix of a log is itself a valid log, which is
  what the crash-recovery property tests exercise.

Group commit
------------

``append`` is thread-safe, and concurrent appenders **share**
fsyncs rather than queueing behind them: each appender encodes its
record under the sequencing mutex, enqueues the line, and blocks on
the commit barrier; whichever thread finds no flush in progress
becomes the *leader*, writes every queued line in one ``write`` and
one ``fsync``, then wakes the group.  An appender's ack still means
"this exact record is on stable storage" — durability semantics are
unchanged — but under N concurrent writers the per-record fsync cost
drops toward 1/N (:attr:`group_flushes` vs :attr:`appends` shows the
achieved coalescing).  A failed flush fails exactly the appenders
whose lines were in that group; later appends retry on a reopened,
truncated-to-valid sink.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from typing import IO, Iterator, List, Optional, Sequence, Tuple

from repro.core.trajectory import SemanticTrajectory
from repro.persist.format import PersistError
from repro.service.protocol import canonical_json


def _payload_crc(docs: List[dict], seq: int) -> str:
    raw = canonical_json({"docs": docs, "seq": seq})
    return hashlib.sha256(raw).hexdigest()[:16]


class WriteAheadLog:
    """An append-only trajectory log with checksummed records.

    Args:
        path: the log file (created on first append).
        fsync: fsync after every append (the durability default);
            ``False`` trades an acknowledged-write guarantee for
            append throughput.
        start_seq: lowest sequence number the *next* append may use;
            the opener passes the current snapshot's watermark + 1 so
            sequences stay monotonic even when the log file itself
            was truncated away.
    """

    def __init__(self, path: str, fsync: bool = True,
                 start_seq: int = 1) -> None:
        self.path = path
        self.fsync = fsync
        self._sink: Optional[IO[bytes]] = None
        last_seq, valid_bytes = self._scan()
        self._next_seq = max(int(start_seq), last_seq + 1)
        self._valid_bytes = valid_bytes
        # Group-commit state: the condition's mutex orders sequence
        # allocation and the pending queue; the barrier fields track
        # which sequences are on stable storage (committed), being
        # flushed by a leader, or died with a failed flush.
        self._commit = threading.Condition(threading.Lock())
        self._pending: List[bytes] = []
        self._pending_last_seq = self._next_seq - 1
        self._committed_seq = self._next_seq - 1
        self._flushing = False
        self._failed_upto = 0
        self._flush_error: Optional[PersistError] = None
        #: Appends acknowledged over the log's lifetime.
        self.appends = 0
        #: Physical ``write``+fsync groups that carried them; the
        #: ratio to :attr:`appends` is the group-commit coalescing.
        self.group_flushes = 0

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def _scan(self) -> Tuple[int, int]:
        """``(last valid seq, valid byte length)`` of the file."""
        last_seq = 0
        valid = 0
        for seq, _, end in self._iter_raw():
            last_seq = seq
            valid = end
        return last_seq, valid

    def _iter_raw(self) -> Iterator[Tuple[int, List[dict], int]]:
        """Yield ``(seq, docs, end_offset)`` per valid record.

        Stops silently at the first torn/corrupt/non-monotonic
        record — the crash-recovery contract — so a truncated tail
        never poisons the valid prefix before it.
        """
        try:
            source = open(self.path, "rb")
        except FileNotFoundError:
            return
        with source:
            offset = 0
            last_seq = 0
            for line in source:
                end = offset + len(line)
                if not line.endswith(b"\n"):
                    return  # torn final write
                try:
                    record = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, ValueError):
                    return
                if not isinstance(record, dict):
                    return
                seq = record.get("seq")
                docs = record.get("docs")
                if not isinstance(seq, int) \
                        or not isinstance(docs, list) \
                        or seq <= last_seq:
                    return
                if record.get("crc") != _payload_crc(docs, seq):
                    return
                yield seq, docs, end
                last_seq = seq
                offset = end

    def records(self, after_seq: int = 0
                ) -> Iterator[Tuple[int, List[SemanticTrajectory]]]:
        """Valid records with ``seq > after_seq``, oldest first.

        Raises:
            PersistError: when a *checksum-valid* record fails to
                decode into trajectories (a format bug, not a torn
                write — this must not be silently skipped).
        """
        for seq, docs, _ in self._iter_raw():
            if seq <= after_seq:
                continue
            try:
                yield seq, [SemanticTrajectory.from_dict(doc)
                            for doc in docs]
            except (KeyError, TypeError, ValueError) as error:
                raise PersistError(
                    "undecodable log record seq={}: {}".format(
                        seq, error))

    def replay_into(self, store, after_seq: int = 0) -> int:
        """Apply every record past ``after_seq`` to ``store``.

        The store must *not* have this log attached while replaying
        (it would re-log its own recovery).  Returns the highest
        sequence applied (``after_seq`` when none were).
        """
        last = after_seq
        for seq, batch in self.records(after_seq):
            store.extend(batch)
            last = seq
        return last

    @property
    def last_seq(self) -> int:
        """Highest sequence number allocated so far (0 when none).

        This is the watermark a checkpoint records: every record at
        or below it is covered by the snapshot being written.
        """
        return self._next_seq - 1

    def __len__(self) -> int:
        return sum(1 for _ in self._iter_raw())

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _open_sink(self) -> IO[bytes]:
        if self._sink is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            sink = open(self.path, "ab")
            # Drop a torn tail before the first new write, so the
            # file stays one valid prefix.
            if sink.tell() > self._valid_bytes:
                sink.truncate(self._valid_bytes)
                sink.seek(self._valid_bytes)
            self._sink = sink
        return self._sink

    def append(self, trajectories: Sequence[SemanticTrajectory]
               ) -> int:
        """Durably append one batch; returns its sequence number.

        Empty batches are not logged (returns :attr:`last_seq`).
        Thread-safe: concurrent appenders are group-committed (one
        ``write`` + one ``fsync`` per group — see the module notes);
        the return still means the record is on stable storage.

        Raises:
            PersistError: when the flush carrying this record fails.
        """
        batch = list(trajectories)
        if not batch:
            with self._commit:
                return self._next_seq - 1
        # The expensive, sequence-independent half of encoding stays
        # outside the mutex.
        docs = [trajectory.to_dict() for trajectory in batch]
        with self._commit:
            seq = self._next_seq
            self._next_seq = seq + 1
            # Encoded under the mutex: lines must enter the queue in
            # sequence order, or a flush could persist a gap-free
            # file whose sequences run backwards (replay would stop).
            line = canonical_json({"crc": _payload_crc(docs, seq),
                                   "docs": docs, "seq": seq}) + b"\n"
            self._pending.append(line)
            self._pending_last_seq = seq
            while True:
                if self._committed_seq >= seq:
                    self.appends += 1
                    return seq
                if seq <= self._failed_upto:
                    raise self._flush_error
                if not self._flushing:
                    break  # become the flush leader
                self._commit.wait()
            self._flushing = True
            lines = self._pending
            self._pending = []
            flush_upto = self._pending_last_seq
        # Leader: one write + one fsync for the whole group, outside
        # the mutex so followers can keep enqueuing the next group.
        data = b"".join(lines)
        error: Optional[PersistError] = None
        try:
            sink = self._open_sink()
            sink.write(data)
            sink.flush()
            if self.fsync:
                os.fsync(sink.fileno())
        except OSError as os_error:
            # The write may have left torn bytes past _valid_bytes
            # (ENOSPC mid-line, failed fsync).  Close the sink so the
            # next flush reopens and truncates back to the valid
            # prefix — an unacknowledged record must never shadow a
            # later acknowledged one.
            try:
                self.close()
            except Exception:  # pragma: no cover
                pass
            error = PersistError(
                "cannot append to log {}: {}".format(self.path,
                                                     os_error))
        with self._commit:
            self._flushing = False
            if error is None:
                self._committed_seq = flush_upto
                self._valid_bytes += len(data)
                self.group_flushes += 1
            elif len(lines) == 1 and not self._pending \
                    and self._next_seq == flush_upto + 1:
                # The failed group was just this record and nothing
                # was allocated past it: reclaim the sequence, so a
                # retry reuses it (single-writer logs stay gap-free).
                self._next_seq = flush_upto
                self._pending_last_seq = flush_upto - 1
            else:
                # Exactly this group's sequences died; appenders past
                # flush_upto stay pending and elect the next leader
                # (the gap is fine — replay only needs sequences to
                # increase).
                self._failed_upto = flush_upto
                self._flush_error = error
            self._commit.notify_all()
            if error is not None:
                raise error
            self.appends += 1
            return seq

    def reset(self, next_seq: Optional[int] = None) -> None:
        """Truncate the log (after its records were folded into a
        snapshot).

        Sequence numbers keep climbing: the next append uses
        ``next_seq`` when given, else continues past the highest
        sequence ever written here.
        """
        with self._commit:
            # Let any in-flight commit group land before truncating:
            # a leader's write racing the truncate could resurrect
            # bytes past the new (empty) valid prefix.
            while self._flushing or self._pending:
                self._commit.wait()
        self.close()
        try:
            with open(self.path, "wb"):
                pass
        except FileNotFoundError:
            pass
        except OSError as error:
            raise PersistError(
                "cannot reset log {}: {}".format(self.path, error))
        self._valid_bytes = 0
        if next_seq is not None:
            self._next_seq = max(self._next_seq, int(next_seq))

    def close(self) -> None:
        """Close the underlying file handle (reopened on demand)."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return "WriteAheadLog({!r}, next_seq={})".format(
            self.path, self._next_seq)
