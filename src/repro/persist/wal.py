"""The append-only write-ahead log.

One log = one file of JSON lines, each line a *record*::

    {"crc": "<sha256[:16] of the payload>", "docs": [...], "seq": N}

where ``docs`` are :meth:`SemanticTrajectory.to_dict
<repro.core.trajectory.SemanticTrajectory.to_dict>` payloads and
``seq`` increases strictly monotonically across the log's whole
lifetime — it never restarts, even across :meth:`reset` — so a
snapshot can record the highest sequence it folded in (its
``wal_seq`` watermark) and recovery replays exactly the records past
it, regardless of crashes between "snapshot written" and "log
truncated".

Durability and crash tolerance:

* ``append`` writes the full line, flushes, and (by default) fsyncs
  before returning — an acknowledged append survives a process kill.
* A torn final write (partial line, bad JSON, checksum mismatch,
  non-monotonic sequence) marks the *end* of the valid log: replay
  stops there, and the next ``append`` truncates the garbage tail
  first.  Every valid prefix of a log is itself a valid log, which is
  what the crash-recovery property tests exercise.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import IO, Iterator, List, Optional, Sequence, Tuple

from repro.core.trajectory import SemanticTrajectory
from repro.persist.format import PersistError
from repro.service.protocol import canonical_json


def _payload_crc(docs: List[dict], seq: int) -> str:
    raw = canonical_json({"docs": docs, "seq": seq})
    return hashlib.sha256(raw).hexdigest()[:16]


class WriteAheadLog:
    """An append-only trajectory log with checksummed records.

    Args:
        path: the log file (created on first append).
        fsync: fsync after every append (the durability default);
            ``False`` trades an acknowledged-write guarantee for
            append throughput.
        start_seq: lowest sequence number the *next* append may use;
            the opener passes the current snapshot's watermark + 1 so
            sequences stay monotonic even when the log file itself
            was truncated away.
    """

    def __init__(self, path: str, fsync: bool = True,
                 start_seq: int = 1) -> None:
        self.path = path
        self.fsync = fsync
        self._sink: Optional[IO[bytes]] = None
        last_seq, valid_bytes = self._scan()
        self._next_seq = max(int(start_seq), last_seq + 1)
        self._valid_bytes = valid_bytes

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def _scan(self) -> Tuple[int, int]:
        """``(last valid seq, valid byte length)`` of the file."""
        last_seq = 0
        valid = 0
        for seq, _, end in self._iter_raw():
            last_seq = seq
            valid = end
        return last_seq, valid

    def _iter_raw(self) -> Iterator[Tuple[int, List[dict], int]]:
        """Yield ``(seq, docs, end_offset)`` per valid record.

        Stops silently at the first torn/corrupt/non-monotonic
        record — the crash-recovery contract — so a truncated tail
        never poisons the valid prefix before it.
        """
        try:
            source = open(self.path, "rb")
        except FileNotFoundError:
            return
        with source:
            offset = 0
            last_seq = 0
            for line in source:
                end = offset + len(line)
                if not line.endswith(b"\n"):
                    return  # torn final write
                try:
                    record = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, ValueError):
                    return
                if not isinstance(record, dict):
                    return
                seq = record.get("seq")
                docs = record.get("docs")
                if not isinstance(seq, int) \
                        or not isinstance(docs, list) \
                        or seq <= last_seq:
                    return
                if record.get("crc") != _payload_crc(docs, seq):
                    return
                yield seq, docs, end
                last_seq = seq
                offset = end

    def records(self, after_seq: int = 0
                ) -> Iterator[Tuple[int, List[SemanticTrajectory]]]:
        """Valid records with ``seq > after_seq``, oldest first.

        Raises:
            PersistError: when a *checksum-valid* record fails to
                decode into trajectories (a format bug, not a torn
                write — this must not be silently skipped).
        """
        for seq, docs, _ in self._iter_raw():
            if seq <= after_seq:
                continue
            try:
                yield seq, [SemanticTrajectory.from_dict(doc)
                            for doc in docs]
            except (KeyError, TypeError, ValueError) as error:
                raise PersistError(
                    "undecodable log record seq={}: {}".format(
                        seq, error))

    def replay_into(self, store, after_seq: int = 0) -> int:
        """Apply every record past ``after_seq`` to ``store``.

        The store must *not* have this log attached while replaying
        (it would re-log its own recovery).  Returns the highest
        sequence applied (``after_seq`` when none were).
        """
        last = after_seq
        for seq, batch in self.records(after_seq):
            store.extend(batch)
            last = seq
        return last

    @property
    def last_seq(self) -> int:
        """Highest sequence number allocated so far (0 when none).

        This is the watermark a checkpoint records: every record at
        or below it is covered by the snapshot being written.
        """
        return self._next_seq - 1

    def __len__(self) -> int:
        return sum(1 for _ in self._iter_raw())

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _open_sink(self) -> IO[bytes]:
        if self._sink is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            sink = open(self.path, "ab")
            # Drop a torn tail before the first new write, so the
            # file stays one valid prefix.
            if sink.tell() > self._valid_bytes:
                sink.truncate(self._valid_bytes)
                sink.seek(self._valid_bytes)
            self._sink = sink
        return self._sink

    def append(self, trajectories: Sequence[SemanticTrajectory]
               ) -> int:
        """Durably append one batch; returns its sequence number.

        Empty batches are not logged (returns :attr:`last_seq`).

        Raises:
            PersistError: when the write fails.
        """
        batch = list(trajectories)
        if not batch:
            return self._next_seq - 1
        seq = self._next_seq
        docs = [trajectory.to_dict() for trajectory in batch]
        line = canonical_json({"crc": _payload_crc(docs, seq),
                               "docs": docs, "seq": seq}) + b"\n"
        try:
            sink = self._open_sink()
            sink.write(line)
            sink.flush()
            if self.fsync:
                os.fsync(sink.fileno())
        except OSError as error:
            # The write may have left torn bytes past _valid_bytes
            # (ENOSPC mid-line, failed fsync).  Close the sink so the
            # next append reopens and truncates back to the valid
            # prefix — an unacknowledged record must never shadow a
            # later acknowledged one.
            self.close()
            raise PersistError(
                "cannot append to log {}: {}".format(self.path, error))
        self._next_seq = seq + 1
        self._valid_bytes += len(line)
        return seq

    def reset(self, next_seq: Optional[int] = None) -> None:
        """Truncate the log (after its records were folded into a
        snapshot).

        Sequence numbers keep climbing: the next append uses
        ``next_seq`` when given, else continues past the highest
        sequence ever written here.
        """
        self.close()
        try:
            with open(self.path, "wb"):
                pass
        except FileNotFoundError:
            pass
        except OSError as error:
            raise PersistError(
                "cannot reset log {}: {}".format(self.path, error))
        self._valid_bytes = 0
        if next_seq is not None:
            self._next_seq = max(self._next_seq, int(next_seq))

    def close(self) -> None:
        """Close the underlying file handle (reopened on demand)."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return "WriteAheadLog({!r}, next_seq={})".format(
            self.path, self._next_seq)
