"""A directory-backed stage cache: cached rebuilds survive restarts.

:class:`DiskStageCache` is a drop-in
:class:`~repro.pipeline.cache.StageCache` (``Workbench.build(cache=
DiskStageCache(dir))``, ``repro pipeline run --cache-dir DIR``) with a
second, persistent level: entries are keyed on the **same**
``(source fingerprint, ((stage name, config hash), ...))`` tuples the
in-memory cache uses, so a process restarted tomorrow replays the
clean→…→annotate prefix memoized today — the fingerprints derive from
source content and stage configuration, not from process state.

Entry files are JSON (one per prefix), named
``<fingerprint[:16]>-<key digest>.json`` so a lookup lists only the
files of its own source.  Each file records the prefix keys it covers,
the boundary batches (:meth:`SemanticTrajectory.to_dict
<repro.core.trajectory.SemanticTrajectory.to_dict>` payloads), the
replayed stage metrics, and a payload checksum; files that fail to
parse or verify are treated as misses and removed.  Only
**trajectory-boundary** prefixes are persisted: the prefix must not
end at a mid-trajectory stage (``clean``/``segment``/``trace``, whose
boundaries are records, visit groups and trace drafts) and every
boundary item must be a :class:`~repro.core.trajectory
.SemanticTrajectory` — anything else still caches in memory.

Memory stays the first level: a disk hit is promoted into the
in-memory LRU, so repeated rebuilds within one process never re-read
the file.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.trajectory import SemanticTrajectory
from repro.pipeline.cache import PrefixKey, StageCache
from repro.pipeline.metrics import StageMetrics
from repro.service.protocol import canonical_json

#: Entry-file format revision.
ENTRY_VERSION = 1

#: Build-chain stages whose boundary items are *not yet* trajectories
#: (detection records, visit groups, trace drafts).  Their prefixes
#: must never be persisted: the per-item isinstance gate below is
#: vacuously true for all-empty batches, and a replay would then hand
#: the next stage trajectory dicts where it expects records.
_MID_TRAJECTORY_STAGES = frozenset({"clean", "segment", "trace"})


def _metrics_to_dict(metrics: StageMetrics) -> dict:
    return {"name": metrics.name, "batches": metrics.batches,
            "items_in": metrics.items_in,
            "items_out": metrics.items_out,
            "seconds": metrics.seconds,
            "drops": dict(metrics.drops),
            "counters": dict(metrics.counters)}


def _metrics_from_dict(data: dict) -> StageMetrics:
    return StageMetrics(
        name=data["name"], batches=int(data["batches"]),
        items_in=int(data["items_in"]),
        items_out=int(data["items_out"]),
        seconds=float(data["seconds"]),
        drops={str(k): int(v)
               for k, v in data.get("drops", {}).items()},
        counters={str(k): int(v)
                  for k, v in data.get("counters", {}).items()})


class DiskStageCache(StageCache):
    """A stage cache whose entries survive process restarts.

    Args:
        directory: where entry files live (created lazily).
        max_entries: in-memory LRU size (first level).
        max_disk_entries: entry files retained on disk; the least
            recently *written or read* beyond this are removed.
    """

    def __init__(self, directory: str, max_entries: int = 4,
                 max_disk_entries: int = 32) -> None:
        super().__init__(max_entries=max_entries)
        if max_disk_entries < 1:
            raise ValueError("max_disk_entries must be >= 1")
        self.directory = directory
        self.max_disk_entries = max_disk_entries
        #: Disk-level hit counter (memory hits count in ``hits``).
        self.disk_hits = 0

    # ------------------------------------------------------------------
    # file naming
    # ------------------------------------------------------------------
    @staticmethod
    def _entry_name(fingerprint: str,
                    keys: Sequence[PrefixKey]) -> str:
        digest = hashlib.sha1(
            canonical_json([fingerprint, [list(k) for k in keys]])
        ).hexdigest()[:20]
        return "{}-{}.json".format(fingerprint[:16], digest)

    def _entry_files_for(self, fingerprint: str) -> List[str]:
        try:
            entries = os.listdir(self.directory)
        except OSError:
            return []
        prefix = fingerprint[:16] + "-"
        return [name for name in entries
                if name.startswith(prefix) and name.endswith(".json")]

    # ------------------------------------------------------------------
    # the StageCache surface
    # ------------------------------------------------------------------
    def lookup(self, fingerprint: str, keys: Sequence[PrefixKey]
               ) -> Optional[Tuple[int, List[List[Any]],
                                   List[StageMetrics]]]:
        hit = super().lookup(fingerprint, keys)
        if hit is not None:
            return hit
        disk = self._disk_lookup(fingerprint, keys)
        if disk is None:
            return None  # the memory miss above already counted
        depth, batches, metrics = disk
        with self._lock:
            self.misses -= 1  # reclassify: the lookup *did* hit
            self.hits += 1
            self.disk_hits += 1
        # Promote into the in-memory LRU for this process's lifetime.
        super().store(fingerprint, list(keys[:depth]), batches,
                      metrics)
        return disk

    def store(self, fingerprint: str, keys: Sequence[PrefixKey],
              batches: List[List[Any]],
              metrics: List[StageMetrics]) -> None:
        super().store(fingerprint, keys, batches, metrics)
        self._disk_store(fingerprint, keys, batches, metrics)

    def clear(self) -> None:
        """Drop both levels and reset all counters."""
        super().clear()
        self.disk_hits = 0
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in names:
            if name.endswith(".json"):
                self._remove(name)

    # ------------------------------------------------------------------
    # the disk level
    # ------------------------------------------------------------------
    def _disk_lookup(self, fingerprint: str,
                     keys: Sequence[PrefixKey]
                     ) -> Optional[Tuple[int, List[List[Any]],
                                         List[StageMetrics]]]:
        """Longest persisted prefix of ``keys`` for this source."""
        for depth in range(len(keys), 0, -1):
            name = self._entry_name(fingerprint, keys[:depth])
            entry = self._load_entry(name)
            if entry is None:
                continue
            stored_keys, batches, metrics = entry
            if stored_keys != [list(k) for k in keys[:depth]]:
                continue  # digest collision; treat as a miss
            self._touch(name)
            return depth, batches, metrics
        return None

    def _load_entry(self, name: str
                    ) -> Optional[Tuple[List[List[str]],
                                        List[List[Any]],
                                        List[StageMetrics]]]:
        path = os.path.join(self.directory, name)
        try:
            with open(path, "rb") as source:
                raw = source.read()
        except OSError:
            return None
        try:
            data = json.loads(raw.decode("utf-8"))
            if data.get("version") != ENTRY_VERSION:
                raise ValueError("entry version mismatch")
            payload = data["payload"]
            digest = hashlib.sha256(
                canonical_json(payload)).hexdigest()[:16]
            if data.get("crc") != digest:
                raise ValueError("entry checksum mismatch")
            keys = [list(map(str, key)) for key in payload["keys"]]
            batches = [
                [SemanticTrajectory.from_dict(doc) for doc in batch]
                for batch in payload["batches"]]
            metrics = [_metrics_from_dict(item)
                       for item in payload["metrics"]]
        except (KeyError, TypeError, ValueError,
                UnicodeDecodeError):
            self._remove(name)  # corrupt entries are misses, once
            return None
        return keys, batches, metrics

    def _disk_store(self, fingerprint: str,
                    keys: Sequence[PrefixKey],
                    batches: List[List[Any]],
                    metrics: List[StageMetrics]) -> None:
        if not keys or keys[-1][0] in _MID_TRAJECTORY_STAGES:
            return  # the prefix boundary is not a trajectory batch
        if not all(isinstance(item, SemanticTrajectory)
                   for batch in batches for item in batch):
            return  # boundary items this format cannot round-trip
        payload = {
            "fingerprint": fingerprint,
            "keys": [list(key) for key in keys],
            "batches": [[item.to_dict() for item in batch]
                        for batch in batches],
            "metrics": [_metrics_to_dict(item) for item in metrics],
        }
        document = {
            "version": ENTRY_VERSION,
            "crc": hashlib.sha256(
                canonical_json(payload)).hexdigest()[:16],
            "payload": payload,
        }
        name = self._entry_name(fingerprint, keys)
        path = os.path.join(self.directory, name)
        try:
            os.makedirs(self.directory, exist_ok=True)
            temp_path = path + ".tmp"
            with open(temp_path, "wb") as sink:
                sink.write(canonical_json(document))
            os.replace(temp_path, path)
        except OSError:
            return  # disk persistence is an optimization, never fatal
        self._evict_disk()

    def _touch(self, name: str) -> None:
        try:
            os.utime(os.path.join(self.directory, name))
        except OSError:
            pass

    def _remove(self, name: str) -> None:
        try:
            os.unlink(os.path.join(self.directory, name))
        except OSError:
            pass

    def _evict_disk(self) -> None:
        try:
            names = [name for name in os.listdir(self.directory)
                     if name.endswith(".json")]
        except OSError:
            return
        if len(names) <= self.max_disk_entries:
            return

        def mtime(name: str) -> float:
            try:
                return os.stat(
                    os.path.join(self.directory, name)).st_mtime
            except OSError:
                return 0.0

        for name in sorted(names, key=mtime)[
                :len(names) - self.max_disk_entries]:
            self._remove(name)

    def __repr__(self) -> str:
        return "DiskStageCache({!r}, memory={}, disk_hits={})".format(
            self.directory, len(self), self.disk_hits)
