"""Session persistence: snapshot + log + ``CURRENT`` pointer.

A :class:`DurableSession` owns one directory::

    <dir>/
      CURRENT             name of the active snapshot (atomic rename)
      snapshot-000001/    snapshot directories (repro.persist.format)
      snapshot-000002/
      wal.log             the write-ahead log since the active snapshot

Opening replays *snapshot + log*: load the snapshot ``CURRENT`` names,
then apply every log record whose sequence lies past the snapshot's
``wal_seq`` watermark, then attach the log to the store so further
ingestion is journaled as it happens.  :meth:`checkpoint` folds the
log back into a fresh snapshot: write ``snapshot-(N+1)`` completely,
flip ``CURRENT`` (one atomic rename — the commit point), truncate the
log, prune old snapshots.  A crash at *any* point between those steps
recovers correctly, because replay filters on the watermark rather
than trusting the log to have been truncated.

The module also provides the :class:`~repro.api.Workbench`-level sugar
(:func:`save_workbench` / :func:`open_workbench`) and the space-model
registry that maps the class name recorded in a manifest back to a
constructor on restore.
"""

from __future__ import annotations

import os
import re
from typing import Callable, Dict, Optional, Tuple

from repro.persist.format import (
    CorruptSnapshotError,
    PersistError,
    SnapshotInfo,
    load_store,
    save_store,
)
from repro.persist.wal import WriteAheadLog
from repro.storage.store import TrajectoryStore

CURRENT_NAME = "CURRENT"
LOG_NAME = "wal.log"
_SNAPSHOT_PATTERN = re.compile(r"^snapshot-(\d{6})$")

#: Space-model class name → zero-argument factory, used to revive the
#: space a session was built over.  Extend via :func:`register_space`.
_SPACE_FACTORIES: Dict[str, Callable[[], object]] = {}


def register_space(name: str,
                   factory: Callable[[], object]) -> None:
    """Teach restore how to rebuild a space model by class name."""
    _SPACE_FACTORIES[name] = factory


def space_token(space: Optional[object]) -> Optional[str]:
    """The revivable manifest token of a space model.

    A space exposing ``persist_token`` (parameterised spaces like the
    synthetic venues) records that; anything else records its class
    name, matching the registered factories.
    """
    if space is None:
        return None
    token = getattr(space, "persist_token", None)
    if token is not None:
        return str(token)
    return type(space).__name__


def revive_space(name: Optional[str]) -> Optional[object]:
    """A space model instance for a manifest-recorded class name.

    ``None`` when the name is unknown (queries still work; building
    and hierarchy-aware mining need a real space).
    """
    if name is None:
        return None
    factory = _SPACE_FACTORIES.get(name)
    if factory is not None:
        return factory()
    if name == "LouvreSpace":  # the built-in default, lazily imported
        from repro.louvre.space import LouvreSpace
        return LouvreSpace()
    if name.startswith("SyntheticVenue:"):
        # Parametric venues are revived from their generation token
        # (archetype + seeds fully determine the venue), so a session
        # built over a synthetic venue restores on any process.
        from repro.synth.venues import venue_from_token
        try:
            return venue_from_token(name)
        except ValueError:
            return None
    return None


class DurableSession:
    """One persisted corpus directory: snapshots + the append log.

    Args:
        directory: the session directory (created lazily).
        fsync: forwarded to the log — fsync every append.
        keep_snapshots: how many snapshot generations to retain after
            a checkpoint (at least 1, the active one).
    """

    def __init__(self, directory: str, fsync: bool = True,
                 keep_snapshots: int = 2) -> None:
        if keep_snapshots < 1:
            raise ValueError("keep_snapshots must be >= 1")
        self.directory = directory
        self.fsync = fsync
        self.keep_snapshots = keep_snapshots
        self._log: Optional[WriteAheadLog] = None

    # ------------------------------------------------------------------
    # layout helpers
    # ------------------------------------------------------------------
    @property
    def log_path(self) -> str:
        return os.path.join(self.directory, LOG_NAME)

    def exists(self) -> bool:
        """True when the directory holds any persisted state."""
        return (self._current_snapshot() is not None
                or os.path.exists(self.log_path))

    def _current_snapshot(self) -> Optional[str]:
        """Directory name the ``CURRENT`` pointer designates."""
        try:
            with open(os.path.join(self.directory, CURRENT_NAME),
                      "r", encoding="utf-8") as source:
                name = source.read().strip()
        except OSError:
            return None
        if not _SNAPSHOT_PATTERN.match(name):
            return None
        if not os.path.isdir(os.path.join(self.directory, name)):
            return None
        return name

    def _snapshot_names(self) -> list:
        try:
            entries = os.listdir(self.directory)
        except OSError:
            return []
        return sorted(name for name in entries
                      if _SNAPSHOT_PATTERN.match(name))

    def _next_snapshot_name(self) -> str:
        names = self._snapshot_names()
        if not names:
            return "snapshot-000001"
        highest = int(_SNAPSHOT_PATTERN.match(names[-1]).group(1))
        return "snapshot-{:06d}".format(highest + 1)

    def log(self, start_seq: int = 1) -> WriteAheadLog:
        """The session's write-ahead log (opened once)."""
        if self._log is None:
            self._log = WriteAheadLog(self.log_path, fsync=self.fsync,
                                      start_seq=start_seq)
        return self._log

    # ------------------------------------------------------------------
    # open (recover) / checkpoint (fold)
    # ------------------------------------------------------------------
    def open(self, use_indexes: bool = True, verify: bool = True
             ) -> Tuple[TrajectoryStore, Optional[str]]:
        """Recover the store: snapshot + log replay, log attached.

        Returns ``(store, space_name)``.  A directory with no
        snapshot yet (possibly with a log — a session that crashed
        before its first checkpoint) recovers from an empty store.

        Raises:
            CorruptSnapshotError: when the active snapshot fails
                verification (the log alone cannot repair that).
        """
        current = self._current_snapshot()
        space_name: Optional[str] = None
        watermark = 0
        if current is not None:
            store, info = load_store(
                os.path.join(self.directory, current),
                use_indexes=use_indexes, verify=verify)
            space_name = info.space
            watermark = info.wal_seq
        else:
            store = TrajectoryStore()
        log = self.log(start_seq=watermark + 1)
        log.replay_into(store, after_seq=watermark)
        store.attach_wal(log)
        return store, space_name

    def checkpoint(self, store: TrajectoryStore,
                   space: Optional[str] = None) -> SnapshotInfo:
        """Fold the log into a fresh snapshot (the ``compact()``).

        Writes the next ``snapshot-N`` in full, atomically flips
        ``CURRENT`` to it (the commit point), truncates the log, and
        prunes snapshots beyond :attr:`keep_snapshots`.  The caller
        must hold whatever writer lock serializes ingestion into
        ``store`` — checkpointing concurrently with writes would
        truncate log records the snapshot never saw.

        Raises:
            PersistError: when the directory cannot be written.
        """
        try:
            os.makedirs(self.directory, exist_ok=True)
        except OSError as error:
            raise PersistError("cannot create session dir {}: {}"
                               .format(self.directory, error))
        log = self.log()
        name = self._next_snapshot_name()
        info = save_store(store, os.path.join(self.directory, name),
                          include_indexes=True, space=space,
                          wal_seq=log.last_seq)
        # The commit point: CURRENT names the new snapshot.
        current_path = os.path.join(self.directory, CURRENT_NAME)
        temp_path = current_path + ".tmp"
        try:
            with open(temp_path, "w", encoding="utf-8") as sink:
                sink.write(name + "\n")
                sink.flush()
                os.fsync(sink.fileno())
            os.replace(temp_path, current_path)
        except OSError as error:
            raise PersistError("cannot update {}: {}".format(
                current_path, error))
        # Everything in the log is now covered by the watermark;
        # truncating is an optimization, not a correctness step.
        log.reset()
        self._prune_snapshots(keep=name)
        return info

    def _prune_snapshots(self, keep: str) -> None:
        """Drop old generations, never the one just committed."""
        names = self._snapshot_names()
        survivors = names[-self.keep_snapshots:]
        for name in names:
            if name in survivors or name == keep:
                continue
            snapshot_dir = os.path.join(self.directory, name)
            try:
                for entry in os.listdir(snapshot_dir):
                    os.unlink(os.path.join(snapshot_dir, entry))
                os.rmdir(snapshot_dir)
            except OSError:
                pass  # pruning is best-effort; replay stays correct

    def close(self) -> None:
        """Release the log's file handle."""
        if self._log is not None:
            self._log.close()
            self._log = None

    def __repr__(self) -> str:
        return "DurableSession({!r})".format(self.directory)


# ----------------------------------------------------------------------
# workbench sugar
# ----------------------------------------------------------------------
def save_workbench(directory: str, workbench,
                   fsync: bool = True) -> SnapshotInfo:
    """Persist a workbench's corpus as a durable session directory.

    The store's future writes are journaled too: the session's log is
    attached to the store after the checkpoint, so ``save`` once and
    every later ``build`` lands on disk as it streams.
    """
    session = DurableSession(directory, fsync=fsync)
    space = workbench.space
    space_name = space_token(space)
    info = session.checkpoint(workbench.store, space=space_name)
    workbench.store.attach_wal(session.log())
    return info


def open_workbench(directory: str, use_indexes: bool = True,
                   verify: bool = True, fsync: bool = True):
    """Recover a workbench from a durable session directory.

    Returns a :class:`~repro.api.Workbench` whose store is the
    snapshot-plus-log replay and whose space model is revived from
    the recorded class name (``None`` when unknown — queries still
    work; building and hierarchy-aware mining need a space).

    Raises:
        PersistError: when the directory holds no persisted session.
        CorruptSnapshotError: when the snapshot fails verification.
    """
    from repro.api import Workbench

    session = DurableSession(directory, fsync=fsync)
    if not session.exists():
        raise PersistError(
            "no persisted session under {!r}".format(directory))
    store, space_name = session.open(use_indexes=use_indexes,
                                     verify=verify)
    return Workbench(space=revive_space(space_name), store=store)
