"""The versioned on-disk snapshot format.

A snapshot is a directory::

    <snapshot>/
      MANIFEST.json       header: format/version, doc count, space,
                          wal_seq watermark, per-segment checksums,
                          and a self-checksum
      episodes.json       columnar trajectory-level records
      intervals.json      columnar presence-interval (trace) records
      annotations.json    dictionary-encoded annotation pool and sets
      indexes.json        (optional) serialized inverted indexes

Records are stored **columnar**: one JSON array per field, aligned by
position, with the trace segment flattened across documents through an
``entries_per_doc`` run-length column.  Annotation sets — heavily
repeated across stays — are dictionary-encoded twice: unique
annotations into a pool, unique sets into lists of pool indexes.

Every segment is serialized with the protocol's
:func:`~repro.service.protocol.canonical_json` (sorted keys, no
whitespace), so the same store always produces byte-identical
segments, and its SHA-256 is recorded in the manifest.  ``load``
verifies the manifest's self-checksum and every segment digest before
reconstructing anything, so truncation and bit rot surface as
:class:`CorruptSnapshotError`, never as a silently wrong corpus.

Indexes are *rebuilt-or-serialized*: ``save(include_indexes=True)``
writes the store's inverted-index posting lists as their own segment,
and ``load`` installs them directly (skipping the O(corpus) rebuild)
when the segment is present and verifies, falling back to a rebuild
otherwise.

Files are written to a temporary name and atomically renamed into
place; the manifest is written last, so a crashed ``save`` never
leaves a directory that passes verification.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.annotations import AnnotationKind, AnnotationSet
from repro.core.trajectory import SemanticTrajectory, Trace, TraceEntry
from repro.service.protocol import canonical_json
from repro.storage.store import TrajectoryStore

#: Snapshot format revision; bump on incompatible layout changes.
FORMAT_VERSION = 1

#: The manifest's ``format`` tag.
FORMAT_NAME = "repro-snapshot"

MANIFEST_NAME = "MANIFEST.json"
SEGMENT_EPISODES = "episodes.json"
SEGMENT_INTERVALS = "intervals.json"
SEGMENT_ANNOTATIONS = "annotations.json"
SEGMENT_INDEXES = "indexes.json"


class PersistError(RuntimeError):
    """Base failure of the durable storage subsystem."""


class CorruptSnapshotError(PersistError):
    """A snapshot that fails structural or checksum verification."""


@dataclass(frozen=True)
class SnapshotInfo:
    """What one ``save`` produced (or one ``read_manifest`` found).

    Attributes:
        path: the snapshot directory.
        doc_count: trajectories in the snapshot.
        total_bytes: sum of all segment sizes (manifest excluded).
        space: space-model class name recorded for restore, if any.
        wal_seq: highest write-ahead-log sequence number folded into
            this snapshot (0 when none) — replay starts past it.
    """

    path: str
    doc_count: int
    total_bytes: int
    space: Optional[str] = None
    wal_seq: int = 0


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _write_atomic(directory: str, name: str, payload: bytes) -> None:
    """Write ``payload`` to ``directory/name`` via rename."""
    handle, temp_path = tempfile.mkstemp(prefix=name + ".",
                                         suffix=".tmp", dir=directory)
    try:
        with os.fdopen(handle, "wb") as sink:
            sink.write(payload)
            sink.flush()
            os.fsync(sink.fileno())
        os.replace(temp_path, os.path.join(directory, name))
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


# ----------------------------------------------------------------------
# columnar encoding
# ----------------------------------------------------------------------
class _AnnotationCodec:
    """Dictionary-encodes annotation sets for the snapshot.

    Two levels: unique annotation dicts into ``pool``, unique sets
    into ``sets`` (lists of pool indexes, in the set's deterministic
    ``to_list`` order).  Sites then reference sets by index, so a
    corpus where every stay carries the same two annotations stores
    them once.
    """

    def __init__(self) -> None:
        self.pool: List[Dict] = []
        self.sets: List[List[int]] = []
        self._pool_ids: Dict[bytes, int] = {}
        self._set_ids: Dict[Tuple[int, ...], int] = {}

    def encode(self, annotations: AnnotationSet) -> int:
        """The set's dictionary index (interning it on first sight)."""
        members = []
        for item in annotations.to_list():
            key = canonical_json(item)
            index = self._pool_ids.get(key)
            if index is None:
                index = len(self.pool)
                self.pool.append(item)
                self._pool_ids[key] = index
            members.append(index)
        signature = tuple(members)
        set_id = self._set_ids.get(signature)
        if set_id is None:
            set_id = len(self.sets)
            self.sets.append(members)
            self._set_ids[signature] = set_id
        return set_id


class _AnnotationDecoder:
    """Inverse of :class:`_AnnotationCodec` (sets decoded once)."""

    def __init__(self, pool: List[Dict], sets: List[List[int]]) -> None:
        try:
            self._sets = [
                AnnotationSet.from_list([pool[index] for index in
                                         members])
                for members in sets
            ]
        except (IndexError, KeyError, TypeError, ValueError) as error:
            raise CorruptSnapshotError(
                "undecodable annotation segment: {}".format(error))

    def decode(self, set_id: int) -> AnnotationSet:
        try:
            return self._sets[set_id]
        except (IndexError, TypeError):
            raise CorruptSnapshotError(
                "annotation set reference {!r} out of range".format(
                    set_id))


def _encode_segments(docs: List[SemanticTrajectory]
                     ) -> Dict[str, Dict]:
    """The three columnar record segments of a document list."""
    codec = _AnnotationCodec()
    episodes: Dict[str, List] = {
        "mo_id": [], "t_start": [], "t_end": [], "annotations": []}
    intervals: Dict[str, List] = {
        "entries_per_doc": [], "transition": [], "state": [],
        "t_start": [], "t_end": [], "annotations": [],
        "transition_annotations": []}
    for trajectory in docs:
        episodes["mo_id"].append(trajectory.mo_id)
        episodes["t_start"].append(trajectory.t_start)
        episodes["t_end"].append(trajectory.t_end)
        episodes["annotations"].append(
            codec.encode(trajectory.annotations))
        intervals["entries_per_doc"].append(len(trajectory.trace))
        for entry in trajectory.trace:
            intervals["transition"].append(entry.transition)
            intervals["state"].append(entry.state)
            intervals["t_start"].append(entry.t_start)
            intervals["t_end"].append(entry.t_end)
            intervals["annotations"].append(
                codec.encode(entry.annotations))
            intervals["transition_annotations"].append(
                codec.encode(entry.transition_annotations))
    return {
        SEGMENT_EPISODES: episodes,
        SEGMENT_INTERVALS: intervals,
        SEGMENT_ANNOTATIONS: {"pool": codec.pool, "sets": codec.sets},
    }


def _decode_documents(episodes: Dict, intervals: Dict,
                      annotations: Dict) -> List[SemanticTrajectory]:
    """Columnar segments → trajectory objects."""
    decoder = _AnnotationDecoder(annotations.get("pool", []),
                                 annotations.get("sets", []))
    try:
        counts = intervals["entries_per_doc"]
        columns = (intervals["transition"], intervals["state"],
                   intervals["t_start"], intervals["t_end"],
                   intervals["annotations"],
                   intervals["transition_annotations"])
        doc_columns = (episodes["mo_id"], episodes["t_start"],
                       episodes["t_end"], episodes["annotations"])
    except (KeyError, TypeError) as error:
        raise CorruptSnapshotError(
            "segment misses column {}".format(error))
    try:
        total_entries = sum(counts)
    except TypeError as error:
        raise CorruptSnapshotError(
            "bad entries_per_doc column: {}".format(error))
    if any(len(column) != total_entries for column in columns):
        raise CorruptSnapshotError(
            "interval columns disagree on length")
    if any(len(column) != len(counts) for column in doc_columns):
        raise CorruptSnapshotError(
            "episode columns disagree on length")

    docs: List[SemanticTrajectory] = []
    cursor = 0
    try:
        for doc_index, entry_count in enumerate(counts):
            entries = [
                TraceEntry(
                    transition=columns[0][i], state=columns[1][i],
                    t_start=columns[2][i], t_end=columns[3][i],
                    annotations=decoder.decode(columns[4][i]),
                    transition_annotations=decoder.decode(
                        columns[5][i]))
                for i in range(cursor, cursor + entry_count)
            ]
            cursor += entry_count
            docs.append(SemanticTrajectory(
                mo_id=doc_columns[0][doc_index],
                trace=Trace(entries),
                annotations=decoder.decode(doc_columns[3][doc_index]),
                t_start=doc_columns[1][doc_index],
                t_end=doc_columns[2][doc_index]))
    except CorruptSnapshotError:
        raise
    except (IndexError, TypeError, ValueError) as error:
        raise CorruptSnapshotError(
            "undecodable record segments: {}".format(error))
    return docs


# ----------------------------------------------------------------------
# index (de)serialization
# ----------------------------------------------------------------------
def _encode_indexes(state_postings: Dict, annotation_postings: Dict,
                    mo_postings: Dict) -> Dict:
    return {
        "by_state": {str(state): sorted(ids)
                     for state, ids in state_postings.items()},
        "by_mo": {str(mo): sorted(ids)
                  for mo, ids in mo_postings.items()},
        # annotation keys are (kind, value) tuples with typed values —
        # JSON objects cannot key on them, so pairs it is.
        "by_annotation": [
            [kind.value, value, sorted(ids)]
            for (kind, value), ids in sorted(
                annotation_postings.items(),
                key=lambda item: (item[0][0].value, str(item[0][1]),
                                  type(item[0][1]).__name__))
        ],
    }


def _decode_indexes(data: Dict) -> Tuple[Dict, Dict, Dict]:
    try:
        by_state = {state: set(ids)
                    for state, ids in data["by_state"].items()}
        by_mo = {mo: set(ids) for mo, ids in data["by_mo"].items()}
        by_annotation = {
            (AnnotationKind(kind), value): set(ids)
            for kind, value, ids in data["by_annotation"]}
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        raise CorruptSnapshotError(
            "undecodable index segment: {}".format(error))
    return by_state, by_annotation, by_mo


# ----------------------------------------------------------------------
# save / load
# ----------------------------------------------------------------------
def save_store(store: TrajectoryStore, path: str,
               include_indexes: bool = True,
               space: Optional[str] = None,
               wal_seq: int = 0) -> SnapshotInfo:
    """Write one consistent snapshot of ``store`` to directory
    ``path``.

    The store's state is captured in one read-locked instant; the
    segments, then the manifest, are written atomically (temp file +
    rename), so a crash mid-save can only leave a snapshot that fails
    verification — never a half-readable one.

    Args:
        store: the corpus to persist.
        path: snapshot directory (created if missing).
        include_indexes: also serialize the inverted indexes so
            ``load`` can install instead of rebuild them.
        space: space-model class name to record for session restore.
        wal_seq: log watermark folded into this snapshot (see
            :class:`~repro.persist.wal.WriteAheadLog`).

    Raises:
        PersistError: when the directory cannot be written.
    """
    docs, state_postings, annotation_postings, mo_postings = \
        store.snapshot_state()
    segments = _encode_segments(docs)
    if include_indexes:
        segments[SEGMENT_INDEXES] = _encode_indexes(
            state_postings, annotation_postings, mo_postings)

    try:
        os.makedirs(path, exist_ok=True)
        manifest_segments = []
        total_bytes = 0
        for name, payload in segments.items():
            raw = canonical_json(payload)
            _write_atomic(path, name, raw)
            manifest_segments.append({
                "name": name, "bytes": len(raw),
                "sha256": _sha256(raw)})
            total_bytes += len(raw)
        manifest = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "doc_count": len(docs),
            "space": space,
            "wal_seq": int(wal_seq),
            "segments": sorted(manifest_segments,
                               key=lambda item: item["name"]),
        }
        manifest["manifest_sha256"] = _sha256(canonical_json(manifest))
        _write_atomic(path, MANIFEST_NAME, canonical_json(manifest))
    except OSError as error:
        raise PersistError(
            "cannot write snapshot {}: {}".format(path, error))
    return SnapshotInfo(path=path, doc_count=len(docs),
                        total_bytes=total_bytes, space=space,
                        wal_seq=int(wal_seq))


def read_manifest(path: str, verify: bool = True) -> Dict:
    """Parse (and structurally verify) a snapshot's manifest.

    Args:
        path: the snapshot directory.
        verify: also check the manifest's self-checksum.

    Raises:
        CorruptSnapshotError: missing/undecodable/mismatched manifest
            or an unsupported format version.
    """
    manifest_path = os.path.join(path, MANIFEST_NAME)
    try:
        with open(manifest_path, "rb") as source:
            raw = source.read()
    except OSError as error:
        raise CorruptSnapshotError(
            "unreadable manifest {}: {}".format(manifest_path, error))
    try:
        manifest = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise CorruptSnapshotError(
            "undecodable manifest {}: {}".format(manifest_path, error))
    if not isinstance(manifest, dict) \
            or manifest.get("format") != FORMAT_NAME:
        raise CorruptSnapshotError(
            "{} is not a {} manifest".format(manifest_path,
                                             FORMAT_NAME))
    if manifest.get("version") != FORMAT_VERSION:
        raise CorruptSnapshotError(
            "unsupported snapshot version {!r} (this build reads "
            "{})".format(manifest.get("version"), FORMAT_VERSION))
    if verify:
        recorded = manifest.get("manifest_sha256")
        unsigned = {key: value for key, value in manifest.items()
                    if key != "manifest_sha256"}
        if recorded != _sha256(canonical_json(unsigned)):
            raise CorruptSnapshotError(
                "manifest self-checksum mismatch in {}".format(
                    manifest_path))
    if not isinstance(manifest.get("segments"), list):
        raise CorruptSnapshotError(
            "manifest in {} lists no segments".format(manifest_path))
    return manifest


def _read_segment(path: str, spec: Dict, verify: bool) -> Dict:
    name = spec.get("name", "?")
    segment_path = os.path.join(path, str(name))
    try:
        with open(segment_path, "rb") as source:
            raw = source.read()
    except OSError as error:
        raise CorruptSnapshotError(
            "unreadable segment {}: {}".format(segment_path, error))
    if verify:
        if len(raw) != spec.get("bytes"):
            raise CorruptSnapshotError(
                "segment {} truncated: {} bytes on disk, manifest "
                "says {}".format(name, len(raw), spec.get("bytes")))
        if _sha256(raw) != spec.get("sha256"):
            raise CorruptSnapshotError(
                "segment {} checksum mismatch".format(name))
    try:
        data = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise CorruptSnapshotError(
            "undecodable segment {}: {}".format(name, error))
    if not isinstance(data, dict):
        raise CorruptSnapshotError(
            "segment {} is not a JSON object".format(name))
    return data


def load_store(path: str, use_indexes: bool = True,
               verify: bool = True
               ) -> Tuple[TrajectoryStore, SnapshotInfo]:
    """Reconstruct a store from a snapshot directory.

    Args:
        path: the snapshot directory.
        use_indexes: install the serialized inverted indexes when the
            snapshot carries them (otherwise — or when absent —
            indexes are rebuilt from the documents).
        verify: check every segment's size and SHA-256 against the
            manifest before decoding (skipping this trades integrity
            for a faster cold load).

    Returns:
        ``(store, info)`` — the reconstructed store and the
        snapshot's headline metadata.

    Raises:
        CorruptSnapshotError: structural damage, truncation, or
            checksum mismatch anywhere in the snapshot.
    """
    manifest = read_manifest(path, verify=verify)
    specs = {spec.get("name"): spec
             for spec in manifest["segments"]
             if isinstance(spec, dict)}
    for required in (SEGMENT_EPISODES, SEGMENT_INTERVALS,
                     SEGMENT_ANNOTATIONS):
        if required not in specs:
            raise CorruptSnapshotError(
                "manifest misses required segment {}".format(required))

    episodes = _read_segment(path, specs[SEGMENT_EPISODES], verify)
    intervals = _read_segment(path, specs[SEGMENT_INTERVALS], verify)
    annotations = _read_segment(path, specs[SEGMENT_ANNOTATIONS],
                                verify)
    docs = _decode_documents(episodes, intervals, annotations)
    if len(docs) != manifest.get("doc_count"):
        raise CorruptSnapshotError(
            "decoded {} documents, manifest says {}".format(
                len(docs), manifest.get("doc_count")))

    indexes = None
    if use_indexes and SEGMENT_INDEXES in specs:
        indexes = _decode_indexes(
            _read_segment(path, specs[SEGMENT_INDEXES], verify))
    store = TrajectoryStore.from_documents(docs, indexes=indexes)
    info = SnapshotInfo(
        path=path, doc_count=len(docs),
        total_bytes=sum(int(spec.get("bytes", 0))
                        for spec in specs.values()),
        space=manifest.get("space"),
        wal_seq=int(manifest.get("wal_seq", 0)))
    return store, info
