"""Durable storage: snapshots, the append log, session persistence.

Everything above this package — the trajectory store, the pipeline,
the multi-session service — is process-local RAM.  ``repro.persist``
gives the stack durability:

* :mod:`repro.persist.format` — a versioned on-disk **snapshot**
  format for :class:`~repro.storage.store.TrajectoryStore`: a
  manifest with per-segment content checksums over columnar record
  segments (episodes / presence intervals / annotations) plus
  optionally serialized inverted indexes.  ``save → load`` round-trips
  byte-identically through the canonical-JSON machinery the wire
  protocol already uses.
* :mod:`repro.persist.wal` — an append-only **write-ahead log** so a
  live session survives a crash: recovery is *snapshot + log replay*,
  and any valid log prefix recovers the store to its exact document
  count at that point.
* :mod:`repro.persist.session` — :class:`DurableSession`, the unit
  the service layer persists: a directory holding the current
  snapshot, the log, and an atomically updated ``CURRENT`` pointer.
  ``checkpoint()`` folds the log back into a fresh snapshot.
* :mod:`repro.persist.diskcache` — :class:`DiskStageCache`, a
  directory-backed :class:`~repro.pipeline.cache.StageCache` so
  cached pipeline rebuilds survive restarts.

See ``docs/persistence.md`` for the format layout and the durability
guarantees.
"""

from repro.persist.diskcache import DiskStageCache
from repro.persist.format import (
    FORMAT_VERSION,
    CorruptSnapshotError,
    PersistError,
    SnapshotInfo,
    load_store,
    read_manifest,
    save_store,
)
from repro.persist.session import (
    DurableSession,
    open_workbench,
    register_space,
    save_workbench,
)
from repro.persist.wal import WriteAheadLog

__all__ = [
    "FORMAT_VERSION",
    "CorruptSnapshotError",
    "DiskStageCache",
    "DurableSession",
    "PersistError",
    "SnapshotInfo",
    "WriteAheadLog",
    "load_store",
    "open_workbench",
    "read_manifest",
    "register_space",
    "save_store",
    "save_workbench",
]
