"""Parametric venue & crowd synthesis plus a production-rate replayer.

Everything before this subsystem was calibrated against one venue (the
Louvre) and one ~20k-record corpus.  ``repro.synth`` generalises the
workload side of the system:

* :mod:`repro.synth.venues` — a seeded parametric grammar over the
  existing :mod:`repro.indoor` multilayer model that emits arbitrary
  multi-floor venues (museum, airport, stadium, hospital archetypes)
  with rooms, corridors, vertical connectors and beacon layouts, all
  passing the SITM validation rules and fully route-plannable;
* :mod:`repro.synth.crowd` — streaming synthesis of up to millions of
  agents from the :mod:`repro.movement` visitor profiles, in
  O(open-agents) memory and byte-identical for a fixed seed;
* :mod:`repro.synth.pacing` — the shared open-loop arrival schedule
  (extracted from ``benchmarks/bench_service.py``) that paces load
  without coordinated omission;
* :mod:`repro.synth.replayer` — a traffic replayer that drives the
  asyncio front-end with a synthesized crowd as batch ingest,
  ``AppendEvents`` streams, or query mixes, recording
  throughput/latency/shed counters.
"""

from repro.synth.venues import (
    ARCHETYPES,
    SyntheticVenue,
    VenueSpec,
    generate_venue,
)
from repro.synth.crowd import CrowdSpec, CrowdSynthesizer
from repro.synth.pacing import ArrivalSchedule
from repro.synth.replayer import ReplayReport, TrafficReplayer

__all__ = [
    "ARCHETYPES",
    "SyntheticVenue",
    "VenueSpec",
    "generate_venue",
    "CrowdSpec",
    "CrowdSynthesizer",
    "ArrivalSchedule",
    "ReplayReport",
    "TrafficReplayer",
]
