"""Replaying synthesized crowds against the service at target rates.

:class:`TrafficReplayer` takes any event-time-ordered detection
stream (usually :meth:`CrowdSynthesizer.iter_events
<repro.synth.crowd.CrowdSynthesizer.iter_events>`) and drives a
service endpoint — the asyncio front-end, the threaded server, or a
sharded coordinator behind either — in three modes:

* **batch** — a local :class:`~repro.stream.WatermarkSegmenter` turns
  the stream into closed episodes exactly as the server's stream path
  would, and ships them as ``IngestDocuments`` requests.  Batch and
  stream replays of the same crowd therefore land *byte-identical
  store content*, which the CI ``synth-smoke`` job asserts;
* **stream** — chunked ``AppendEvents`` with honest watermarks
  (each chunk's watermark is the next chunk's first ``t_start``),
  closed with ``CloseStream``;
* **queries** — a read mix (summary / filtered query / flow) for
  driving a *loaded* corpus.

Pacing is open-loop via :class:`~repro.synth.pacing.ArrivalSchedule`:
``rate`` is events/s for the ingest modes (requests fire every
``chunk`` events) and requests/s for the query mode; latency runs
from each request's *intended* time, so a saturated server inflates
the tail instead of thinning the load.  503/504 answers are counted
as ``shed`` — ingest chunks are retried (content must not be lost),
query requests are not (a shed read is the server's verdict).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from repro.core.builder import DetectionRecord, TrajectoryBuilder
from repro.service import protocol as P
from repro.service.client import ServiceClient
from repro.stream.segmenter import WatermarkSegmenter, event_to_dict
from repro.synth.pacing import ArrivalSchedule
from repro.synth.venues import SyntheticVenue

#: Events (or episodes) per request, matching the stream bench.
DEFAULT_CHUNK = 256

#: Retries of one shed (503) ingest chunk before giving up.
SHED_RETRIES = 50


def _percentile(samples: List[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1,
                max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[index]


@dataclass
class ReplayReport:
    """What one replay run did and how the server behaved.

    ``server`` carries the delivery verification: the final store
    total for batch mode, the close ack for stream mode, and the
    session's ``/v1/health`` ingest/stream counters when the caller
    ran :meth:`TrafficReplayer.verify_delivery`.
    """

    mode: str
    session: str
    requests: int = 0
    ok: int = 0
    shed: int = 0
    errors: int = 0
    events: int = 0
    episodes: int = 0
    seconds: float = 0.0
    behind: int = 0
    rate: Optional[float] = None
    latencies_ms: Dict[str, float] = field(default_factory=dict)
    provenance: Dict[str, object] = field(default_factory=dict)
    server: Dict[str, object] = field(default_factory=dict)

    @property
    def failed(self) -> int:
        """Requests that neither succeeded nor were shed."""
        return self.errors

    def finish(self, started: float,
               latencies: List[float]) -> "ReplayReport":
        self.seconds = time.perf_counter() - started
        if latencies:
            self.latencies_ms = {
                "p50": _percentile(latencies, 0.50) * 1000.0,
                "p95": _percentile(latencies, 0.95) * 1000.0,
                "p99": _percentile(latencies, 0.99) * 1000.0,
                "max": max(latencies) * 1000.0,
            }
        return self

    def as_dict(self) -> Dict[str, object]:
        """JSON-native form for CLI output and BENCH payloads."""
        seconds = self.seconds or 1e-9
        return {
            "mode": self.mode,
            "session": self.session,
            "requests": self.requests,
            "ok": self.ok,
            "shed": self.shed,
            "errors": self.errors,
            "events": self.events,
            "episodes": self.episodes,
            "seconds": self.seconds,
            "behind_schedule": self.behind,
            "target_rate": self.rate,
            "events_per_s": self.events / seconds,
            "requests_per_s": self.requests / seconds,
            "latency_ms": dict(self.latencies_ms),
            "provenance": dict(self.provenance),
            "server": dict(self.server),
        }


class TrafficReplayer:
    """Open-loop load driver for one session on one endpoint.

    Args:
        client: the service client (any transport).
        session: target session name.
        venue: the venue the crowd was synthesized over — supplies
            the local segmenter's NRG (batch mode) and the space
            token the server needs for its own segmenter (both
            modes), keeping batch and stream store content identical.
        rate: events/s (ingest modes) or requests/s (query mode);
            ``None`` replays as fast as the server allows.
        chunk: events per request.
    """

    def __init__(self, client: ServiceClient, session: str,
                 venue: SyntheticVenue,
                 rate: Optional[float] = None,
                 chunk: int = DEFAULT_CHUNK) -> None:
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        self.client = client
        self.session = session
        self.venue = venue
        self.rate = rate
        self.chunk = chunk

    # ------------------------------------------------------------------
    # modes
    # ------------------------------------------------------------------
    def replay_batch(self, events: Iterable[DetectionRecord],
                     gap_seconds: Optional[float] = None
                     ) -> ReplayReport:
        """Segment locally, ship closed episodes as batch ingests."""
        report = ReplayReport(mode="batch", session=self.session,
                              rate=self.rate)
        segmenter = WatermarkSegmenter(
            TrajectoryBuilder(self.venue.dataset_zone_nrg()),
            **({} if gap_seconds is None
               else {"gap_seconds": gap_seconds}))
        schedule = self._chunk_schedule()
        latencies: List[float] = []
        pending: List[Dict] = []
        started = time.perf_counter()
        index = 0
        for chunk, watermark in self._chunks(events):
            intended = schedule.wait(index)
            index += 1
            report.events += len(chunk)
            closed = []
            for record in chunk:
                closed.extend(segmenter.feed(record))
            if watermark is not None:
                closed.extend(segmenter.advance(watermark))
            pending.extend(episode.to_dict() for episode in closed)
            if pending:
                self._ingest(pending, report, intended, latencies)
                pending = []
        closed = segmenter.close()
        pending.extend(episode.to_dict() for episode in closed)
        if pending:
            self._ingest(pending, report,
                         schedule.wait(index), latencies)
        report.behind = schedule.behind
        return report.finish(started, latencies)

    def replay_stream(self, events: Iterable[DetectionRecord],
                      stream: str = "replay",
                      gap_seconds: Optional[float] = None
                      ) -> ReplayReport:
        """Chunked ``AppendEvents`` with honest watermarks."""
        report = ReplayReport(mode="stream", session=self.session,
                              rate=self.rate)
        # The server derives its segmenter from the session's space:
        # create the session with the venue token before streaming.
        self.client.ingest_documents(
            self.session, [], space=self.venue.persist_token)
        self.client.open_stream(
            self.session, stream,
            **({} if gap_seconds is None
               else {"gap_seconds": gap_seconds}))
        schedule = self._chunk_schedule()
        latencies: List[float] = []
        started = time.perf_counter()
        index = 0
        for chunk, watermark in self._chunks(events):
            intended = schedule.wait(index)
            index += 1
            payload = [event_to_dict(record) for record in chunk]
            ack = self._append(stream, payload, watermark, report)
            latencies.append(time.perf_counter() - intended)
            report.events += ack.appended
            report.episodes += ack.episodes_closed
        closed = self.client.close_stream(self.session, stream)
        report.requests += 1
        report.ok += 1
        report.episodes += closed.episodes_closed
        report.behind = schedule.behind
        report.server = {
            "events_acked": closed.events_acked,
            "episodes_total": closed.episodes_total,
        }
        return report.finish(started, latencies)

    def replay_queries(self, count: int,
                       queries: Optional[List[P.Command]] = None
                       ) -> ReplayReport:
        """A paced read mix against the (loaded) session."""
        report = ReplayReport(mode="queries", session=self.session,
                              rate=self.rate)
        mix = queries or [
            P.Summary(session=self.session),
            P.RunQuery(session=self.session,
                       query={"expr": {"op": "annotation",
                                       "kind": "goal",
                                       "value": "visit"}},
                       limit=20, include_total=False),
            P.Flow(session=self.session),
        ]
        schedule = ArrivalSchedule(self.rate)
        latencies: List[float] = []
        started = time.perf_counter()
        for index in range(count):
            intended = schedule.wait(index)
            command = mix[index % len(mix)]
            report.requests += 1
            try:
                self.client.call(command)
                report.ok += 1
            except P.ServiceError as error:
                if getattr(error, "http_status", None) in (503, 504):
                    report.shed += 1
                else:
                    report.errors += 1
            latencies.append(time.perf_counter() - intended)
        report.behind = schedule.behind
        return report.finish(started, latencies)

    # ------------------------------------------------------------------
    # delivery verification
    # ------------------------------------------------------------------
    def verify_delivery(self, report: ReplayReport) -> ReplayReport:
        """Attach the server's health view of this session.

        Batch mode: the session's ingest-accepted counter must cover
        every shipped episode.  Stream mode: the stream section's
        acked events must cover every sent event.  Discrepancies are
        recorded in ``report.server["delivery_ok"]`` rather than
        raised — the caller (bench / CI gate) decides severity.
        """
        health = self.client.health()
        entry = next((item for item in health.get("sessions", [])
                      if item.get("name") == self.session), None)
        server: Dict[str, object] = dict(report.server)
        if entry is not None:
            server["trajectories"] = entry.get("trajectories")
            server["ingest"] = entry.get("ingest")
        if "streams" in health:
            server["streams"] = health["streams"]
        if report.mode == "batch":
            accepted = (entry or {}).get("ingest", {}).get("accepted")
            server["delivery_ok"] = (accepted is not None
                                     and accepted >= report.episodes)
        elif report.mode == "stream":
            acked = server.get("events_acked")
            server["delivery_ok"] = (acked == report.events)
        report.server = server
        return report

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _chunk_schedule(self) -> ArrivalSchedule:
        """One schedule slot per event chunk."""
        if self.rate is None:
            return ArrivalSchedule(None)
        return ArrivalSchedule(self.rate / self.chunk)

    def _chunks(self, events: Iterable[DetectionRecord]
                ) -> Iterator[tuple]:
        """``(chunk, watermark)`` pairs; the watermark is the next
        chunk's first ``t_start`` (honest: nothing earlier can ever
        arrive from an event-time-ordered stream), ``None`` on the
        final chunk."""
        iterator = iter(events)
        chunk: List[DetectionRecord] = []
        held: Optional[DetectionRecord] = None
        while True:
            if held is not None:
                chunk.append(held)
                held = None
            for record in iterator:
                if len(chunk) < self.chunk:
                    chunk.append(record)
                else:
                    held = record
                    break
            if not chunk:
                return
            yield chunk, (held.t_start if held is not None else None)
            if held is None:
                return
            chunk = []

    def _ingest(self, docs: List[Dict], report: ReplayReport,
                intended: float, latencies: List[float]) -> None:
        """One IngestDocuments request; retries shed answers."""
        for _ in range(SHED_RETRIES + 1):
            report.requests += 1
            try:
                ack = self.client.ingest_documents(
                    self.session, docs,
                    space=self.venue.persist_token)
            except P.ServiceError as error:
                if getattr(error, "http_status",
                           None) in (503, 504):
                    report.shed += 1
                    time.sleep(0.05)
                    continue
                report.errors += 1
                raise
            report.ok += 1
            report.episodes += ack.count
            latencies.append(time.perf_counter() - intended)
            report.server = {"total": ack.total}
            return
        report.errors += 1
        raise P.ServiceError(
            "overloaded", "ingest chunk shed {} times".format(
                SHED_RETRIES))

    def _append(self, stream: str, payload: List[Dict],
                watermark: Optional[float],
                report: ReplayReport) -> P.EventsAppended:
        """One AppendEvents request; retries shed answers."""
        for _ in range(SHED_RETRIES + 1):
            report.requests += 1
            try:
                ack = self.client.append_events(
                    self.session, stream, payload,
                    watermark=watermark)
            except P.ServiceError as error:
                if getattr(error, "http_status",
                           None) in (503, 504):
                    report.shed += 1
                    time.sleep(0.05)
                    continue
                report.errors += 1
                raise
            report.ok += 1
            return ack
        report.errors += 1
        raise P.ServiceError(
            "overloaded", "append chunk shed {} times".format(
                SHED_RETRIES))
