"""Streaming million-agent crowd synthesis over a synthetic venue.

Scaling rules:

* **O(open-agents) memory** — agents are generated in day buckets of
  ``agents_per_day`` contiguous indices; only one day's records are
  ever buffered (for the per-day event-time sort), so peak memory is
  independent of the total agent count.  One million agents stream
  through the same footprint as ten thousand.
* **Byte-identical determinism** — every agent owns an arithmetic
  child seed (`splitmix`-style integer mixing of the crowd seed and
  the agent index; *never* a hashed string, which PYTHONHASHSEED would
  salt), so a fixed (venue, spec) pair regenerates the identical event
  stream in any process.  :func:`stream_digest` condenses a stream to
  a sha256 for cheap cross-run identity checks.
* **Event-time order** — emitted records are globally sorted by
  ``(t_start, t_end, mo_id)``: within a day by an explicit sort, and
  across days because visits never start after their day's midnight.
  The stream can therefore feed the watermark segmenter directly.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional

from repro.core.builder import DetectionRecord
from repro.core.timeutil import from_date
from repro.movement.calibration import (
    LOUVRE_CALIBRATION,
    MovementCalibration,
)
from repro.movement.profiles import (
    PROFILES,
    VisitorProfile,
    choose_profile,
)
from repro.movement.walker import GraphWalker
from repro.synth.venues import SyntheticVenue

#: Default corpus epoch (an arbitrary fixed Monday).
DEFAULT_EPOCH = from_date("01-01-2024")

_MASK = (1 << 64) - 1


def _mix(seed: int, index: int) -> int:
    """Arithmetic per-agent child seed (splitmix64-style finalizer)."""
    z = (seed * 0x9E3779B97F4A7C15 + index * 0xBF58476D1CE4E5B9
         + 0x2545F4914F6CDD1D) & _MASK
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
    return z ^ (z >> 31)


@dataclass(frozen=True)
class CrowdSpec:
    """How many agents, under which seed, bucketed how.

    Attributes:
        agents: total number of agents (visits) to synthesize.
        seed: crowd master seed.
        agents_per_day: day-bucket size — the memory bound; every
            bucket's records are sorted and flushed before the next
            day is generated.
        open_hour / close_hour: daily arrival window (visits start
            inside it; dwell may run past closing, as the Louvre's
            late evenings do).
        epoch: corpus start timestamp (day 0, midnight).
    """

    agents: int
    seed: int = 0
    agents_per_day: int = 5000
    open_hour: int = 9
    close_hour: int = 17
    epoch: float = DEFAULT_EPOCH

    def __post_init__(self) -> None:
        if self.agents < 1:
            raise ValueError("agents must be >= 1")
        if self.agents_per_day < 1:
            raise ValueError("agents_per_day must be >= 1")
        if not 0 <= self.open_hour < self.close_hour <= 24:
            raise ValueError(
                "need 0 <= open_hour < close_hour <= 24")

    @property
    def days(self) -> int:
        """Number of day buckets the crowd spans."""
        return -(-self.agents // self.agents_per_day)


class CrowdSynthesizer:
    """Profile-driven detection streams over a synthetic venue.

    Args:
        venue: the generated venue to walk.
        spec: crowd size/seed/bucketing.
        calibration: movement tuning; defaults to the Louvre values.
        profiles: visitor typology; defaults to the canonical four.
    """

    def __init__(self, venue: SyntheticVenue, spec: CrowdSpec,
                 calibration: Optional[MovementCalibration] = None,
                 profiles: Optional[Mapping[str, VisitorProfile]]
                 = None) -> None:
        self.venue = venue
        self.spec = spec
        self.calibration = calibration or LOUVRE_CALIBRATION
        self.profiles = dict(profiles or PROFILES)
        self._nodes = tuple(venue.nrg.nodes)
        #: Largest number of records buffered at once (the memory
        #: gauge the bounded-memory acceptance check reads).
        self.peak_buffered = 0

    # ------------------------------------------------------------------
    # streaming generation
    # ------------------------------------------------------------------
    def iter_events(self) -> Iterator[DetectionRecord]:
        """Stream the crowd's detections in global event-time order."""
        spec = self.spec
        self.peak_buffered = 0
        for day in range(spec.days):
            first = day * spec.agents_per_day
            last = min(spec.agents, first + spec.agents_per_day)
            bucket: List[DetectionRecord] = []
            for index in range(first, last):
                bucket.extend(self._agent_records(index, day))
            self.peak_buffered = max(self.peak_buffered, len(bucket))
            bucket.sort(key=lambda r: (r.t_start, r.t_end, r.mo_id))
            for record in bucket:
                yield record

    def _agent_records(self, index: int,
                       day: int) -> List[DetectionRecord]:
        """One agent's visit: a biased walk squeezed into its day."""
        spec = self.spec
        cal = self.calibration
        rng = random.Random(_mix(spec.seed, index))
        profile = choose_profile(rng)
        walker = GraphWalker(
            self.venue.nrg, rng,
            revisit_penalty=cal.revisit_penalty,
            attractions=self.venue.attractions)
        mo_id = "agent{:07d}".format(index)
        visit_id = "visit{:07d}".format(index)
        dwell_scale = self.venue.grammar.dwell_scale

        day_start = spec.epoch + day * 86400.0
        day_end = day_start + 86400.0
        t = day_start + rng.uniform(spec.open_hour * 3600.0,
                                    spec.close_hour * 3600.0)
        current = self.venue.entrances[0] \
            if rng.random() < cal.entrance_start_probability \
            else rng.choice(self._nodes)
        visited: List[str] = [current]
        wanted = profile.sample_zone_count(rng)
        records: List[DetectionRecord] = []
        steps = 0
        max_steps = wanted * 6 + 10
        while len(records) < wanted and t < day_end:
            steps += 1
            force = (max_steps - steps) <= (wanted - len(records))
            dwell = min(profile.sample_dwell(rng) * dwell_scale,
                        cal.normal_dwell_cap_s)
            if force or rng.random() < profile.detection_probability:
                records.append(DetectionRecord(
                    mo_id, current, t, t + dwell,
                    visit_id=visit_id,
                    attributes={"profile": profile.name}))
            t += dwell + rng.uniform(cal.transit_min_s,
                                     cal.transit_max_s)
            if len(records) >= wanted:
                break
            nxt = self._next_state(rng, walker, current, visited)
            visited.append(nxt)
            current = nxt
        if not records:
            # The arrival landed too close to midnight for a full
            # dwell; keep the agent visible with a zero-length ping.
            records.append(DetectionRecord(
                mo_id, current, t, t, visit_id=visit_id,
                attributes={"profile": profile.name}))
        return records

    def _next_state(self, rng: random.Random, walker: GraphWalker,
                    current: str, visited: List[str]) -> str:
        for _ in range(self.calibration.dead_end_retries):
            candidate = walker.next_state(current, visited)
            if candidate is not None:
                return candidate
        # Dead end: the agent re-appears elsewhere (a coverage gap).
        return rng.choice(self._nodes)

    # ------------------------------------------------------------------
    # provenance & identity
    # ------------------------------------------------------------------
    def provenance(self) -> Dict[str, object]:
        """What produced this stream — embedded in BENCH payloads."""
        return {
            "generator": "synth",
            "venue": self.venue.spec.venue_name,
            "archetype": self.venue.spec.archetype,
            "venue_seed": self.venue.spec.seed,
            "crowd_seed": self.spec.seed,
            "agents": self.spec.agents,
            "agents_per_day": self.spec.agents_per_day,
        }


def event_row(record: DetectionRecord) -> bytes:
    """The canonical byte row of one event (digest/identity unit).

    ``repr`` of the floats round-trips exactly, so two streams are
    byte-identical iff every field of every event matches.
    """
    return "{},{},{!r},{!r},{}\n".format(
        record.mo_id, record.state, record.t_start, record.t_end,
        record.visit_id or "").encode("utf-8")


def stream_digest(events: Iterable[DetectionRecord]) -> str:
    """sha256 over the canonical rows of an event stream."""
    digest = hashlib.sha256()
    for record in events:
        digest.update(event_row(record))
    return digest.hexdigest()
