"""Open-loop arrival scheduling (shared by benches and the replayer).

Extracted from ``benchmarks/bench_service.py``'s ``open_loop``: a
request's latency must run from its **intended** arrival time, never
from the moment a slow server finally let us send it — otherwise a
saturated server silently thins the load and the tail looks healthy
(coordinated omission).  The schedule is fixed up front:

    intended(i) = base + i / rate

``wait(i)`` sleeps until slot ``i`` is due and returns the intended
time; the caller measures ``perf_counter() - intended`` after the
response.  An unpaced schedule (``rate=None``) never sleeps and
returns the current time, so callers can treat paced and as-fast-as-
possible modes uniformly.
"""

from __future__ import annotations

import time
from typing import List, Optional


class ArrivalSchedule:
    """Fixed-rate open-loop arrival schedule.

    Args:
        rate: target arrivals per second, or ``None`` for unpaced
            (closed-loop, as fast as the callee allows).
        start: schedule origin on the ``perf_counter`` clock; defaults
            to the first ``wait`` call, so construction cost never
            counts against slot 0.
    """

    def __init__(self, rate: Optional[float] = None,
                 start: Optional[float] = None) -> None:
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None)")
        self.rate = rate
        self._base = start
        self.behind = 0  # slots that were already overdue on arrival

    @property
    def interval(self) -> Optional[float]:
        """Seconds between consecutive slots (``None`` when unpaced)."""
        return None if self.rate is None else 1.0 / self.rate

    def intended(self, index: int) -> float:
        """The intended ``perf_counter`` time of slot ``index``."""
        if self._base is None:
            self._base = time.perf_counter()
        if self.rate is None:
            return time.perf_counter()
        return self._base + index / self.rate

    def wait(self, index: int) -> float:
        """Block until slot ``index`` is due; return its intended time.

        When the slot is already overdue (the callee is slower than
        the schedule) no sleep happens and the overdue slot is counted
        in :attr:`behind` — the latency the caller measures from the
        returned time then includes the queueing delay, as open-loop
        semantics demand.
        """
        intended = self.intended(index)
        if self.rate is None:
            return intended
        now = time.perf_counter()
        if now < intended:
            time.sleep(intended - now)
        else:
            self.behind += 1
        return intended

    def split(self, ways: int) -> List["ArrivalSchedule"]:
        """Independent per-connection schedules sharing the rate.

        ``ways`` connections each own ``rate / ways`` of the arrival
        stream — the multi-connection decomposition ``open_loop``
        uses.
        """
        if ways < 1:
            raise ValueError("ways must be >= 1")
        if self.rate is None:
            return [ArrivalSchedule(None) for _ in range(ways)]
        return [ArrivalSchedule(self.rate / ways)
                for _ in range(ways)]
