"""Seeded parametric venue grammar over the SITM indoor model.

A venue archetype (museum, airport, stadium, hospital) fixes the
*shape* of the grammar — how many floors, how rooms cluster around
corridors, which vertical connectors join floors, how many one-way
shortcuts and hotspot rooms appear.  A seed fixes every random draw.
The output is a full :class:`~repro.indoor.multilayer.LayeredIndoorGraph`
with the core Building → Floor → Room hierarchy, a directed
accessibility NRG per layer, a beacon per cell, and entrance/exit/
attraction metadata that the crowd synthesizer consumes.

Layout invariants (checked by :meth:`SyntheticVenue.validate` and the
Hypothesis suite in ``tests/synth``):

* every cell footprint is interior-disjoint from its same-floor peers
  (cells are laid out on a grid with 0.5 m gaps; boundaries are
  declared symbolically, as the museum-administration zones are);
* the rooms-layer NRG is strongly connected — every one-way boundary
  is a *shortcut* added on top of an always-bidirectional base
  topology (rooms ↔ row corridor ↔ neighbouring corridors ↔ vertical
  connectors), so ``RoutePlanner`` can reach every room from every
  entrance and every exit from every room;
* the layer hierarchy passes the Section 3.2 rules (consecutive
  layers, contains/covers only, single parent).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.indoor.cells import (
    BoundaryKind,
    Cell,
    CellBoundary,
    CellSpace,
)
from repro.indoor.dual import derive_accessibility_nrg
from repro.indoor.hierarchy import LayerHierarchy, LayerRole
from repro.indoor.multilayer import JointEdge, LayeredIndoorGraph
from repro.indoor.navigation import RoutePlanner, UnreachableError
from repro.indoor.nrg import NodeRelationGraph
from repro.positioning.beacons import Beacon
from repro.spatial.geometry import Polygon
from repro.spatial.topology import TopologicalRelation

#: Grid dimensions, metres.  Gaps keep same-floor footprints
#: interior-disjoint so CellSpace geometry validation passes.
ROOM_W = 8.0
ROOM_H = 6.0
CORRIDOR_H = 3.0
GAP = 0.5
ROW_WIDTH = 6  # rooms per corridor row


@dataclass(frozen=True)
class ArchetypeGrammar:
    """The production rules of one venue archetype.

    Attributes:
        room_class: semantic class of ordinary rooms.
        floor_range: inclusive (min, max) floor count.
        rooms_per_floor_range: inclusive (min, max) rooms per floor.
        vertical_kinds: boundary kinds joining consecutive floors
            (one connector per kind per floor pair, on rotating rows).
        one_way_fraction: chance an adjacent room pair gains an extra
            one-way shortcut opening (museum flow control).
        hotspot_fraction: share of rooms that become attraction
            hotspots (Mona Lisa rooms, departure gates, home stands).
        hotspot_weight: walker attraction weight of a hotspot.
        dwell_scale: multiplier on profile dwell times (airport dwell
            is shorter than museum dwell).
        ring_corridor: close the corridor chain into a ring
            (stadium concourse).
        checkpoints: model the row-0 ↔ row-1 corridor link as a pair
            of opposed one-way CHECKPOINT boundaries (airport
            security) instead of one bidirectional opening.
    """

    room_class: str
    floor_range: Tuple[int, int]
    rooms_per_floor_range: Tuple[int, int]
    vertical_kinds: Tuple[BoundaryKind, ...]
    one_way_fraction: float
    hotspot_fraction: float
    hotspot_weight: float
    dwell_scale: float = 1.0
    ring_corridor: bool = False
    checkpoints: bool = False


#: The four supported archetypes.
ARCHETYPES: Dict[str, ArchetypeGrammar] = {
    "museum": ArchetypeGrammar(
        room_class="Gallery",
        floor_range=(2, 4),
        rooms_per_floor_range=(6, 12),
        vertical_kinds=(BoundaryKind.STAIRCASE, BoundaryKind.ELEVATOR),
        one_way_fraction=0.15,
        hotspot_fraction=0.15,
        hotspot_weight=4.0,
        dwell_scale=1.0,
    ),
    "airport": ArchetypeGrammar(
        room_class="Gate",
        floor_range=(1, 3),
        rooms_per_floor_range=(10, 16),
        vertical_kinds=(BoundaryKind.ELEVATOR, BoundaryKind.RAMP),
        one_way_fraction=0.25,
        hotspot_fraction=0.10,
        hotspot_weight=3.0,
        dwell_scale=0.5,
        checkpoints=True,
    ),
    "stadium": ArchetypeGrammar(
        room_class="Section",
        floor_range=(2, 3),
        rooms_per_floor_range=(12, 20),
        vertical_kinds=(BoundaryKind.STAIRCASE, BoundaryKind.RAMP),
        one_way_fraction=0.10,
        hotspot_fraction=0.20,
        hotspot_weight=2.5,
        dwell_scale=2.0,
        ring_corridor=True,
    ),
    "hospital": ArchetypeGrammar(
        room_class="Ward",
        floor_range=(3, 6),
        rooms_per_floor_range=(5, 10),
        vertical_kinds=(BoundaryKind.ELEVATOR, BoundaryKind.STAIRCASE),
        one_way_fraction=0.05,
        hotspot_fraction=0.10,
        hotspot_weight=2.0,
        dwell_scale=1.5,
    ),
}


@dataclass(frozen=True)
class VenueSpec:
    """What to generate: an archetype, a seed, optional size overrides.

    Attributes:
        archetype: one of :data:`ARCHETYPES`.
        seed: master seed; a fixed (archetype, seed, overrides) tuple
            regenerates the identical venue in any process.
        floors: override the archetype's floor-count draw.
        rooms_per_floor: override the archetype's rooms-per-floor draw.
        name: venue name (defaults to ``"<archetype>-<seed>"``).
    """

    archetype: str
    seed: int = 0
    floors: Optional[int] = None
    rooms_per_floor: Optional[int] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.archetype not in ARCHETYPES:
            raise ValueError(
                "unknown archetype {!r}; pick one of {}".format(
                    self.archetype, sorted(ARCHETYPES)))
        if self.floors is not None and self.floors < 1:
            raise ValueError("floors must be >= 1")
        if self.rooms_per_floor is not None and self.rooms_per_floor < 2:
            raise ValueError("rooms_per_floor must be >= 2")

    @property
    def venue_name(self) -> str:
        return self.name or "{}-{}".format(self.archetype, self.seed)


@dataclass
class SyntheticVenue:
    """A generated venue: the layered graph plus movement metadata.

    Exposes the same duck-typed surface the Louvre space offers to the
    rest of the system: ``zone_hierarchy`` for hierarchy-aware
    similarity, attraction weights / entrances / exits for the walker.
    """

    spec: VenueSpec
    grammar: ArchetypeGrammar
    graph: LayeredIndoorGraph
    hierarchy: LayerHierarchy
    nrg: NodeRelationGraph
    attractions: Dict[str, float]
    entrances: List[str]
    exits: List[str]
    beacons: List[Beacon] = field(default_factory=list)

    @property
    def zone_hierarchy(self) -> LayerHierarchy:
        """Duck-typing alias: similarity lifts states through this."""
        return self.hierarchy

    @property
    def persist_token(self) -> str:
        """A manifest token that regenerates this venue anywhere.

        Recorded by session checkpoints and ``IngestDocuments``; see
        :func:`venue_from_token`.
        """
        spec = self.spec
        return "SyntheticVenue:{}:{}:{}:{}".format(
            spec.archetype, spec.seed,
            "-" if spec.floors is None else spec.floors,
            "-" if spec.rooms_per_floor is None
            else spec.rooms_per_floor)

    def dataset_zone_nrg(self) -> NodeRelationGraph:
        """The detection-layer NRG (Louvre-space duck typing).

        The server's stream segmenter builds its
        :class:`~repro.core.builder.TrajectoryBuilder` over
        ``space.dataset_zone_nrg()``; for a synthetic venue the
        detection layer is the rooms layer.
        """
        return self.nrg

    def zone_attractions(self) -> Dict[str, float]:
        """Walker attraction weights (Louvre-space duck typing)."""
        return dict(self.attractions)

    def entrance_zones(self) -> List[str]:
        """Entrance cells (Louvre-space duck typing)."""
        return list(self.entrances)

    def exit_zones(self) -> List[str]:
        """Exit cells (Louvre-space duck typing)."""
        return list(self.exits)

    @property
    def floors(self) -> int:
        return len(self.graph.layer("floors"))

    @property
    def room_count(self) -> int:
        return len(self.graph.layer("rooms"))

    def validate(self) -> List[str]:
        """Structural + reachability validation; empty list means OK."""
        problems = list(self.graph.validate())
        problems.extend(self.hierarchy.validate())
        nodes = set(self.nrg.nodes)
        if not self.entrances:
            problems.append("venue has no entrance")
            return problems
        reachable = set(self.nrg.reachable_from(self.entrances[0]))
        missing = nodes - reachable - {self.entrances[0]}
        if missing:
            problems.append(
                "{} cells unreachable from entrance {!r}: {}".format(
                    len(missing), self.entrances[0],
                    sorted(missing)[:5]))
        # Co-reachability: every cell must be able to leave again
        # (reach the entrance back over the reversed edge set), which
        # together with forward reachability gives strong connectivity.
        reverse: Dict[str, List[str]] = {}
        for edge in self.nrg.edges:
            reverse.setdefault(edge.target, []).append(edge.source)
        seen = {self.entrances[0]}
        frontier = [self.entrances[0]]
        while frontier:
            current = frontier.pop()
            for predecessor in reverse.get(current, ()):
                if predecessor not in seen:
                    seen.add(predecessor)
                    frontier.append(predecessor)
        stuck = nodes - seen
        if stuck:
            problems.append(
                "{} cells cannot reach entrance {!r} back: {}".format(
                    len(stuck), self.entrances[0], sorted(stuck)[:5]))
        return problems

    def plan_all_rooms(self) -> int:
        """Route from the first entrance to every room; count hops.

        Raises :class:`UnreachableError` if any room is unreachable —
        the stronger, planner-level form of the reachability check.
        """
        planner = RoutePlanner(self.nrg)
        hops = 0
        for node in self.nrg.nodes:
            if node == self.entrances[0]:
                continue
            hops += planner.plan(self.entrances[0], node).hop_count
        return hops

    def summary(self) -> Dict[str, object]:
        """Size card for logs and benchmark provenance."""
        return {
            "venue": self.spec.venue_name,
            "archetype": self.spec.archetype,
            "seed": self.spec.seed,
            "floors": self.floors,
            "cells": self.room_count,
            "edges": self.nrg.transition_count(),
            "joint_edges": self.graph.joint_edge_count,
            "beacons": len(self.beacons),
            "entrances": list(self.entrances),
            "exits": list(self.exits),
        }


def venue_from_token(token: str) -> SyntheticVenue:
    """Regenerate a venue from its :attr:`~SyntheticVenue
    .persist_token` (``SyntheticVenue:archetype:seed:floors:rooms``).

    Raises:
        ValueError: on a malformed token.
    """
    parts = token.split(":")
    if len(parts) != 5 or parts[0] != "SyntheticVenue":
        raise ValueError("not a venue token: {!r}".format(token))
    try:
        spec = VenueSpec(
            archetype=parts[1],
            seed=int(parts[2]),
            floors=None if parts[3] == "-" else int(parts[3]),
            rooms_per_floor=None if parts[4] == "-"
            else int(parts[4]))
    except ValueError:
        raise
    except Exception as error:  # int() of garbage, archetype checks
        raise ValueError("bad venue token {!r}: {}".format(
            token, error))
    return generate_venue(spec)


def _accessibility_layer(space: CellSpace) -> NodeRelationGraph:
    """Derive a layer NRG named after its cell space (layer-name rule)."""
    nrg = derive_accessibility_nrg(space)
    nrg.name = space.name
    return nrg


class _Layout:
    """Mutable state of one generation run."""

    def __init__(self, spec: VenueSpec) -> None:
        self.spec = spec
        self.grammar = ARCHETYPES[spec.archetype]
        self.rng = random.Random(spec.seed)
        self.rooms = CellSpace("rooms")
        self.floors_space = CellSpace("floors")
        self.venue_space = CellSpace("venue")
        self.corridors: Dict[int, List[str]] = {}  # floor -> corridor ids
        self.room_ids: Dict[int, List[str]] = {}   # floor -> room ids
        self.attractions: Dict[str, float] = {}
        self.entrances: List[str] = []
        self.exits: List[str] = []


def generate_venue(spec: VenueSpec) -> SyntheticVenue:
    """Expand a :class:`VenueSpec` into a full :class:`SyntheticVenue`.

    Deterministic: only ``random.Random(spec.seed)`` draws are used and
    every container is iterated in insertion order, so a fixed spec
    yields an identical venue in any process (no str-hash dependence).
    """
    state = _Layout(spec)
    grammar = state.grammar
    rng = state.rng

    floor_count = spec.floors if spec.floors is not None else \
        rng.randint(*grammar.floor_range)
    rooms_per_floor = spec.rooms_per_floor \
        if spec.rooms_per_floor is not None else \
        rng.randint(*grammar.rooms_per_floor_range)

    for floor in range(floor_count):
        _lay_out_floor(state, floor, rooms_per_floor)
    _connect_floors(state, floor_count)
    _add_shortcuts(state, floor_count)
    _pick_hotspots(state)
    _pick_doors(state)

    graph = LayeredIndoorGraph(spec.venue_name)
    _build_upper_layers(state, graph, floor_count)
    nrg = _accessibility_layer(state.rooms)
    graph.add_layer(nrg, state.rooms)
    _link_hierarchy(state, graph, floor_count)

    hierarchy = LayerHierarchy(
        graph, ["venue", "floors", "rooms"],
        roles=[LayerRole.BUILDING, LayerRole.FLOOR, LayerRole.ROOM])

    beacons = [
        Beacon(beacon_id="b:" + cell.cell_id,
               position=cell.representative_point(),
               floor=cell.floor or 0)
        for cell in state.rooms
    ]

    return SyntheticVenue(
        spec=spec,
        grammar=grammar,
        graph=graph,
        hierarchy=hierarchy,
        nrg=nrg,
        attractions=state.attractions,
        entrances=state.entrances,
        exits=state.exits,
        beacons=beacons,
    )


# ----------------------------------------------------------------------
# grammar productions
# ----------------------------------------------------------------------
def _room_id(floor: int, index: int) -> str:
    return "f{}r{:02d}".format(floor, index)


def _corridor_id(floor: int, row: int) -> str:
    return "f{}c{}".format(floor, row)


def _lay_out_floor(state: _Layout, floor: int,
                   rooms_per_floor: int) -> None:
    """Rows of rooms, one corridor strip per row, all gap-separated."""
    grammar = state.grammar
    rows = (rooms_per_floor + ROW_WIDTH - 1) // ROW_WIDTH
    state.corridors[floor] = []
    state.room_ids[floor] = []
    row_pitch = ROOM_H + CORRIDOR_H + 2 * GAP
    for row in range(rows):
        first = row * ROW_WIDTH
        count = min(ROW_WIDTH, rooms_per_floor - first)
        base_y = row * row_pitch
        for i in range(count):
            room = _room_id(floor, first + i)
            x0 = i * (ROOM_W + GAP)
            state.rooms.add_cell(Cell(
                cell_id=room,
                name="{} {}".format(grammar.room_class, first + i),
                semantic_class=grammar.room_class,
                geometry=Polygon.rectangle(
                    x0, base_y, x0 + ROOM_W, base_y + ROOM_H),
                floor=floor,
            ))
            state.room_ids[floor].append(room)
        corridor = _corridor_id(floor, row)
        width = count * ROOM_W + (count - 1) * GAP
        state.rooms.add_cell(Cell(
            cell_id=corridor,
            name="Corridor {}/{}".format(floor, row),
            semantic_class="Corridor",
            geometry=Polygon.rectangle(
                0.0, base_y + ROOM_H + GAP,
                width, base_y + ROOM_H + GAP + CORRIDOR_H),
            floor=floor,
        ))
        state.corridors[floor].append(corridor)
        for i in range(count):
            room = _room_id(floor, first + i)
            state.rooms.add_boundary(CellBoundary(
                boundary_id="door:{}:{}".format(room, corridor),
                source=room, target=corridor,
                kind=BoundaryKind.DOOR))
    _connect_corridors(state, floor, rows)


def _connect_corridors(state: _Layout, floor: int, rows: int) -> None:
    """Chain the floor's corridors; optionally close the ring."""
    grammar = state.grammar
    corridors = state.corridors[floor]
    for row in range(rows - 1):
        lower, upper = corridors[row], corridors[row + 1]
        if grammar.checkpoints and row == 0:
            # Airport security: landside → airside and the opposed
            # exit lane, as two one-way checkpoint boundaries (the
            # pair keeps the base topology strongly connected).
            state.rooms.add_boundary(CellBoundary(
                boundary_id="chk:{}:{}".format(lower, upper),
                source=lower, target=upper,
                kind=BoundaryKind.CHECKPOINT, bidirectional=False))
            state.rooms.add_boundary(CellBoundary(
                boundary_id="chk:{}:{}".format(upper, lower),
                source=upper, target=lower,
                kind=BoundaryKind.CHECKPOINT, bidirectional=False))
        else:
            state.rooms.add_boundary(CellBoundary(
                boundary_id="open:{}:{}".format(lower, upper),
                source=lower, target=upper,
                kind=BoundaryKind.OPENING))
    if grammar.ring_corridor and rows > 2:
        state.rooms.add_boundary(CellBoundary(
            boundary_id="ring:{}".format(floor),
            source=corridors[-1], target=corridors[0],
            kind=BoundaryKind.OPENING))


def _connect_floors(state: _Layout, floor_count: int) -> None:
    """Vertical connectors between consecutive floors' corridors."""
    grammar = state.grammar
    for floor in range(floor_count - 1):
        below = state.corridors[floor]
        above = state.corridors[floor + 1]
        for offset, kind in enumerate(grammar.vertical_kinds):
            src = below[offset % len(below)]
            dst = above[offset % len(above)]
            state.rooms.add_boundary(CellBoundary(
                boundary_id="{}:{}:{}".format(kind.value, src, dst),
                source=src, target=dst, kind=kind))


def _add_shortcuts(state: _Layout, floor_count: int) -> None:
    """Extra one-way openings between adjacent same-row rooms.

    Always additive: the bidirectional room↔corridor base stays, so
    one-way shortcuts can never disconnect the venue.
    """
    grammar = state.grammar
    rng = state.rng
    for floor in range(floor_count):
        rooms = state.room_ids[floor]
        for i in range(len(rooms) - 1):
            if (i + 1) % ROW_WIDTH == 0:
                continue  # next room starts a new row
            if rng.random() < grammar.one_way_fraction:
                state.rooms.add_boundary(CellBoundary(
                    boundary_id="oneway:{}:{}".format(
                        rooms[i], rooms[i + 1]),
                    source=rooms[i], target=rooms[i + 1],
                    kind=BoundaryKind.OPENING, bidirectional=False))


def _pick_hotspots(state: _Layout) -> None:
    """Attraction weights: a seeded sample of rooms become hotspots."""
    grammar = state.grammar
    all_rooms = [room for rooms in state.room_ids.values()
                 for room in rooms]
    hotspot_count = max(1, int(len(all_rooms)
                               * grammar.hotspot_fraction))
    hotspots = set(state.rng.sample(all_rooms, hotspot_count))
    for room in all_rooms:
        state.attractions[room] = (grammar.hotspot_weight
                                   if room in hotspots else 1.0)
    for corridors in state.corridors.values():
        for corridor in corridors:
            state.attractions[corridor] = 1.0


def _pick_doors(state: _Layout) -> None:
    """Entrance and exit: first and last ground-floor corridors."""
    ground = state.corridors[0]
    state.entrances = [ground[0]]
    state.exits = [ground[-1] if len(ground) > 1 else ground[0]]


def _build_upper_layers(state: _Layout, graph: LayeredIndoorGraph,
                        floor_count: int) -> None:
    """The venue and floors layers (symbolic cells, staircase chain)."""
    spec = state.spec
    state.venue_space.add_cell(Cell(
        cell_id="venue:" + spec.venue_name,
        name=spec.venue_name,
        semantic_class="Building",
    ))
    graph.add_layer(_accessibility_layer(state.venue_space),
                    state.venue_space)
    for floor in range(floor_count):
        state.floors_space.add_cell(Cell(
            cell_id="floor:{}".format(floor),
            name="Floor {}".format(floor),
            semantic_class="Floor",
            floor=floor,
        ))
    for floor in range(floor_count - 1):
        state.floors_space.add_boundary(CellBoundary(
            boundary_id="stairs:floor:{}".format(floor),
            source="floor:{}".format(floor),
            target="floor:{}".format(floor + 1),
            kind=BoundaryKind.STAIRCASE))
    graph.add_layer(_accessibility_layer(state.floors_space),
                    state.floors_space)


def _link_hierarchy(state: _Layout, graph: LayeredIndoorGraph,
                    floor_count: int) -> None:
    """Declared contains joint edges: venue → floors → rooms/corridors.

    Declared (not geometry-derived) because the upper layers are
    symbolic, exactly like the museum-administration zones.
    """
    venue_cell = "venue:" + state.spec.venue_name
    for floor in range(floor_count):
        floor_cell = "floor:{}".format(floor)
        graph.add_joint_edge(JointEdge(
            "venue", venue_cell, "floors", floor_cell,
            TopologicalRelation.CONTAINS))
        for cell_id in (state.room_ids[floor]
                        + state.corridors[floor]):
            graph.add_joint_edge(JointEdge(
                "floors", floor_cell, "rooms", cell_id,
                TopologicalRelation.CONTAINS))
