"""The semantic indoor trajectory (Definitions 3.1 and 3.2).

Definition 3.1: a semantic trajectory is the couple

    T(ID_mo, t_start, t_end) = (trace(ID_mo, t_start, t_end), A_traj)

of its spatiotemporal **trace** and a **non-empty** set of semantic
annotations describing it in its entirety.

Definition 3.2: the trace is the sequence

    (e_i, v_i, t_start_i, t_end_i, A_i)  for i in [1, n]

where ``e_i = (v_{i-1}, v_i)`` is the transition (boundary crossed) that
led the moving object into state ``v_i`` at ``t_start_i``, where it
stayed until ``t_end_i``, and ``A_i`` is a possibly empty set of
annotations describing that stay.  The first entry has no incoming
transition (the paper writes it ``_``, here ``None``).

The model is **event-based**: "only a change of the spatial cell that
the MO is located in, or a change of the semantic information regarding
the MO's presence in that cell, needs to be accompanied by a new tuple"
— so consecutive entries may share a state when their annotation sets
differ (see :mod:`repro.core.events`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.core.annotations import AnnotationSet
from repro.core.timeutil import clock, duration_hms

#: Sensors may report short overlapping detections at zone borders
#: ("sensor detection area overlaps" — Section 1; the paper's own trace
#: example overlaps room001/hall003 by four seconds).  Overlaps up to
#: this many seconds are tolerated by trace validation.
DETECTION_OVERLAP_TOLERANCE = 10.0


@dataclass(frozen=True)
class TraceEntry:
    """One presence interval: ``(e_i, v_i, t_start_i, t_end_i, A_i)``.

    Attributes:
        transition: identifier of the boundary crossed to enter the
            state (``e_i``), ``None`` for the first entry of a trace or
            for event-based splits that stay in the same cell.
        state: the indoor graph node (cell id) the object is in (``v_i``).
        t_start: entry timestamp (``t_start_i``).
        t_end: exit timestamp (``t_end_i``).
        annotations: the stay's annotation set (``A_i``), may be empty.
        transition_annotations: optional semantic transition annotations
            (``A_trans_i`` of footnote 2 — e.g. alarm probability).
    """

    transition: Optional[str]
    state: str
    t_start: float
    t_end: float
    annotations: AnnotationSet = field(default_factory=AnnotationSet.empty)
    transition_annotations: AnnotationSet = field(
        default_factory=AnnotationSet.empty)

    def __post_init__(self) -> None:
        if not self.state:
            raise ValueError("a trace entry needs a state (cell id)")
        if self.t_end < self.t_start:
            raise ValueError(
                "entry at {!r}: t_end {} precedes t_start {}".format(
                    self.state, self.t_end, self.t_start))

    @property
    def duration(self) -> float:
        """Stay duration in seconds (0 marks a potential detection error)."""
        return self.t_end - self.t_start

    def overlaps_time(self, t_start: float, t_end: float) -> bool:
        """True when the stay intersects the (closed) time interval."""
        return self.t_start <= t_end and t_start <= self.t_end

    def contains_time(self, t: float) -> bool:
        """True when ``t`` falls within the stay (closed interval)."""
        return self.t_start <= t <= self.t_end

    def describe(self) -> str:
        """The paper's tuple notation, e.g.
        ``(door012, hall003, 11:32:31, 11:40:00, ∅)``."""
        ann = repr(self.annotations) if self.annotations else "∅"
        return "({}, {}, {}, {}, {})".format(
            self.transition or "_", self.state,
            clock(self.t_start), clock(self.t_end), ann)

    def to_dict(self) -> Dict:
        """Plain-data form for persistence."""
        return {
            "transition": self.transition,
            "state": self.state,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "annotations": self.annotations.to_list(),
            "transition_annotations":
                self.transition_annotations.to_list(),
        }

    @staticmethod
    def from_dict(data: Mapping) -> "TraceEntry":
        """Inverse of :meth:`to_dict`."""
        return TraceEntry(
            transition=data.get("transition"),
            state=data["state"],
            t_start=data["t_start"],
            t_end=data["t_end"],
            annotations=AnnotationSet.from_list(
                data.get("annotations", ())),
            transition_annotations=AnnotationSet.from_list(
                data.get("transition_annotations", ())),
        )


class TraceValidationError(ValueError):
    """Raised when a trace violates Definition 3.2's sequencing rules."""


class Trace:
    """An ordered sequence of :class:`TraceEntry` items.

    Invariants enforced at construction:

    * entries are ordered by ``t_start``;
    * an entry may start at most :data:`DETECTION_OVERLAP_TOLERANCE`
      seconds before its predecessor ends (bounded sensing overlap);
    * only the first entry may lack a transition **unless** it repeats
      the predecessor's state (an event-based semantic split).
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: Iterable[TraceEntry]) -> None:
        entries = tuple(entries)
        _validate_sequence(entries)
        self._entries: Tuple[TraceEntry, ...] = entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._entries)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace(self._entries[index])
        return self._entries[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        return hash(self._entries)

    def __repr__(self) -> str:
        return "Trace({} entries)".format(len(self._entries))

    @property
    def entries(self) -> Tuple[TraceEntry, ...]:
        """The underlying entry tuple."""
        return self._entries

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def states(self) -> List[str]:
        """The state of every entry, in order (repeats possible)."""
        return [entry.state for entry in self._entries]

    def distinct_state_sequence(self) -> List[str]:
        """States with consecutive repeats collapsed.

        This is the symbolic "zone sequence" consumed by sequential
        pattern mining: event-based semantic splits inside one cell do
        not create artificial moves.
        """
        sequence: List[str] = []
        for entry in self._entries:
            if not sequence or sequence[-1] != entry.state:
                sequence.append(entry.state)
        return sequence

    def transitions(self) -> List[Tuple[str, str]]:
        """Ordered ``(from_state, to_state)`` pairs of actual moves."""
        seq = self.distinct_state_sequence()
        return list(zip(seq, seq[1:]))

    def total_duration(self) -> float:
        """Sum of stay durations (excludes inter-entry gaps)."""
        return sum(entry.duration for entry in self._entries)

    def span(self) -> Tuple[float, float]:
        """``(first t_start, last t_end)``.

        Raises:
            ValueError: for an empty trace.
        """
        if not self._entries:
            raise ValueError("empty trace has no span")
        return self._entries[0].t_start, self._entries[-1].t_end

    def entry_at(self, t: float) -> Optional[TraceEntry]:
        """The entry whose stay contains ``t``, if any.

        When a bounded sensing overlap makes two entries contain ``t``,
        the later entry wins (the newer detection supersedes).
        """
        found: Optional[TraceEntry] = None
        for entry in self._entries:
            if entry.contains_time(t):
                found = entry
        return found

    def entries_overlapping(self, t_start: float,
                            t_end: float) -> List[TraceEntry]:
        """All entries intersecting the (closed) time window."""
        return [e for e in self._entries if e.overlaps_time(t_start, t_end)]

    def time_in_state(self, state: str) -> float:
        """Total stay duration accumulated in ``state``."""
        return sum(e.duration for e in self._entries if e.state == state)

    def visits_state(self, state: str) -> bool:
        """True when any entry's state is ``state``."""
        return any(e.state == state for e in self._entries)

    # ------------------------------------------------------------------
    # functional updates
    # ------------------------------------------------------------------
    def with_entry_inserted(self, index: int,
                            entry: TraceEntry) -> "Trace":
        """A new trace with ``entry`` inserted at ``index``.

        Used by missing-presence inference (Figure 6) to add the
        undetected tuple between two detections; the result is
        re-validated.
        """
        entries = list(self._entries)
        entries.insert(index, entry)
        return Trace(entries)

    def with_entry_replaced(self, index: int,
                            *replacements: TraceEntry) -> "Trace":
        """A new trace with entry ``index`` replaced by ``replacements``."""
        entries = list(self._entries)
        entries[index:index + 1] = list(replacements)
        return Trace(entries)

    def describe(self) -> str:
        """The paper's multi-line trace notation."""
        inner = ",\n  ".join(entry.describe() for entry in self._entries)
        return "{\n  " + inner + " }"

    def to_list(self) -> List[Dict]:
        """Plain-data form for persistence."""
        return [entry.to_dict() for entry in self._entries]

    @staticmethod
    def from_list(data: Iterable[Mapping]) -> "Trace":
        """Inverse of :meth:`to_list`."""
        return Trace(TraceEntry.from_dict(item) for item in data)


def _validate_sequence(entries: Tuple[TraceEntry, ...]) -> None:
    for i in range(1, len(entries)):
        previous = entries[i - 1]
        current = entries[i]
        if current.t_start < previous.t_start:
            raise TraceValidationError(
                "entries out of order at index {}: {} < {}".format(
                    i, current.t_start, previous.t_start))
        if current.t_start < previous.t_end - DETECTION_OVERLAP_TOLERANCE:
            raise TraceValidationError(
                "entry {} overlaps its predecessor by more than the "
                "sensing tolerance ({}s)".format(
                    i, DETECTION_OVERLAP_TOLERANCE))
        if current.transition is None \
                and current.state != previous.state:
            raise TraceValidationError(
                "entry {} changes state ({} → {}) without a transition; "
                "only event-based same-state splits may omit e_i".format(
                    i, previous.state, current.state))


class SemanticTrajectory:
    """Definition 3.1: ``T = (trace, A_traj)`` with identity metadata.

    Args:
        mo_id: the moving object identifier (``ID_mo``).
        trace: the spatiotemporal trace.
        annotations: ``A_traj`` — must be non-empty per Definition 3.1.
        t_start: trajectory start; defaults to the trace's first entry.
        t_end: trajectory end; defaults to the trace's last exit.

    Raises:
        ValueError: on an empty trace, empty ``A_traj``, or a trajectory
            span that does not enclose the trace.
    """

    __slots__ = ("mo_id", "trace", "annotations", "t_start", "t_end")

    def __init__(self, mo_id: str, trace: Trace,
                 annotations: AnnotationSet,
                 t_start: Optional[float] = None,
                 t_end: Optional[float] = None) -> None:
        if not mo_id:
            raise ValueError("a trajectory needs a moving-object id")
        if len(trace) == 0:
            raise ValueError("a trajectory needs a non-empty trace")
        if not annotations:
            raise ValueError(
                "Definition 3.1 requires a non-empty A_traj; annotate "
                "the trajectory (e.g. AnnotationSet.goals('visit'))")
        first_start, last_end = trace.span()
        self.mo_id = mo_id
        self.trace = trace
        self.annotations = annotations
        self.t_start = first_start if t_start is None else t_start
        self.t_end = last_end if t_end is None else t_end
        if self.t_start > first_start or self.t_end < last_end:
            raise ValueError(
                "trajectory span [{}, {}] must enclose its trace "
                "[{}, {}]".format(self.t_start, self.t_end,
                                  first_start, last_end))

    # ------------------------------------------------------------------
    # identity & basics
    # ------------------------------------------------------------------
    @property
    def key(self) -> Tuple[str, float, float]:
        """The paper's trajectory identity ``(ID_mo, t_start, t_end)``."""
        return (self.mo_id, self.t_start, self.t_end)

    @property
    def duration(self) -> float:
        """``t_end - t_start`` in seconds."""
        return self.t_end - self.t_start

    def __len__(self) -> int:
        return len(self.trace)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SemanticTrajectory):
            return NotImplemented
        return (self.key == other.key and self.trace == other.trace
                and self.annotations == other.annotations)

    def __hash__(self) -> int:
        return hash((self.key, self.trace, self.annotations))

    def __repr__(self) -> str:
        return ("SemanticTrajectory(mo={!r}, entries={}, span={}, "
                "annotations={!r})".format(
                    self.mo_id, len(self.trace),
                    duration_hms(self.duration), self.annotations))

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def states(self) -> List[str]:
        """Delegates to :meth:`Trace.states`."""
        return self.trace.states()

    def distinct_state_sequence(self) -> List[str]:
        """Delegates to :meth:`Trace.distinct_state_sequence`."""
        return self.trace.distinct_state_sequence()

    def state_at(self, t: float) -> Optional[str]:
        """The state at time ``t``, if the object was detected then."""
        entry = self.trace.entry_at(t)
        return None if entry is None else entry.state

    def with_trace(self, trace: Trace) -> "SemanticTrajectory":
        """A copy with a different trace (annotations preserved)."""
        return SemanticTrajectory(self.mo_id, trace, self.annotations)

    def with_annotations(self,
                         annotations: AnnotationSet) -> "SemanticTrajectory":
        """A copy with a different ``A_traj``."""
        return SemanticTrajectory(self.mo_id, self.trace, annotations,
                                  self.t_start, self.t_end)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """Plain-data form for persistence."""
        return {
            "mo_id": self.mo_id,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "annotations": self.annotations.to_list(),
            "trace": self.trace.to_list(),
        }

    @staticmethod
    def from_dict(data: Mapping) -> "SemanticTrajectory":
        """Inverse of :meth:`to_dict`."""
        return SemanticTrajectory(
            mo_id=data["mo_id"],
            trace=Trace.from_list(data["trace"]),
            annotations=AnnotationSet.from_list(data["annotations"]),
            t_start=data.get("t_start"),
            t_end=data.get("t_end"),
        )
