"""From raw symbolic detections to semantic trajectories.

Section 4.1 describes the input: "each visit consists of a sequence of
timestamped 'zone detections', i.e. detections of the visitor's
smartphone inside a certain zone", with known quirks — "around 10% of
the zone detections have a duration of zero value, forcing us to filter
them out as detection errors", sparse coverage, and app usage that may
start late or stop early.

:class:`TrajectoryBuilder` turns such records into SITM trajectories:

1. **cleaning** — drop zero/negative-duration detections and (optionally)
   detections in states unknown to the space graph;
2. **visit segmentation** — split each moving object's records into
   visits on a configurable inactivity gap (unless records already
   carry a ``visit_id``);
3. **trace construction** — resolve each state change to a transition
   ``e_i`` via the layer's accessibility NRG (picking the boundary when
   it is unique), marking unobserved transitions;
4. **annotation** — attach the default whole-trajectory annotation set
   (Definition 3.1 requires A_traj to be non-empty).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.annotations import AnnotationSet
from repro.core.trajectory import SemanticTrajectory, Trace, TraceEntry
from repro.indoor.nrg import NodeRelationGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.metrics import PipelineMetrics

#: Prefix used for transitions observed in the data but absent from the
#: accessibility NRG — either a data error or an incomplete graph, both
#: worth surfacing ("the accessibility topology ... can therefore also
#: assist in filtering out data errors" — Section 4.2).
UNOBSERVED_TRANSITION_PREFIX = "unobserved:"


@dataclass(frozen=True)
class DetectionRecord:
    """One raw zone detection.

    Attributes:
        mo_id: the moving object (visitor) identifier.
        state: the detected symbolic location (zone/cell id).
        t_start: detection interval start.
        t_end: detection interval end.
        visit_id: optional pre-assigned visit identifier.
        attributes: free-form source attributes (device type, ...).
    """

    mo_id: str
    state: str
    t_start: float
    t_end: float
    visit_id: Optional[str] = None
    attributes: Mapping[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Detection duration in seconds."""
        return self.t_end - self.t_start


@dataclass
class CleaningReport:
    """What the cleaning stage did to a record batch."""

    total: int = 0
    kept: int = 0
    dropped_zero_duration: int = 0
    dropped_negative_duration: int = 0
    dropped_unknown_state: int = 0
    #: records fully contained in an earlier record of the same moving
    #: object (duplicate uploads, sensor echoes) — dropped.
    dropped_contained: int = 0
    #: records whose start overlapped the previous record beyond the
    #: sensing tolerance — their start was clipped forward.
    clipped_overlaps: int = 0

    @property
    def dropped(self) -> int:
        """Total records dropped."""
        return (self.dropped_zero_duration
                + self.dropped_negative_duration
                + self.dropped_unknown_state
                + self.dropped_contained)

    @property
    def zero_duration_share(self) -> float:
        """Share of zero-duration records — the paper reports ~10 %."""
        if self.total == 0:
            return 0.0
        return self.dropped_zero_duration / self.total


@dataclass
class BuildReport:
    """Summary of a full build run.

    When the build ran on the pipeline engine, ``stage_metrics`` holds
    the per-stage instrumentation (items in/out, drop reasons, wall
    time) the aggregate numbers were derived from.
    """

    cleaning: CleaningReport = field(default_factory=CleaningReport)
    trajectories: int = 0
    entries: int = 0
    unobserved_transitions: int = 0
    stage_metrics: Optional["PipelineMetrics"] = None

    @property
    def transitions(self) -> int:
        """Intra-visit transitions (entries minus one per trajectory)."""
        return self.entries - self.trajectories


@dataclass(frozen=True)
class TraceDraft:
    """A constructed trace awaiting its trajectory-level annotations.

    The trace-construction stage emits drafts because Definition 3.1
    forbids a :class:`SemanticTrajectory` with an empty ``A_traj`` —
    attaching the annotation set is a stage of its own.
    """

    mo_id: str
    trace: Trace
    unobserved_transitions: int = 0


class TrajectoryBuilder:
    """Builds semantic trajectories from raw detection records.

    Args:
        nrg: the accessibility NRG of the detection layer (e.g. the
            thematic-zone layer for the Louvre dataset).
        default_annotations: the ``A_traj`` attached to every built
            trajectory; defaults to ``{goal:visit}`` as in the paper's
            museum setting.
        visit_gap_seconds: inactivity gap splitting two visits of the
            same moving object when records carry no ``visit_id``.
        min_duration: detections shorter than this are dropped as
            errors (0 reproduces the paper's zero-duration filter).
        drop_unknown_states: drop detections whose state is not an NRG
            node (otherwise they are kept verbatim).
    """

    def __init__(self, nrg: NodeRelationGraph,
                 default_annotations: Optional[AnnotationSet] = None,
                 visit_gap_seconds: float = 4 * 3600.0,
                 min_duration: float = 0.0,
                 drop_unknown_states: bool = True) -> None:
        self.nrg = nrg
        self.default_annotations = (default_annotations
                                    if default_annotations is not None
                                    else AnnotationSet.goals("visit"))
        self.visit_gap_seconds = visit_gap_seconds
        self.min_duration = min_duration
        self.drop_unknown_states = drop_unknown_states

    def config_fingerprint(self) -> str:
        """A stable digest of everything that shapes the build output.

        Covers the NRG's node/edge structure and every builder knob,
        so the pipeline stage cache can prove two builds equivalent
        (see :mod:`repro.pipeline.cache`).
        """
        from repro.pipeline.cache import fingerprint_of

        edges = sorted((edge.source, edge.target, edge.edge_id)
                       for edge in self.nrg.edges)
        annotations = sorted(repr(a) for a in self.default_annotations)
        return fingerprint_of(
            "trajectory-builder", sorted(self.nrg.nodes), edges,
            annotations, self.visit_gap_seconds, self.min_duration,
            self.drop_unknown_states)

    # ------------------------------------------------------------------
    # stage 1: cleaning
    # ------------------------------------------------------------------
    def classify_record(self, record: DetectionRecord) -> Optional[str]:
        """The drop reason for a record, or ``None`` when it is kept.

        Reasons are the stable keys the pipeline metrics report:
        ``negative_duration``, ``zero_duration``, ``unknown_state``.
        """
        if record.duration < 0:
            return "negative_duration"
        if record.duration <= self.min_duration:
            return "zero_duration"
        if self.drop_unknown_states and record.state not in self.nrg:
            return "unknown_state"
        return None

    def clean(self, records: Iterable[DetectionRecord]
              ) -> Tuple[List[DetectionRecord], CleaningReport]:
        """Filter error records; returns survivors sorted by (mo, time)."""
        report = CleaningReport()
        kept: List[DetectionRecord] = []
        for record in records:
            report.total += 1
            reason = self.classify_record(record)
            if reason == "negative_duration":
                report.dropped_negative_duration += 1
            elif reason == "zero_duration":
                report.dropped_zero_duration += 1
            elif reason == "unknown_state":
                report.dropped_unknown_state += 1
            else:
                kept.append(record)
        kept.sort(key=lambda r: (r.mo_id, r.t_start, r.t_end))
        kept = self._resolve_overlaps(kept, report)
        report.kept = len(kept)
        return kept, report

    def _resolve_overlaps(self, records: List[DetectionRecord],
                          report: CleaningReport
                          ) -> List[DetectionRecord]:
        """Repair same-object records overlapping beyond the tolerance.

        Real feeds contain duplicate uploads and sensor echoes; a
        record starting before its predecessor's end (minus the
        bounded sensing overlap the model tolerates) is either fully
        contained — dropped — or clipped to start where the
        predecessor ended.
        """
        from repro.core.trajectory import DETECTION_OVERLAP_TOLERANCE

        resolved: List[DetectionRecord] = []
        last_end: Dict[str, float] = {}
        for record in records:
            previous_end = last_end.get(record.mo_id)
            if previous_end is not None and record.t_start \
                    < previous_end - DETECTION_OVERLAP_TOLERANCE:
                if record.t_end <= previous_end:
                    report.dropped_contained += 1
                    continue
                record = DetectionRecord(
                    record.mo_id, record.state, previous_end,
                    record.t_end, record.visit_id, record.attributes)
                report.clipped_overlaps += 1
            resolved.append(record)
            last_end[record.mo_id] = max(record.t_end,
                                         previous_end or record.t_end)
        return resolved

    # ------------------------------------------------------------------
    # stage 2: visit segmentation
    # ------------------------------------------------------------------
    def split_visits(self, records: Sequence[DetectionRecord]
                     ) -> List[List[DetectionRecord]]:
        """Group cleaned records into visits.

        Records with a ``visit_id`` group by ``(mo_id, visit_id)``;
        records without group by ``mo_id`` and split on the inactivity
        gap.  Input must be sorted (as :meth:`clean` returns it).
        """
        with_id: Dict[Tuple[str, str], List[DetectionRecord]] = {}
        without_id: Dict[str, List[DetectionRecord]] = {}
        for record in records:
            if record.visit_id is not None:
                with_id.setdefault((record.mo_id, record.visit_id),
                                   []).append(record)
            else:
                without_id.setdefault(record.mo_id, []).append(record)
        visits: List[List[DetectionRecord]] = list(with_id.values())
        for mo_records in without_id.values():
            current: List[DetectionRecord] = []
            for record in mo_records:
                if current and (record.t_start - current[-1].t_end
                                > self.visit_gap_seconds):
                    visits.append(current)
                    current = []
                current.append(record)
            if current:
                visits.append(current)
        visits.sort(key=lambda v: (v[0].mo_id, v[0].t_start))
        return visits

    # ------------------------------------------------------------------
    # stage 3+4: trace construction and annotation
    # ------------------------------------------------------------------
    def resolve_transition(self, from_state: str,
                           to_state: str) -> Tuple[str, bool]:
        """Find the transition id for an observed state change.

        Returns ``(transition_id, observed_in_graph)``.  When the NRG
        has exactly one edge for the move its boundary (or edge) id is
        used; with several parallel edges the data cannot tell which
        door was used, so a deterministic first edge is picked (the
        paper notes ``e_i`` is "albeit optional" knowledge).  When the
        NRG has no such edge the transition is marked unobserved.
        """
        if from_state in self.nrg and to_state in self.nrg:
            edges = self.nrg.edges_between(from_state, to_state)
            if edges:
                edge = edges[0]
                return (edge.boundary_id or edge.edge_id, True)
        return (UNOBSERVED_TRANSITION_PREFIX
                + "{}->{}".format(from_state, to_state), False)

    def construct_trace(self, visit: Sequence[DetectionRecord]
                        ) -> TraceDraft:
        """Build the trace of one visit (stage 3, no annotations yet).

        Raises:
            ValueError: for an empty visit or mixed moving objects.
        """
        if not visit:
            raise ValueError("cannot build a trajectory from no records")
        mo_ids = {record.mo_id for record in visit}
        if len(mo_ids) != 1:
            raise ValueError(
                "one trajectory concerns one moving object, got {}".format(
                    sorted(mo_ids)))
        entries: List[TraceEntry] = []
        unobserved = 0
        previous: Optional[DetectionRecord] = None
        for record in visit:
            transition: Optional[str] = None
            if previous is not None and previous.state != record.state:
                transition, observed = self.resolve_transition(
                    previous.state, record.state)
                if not observed:
                    unobserved += 1
            entries.append(TraceEntry(
                transition=transition,
                state=record.state,
                t_start=record.t_start,
                t_end=record.t_end,
            ))
            previous = record
        return TraceDraft(mo_id=next(iter(mo_ids)),
                          trace=Trace(entries),
                          unobserved_transitions=unobserved)

    def annotate(self, draft: TraceDraft,
                 annotations: Optional[AnnotationSet] = None
                 ) -> SemanticTrajectory:
        """Attach ``A_traj`` to a draft (stage 4), completing it."""
        return SemanticTrajectory(
            mo_id=draft.mo_id,
            trace=draft.trace,
            annotations=annotations if annotations is not None
            else self.default_annotations,
        )

    def build_trajectory(self, visit: Sequence[DetectionRecord],
                         annotations: Optional[AnnotationSet] = None,
                         report: Optional[BuildReport] = None
                         ) -> SemanticTrajectory:
        """Build one semantic trajectory from one visit's records.

        Raises:
            ValueError: for an empty visit or mixed moving objects.
        """
        draft = self.construct_trace(visit)
        if report is not None:
            report.unobserved_transitions += draft.unobserved_transitions
        return self.annotate(draft, annotations)

    # ------------------------------------------------------------------
    # the composed pipeline
    # ------------------------------------------------------------------
    def stages(self, streaming: bool = False) -> List["object"]:
        """The builder decomposed into its four pipeline stages.

        Args:
            streaming: passed to the segmentation stage; see
                :class:`repro.pipeline.stages.SegmentStage` for the
                contiguity assumption streaming mode makes.
        """
        from repro.pipeline.stages import (
            AnnotateStage,
            CleanStage,
            SegmentStage,
            TraceConstructStage,
        )
        return [CleanStage(self), SegmentStage(self, streaming=streaming),
                TraceConstructStage(self), AnnotateStage(self)]

    def build_all(self, records: Iterable[DetectionRecord],
                  batch_size: int = 2048
                  ) -> Tuple[List[SemanticTrajectory], BuildReport]:
        """Run the full pipeline: clean → segment → trace → annotate.

        Runs on the :mod:`repro.pipeline` engine; the returned
        :class:`BuildReport` aggregates the engine's per-stage metrics
        (also exposed raw as ``report.stage_metrics``).  Returns the
        trajectories ordered by moving object and time.
        """
        from repro.pipeline.engine import Pipeline

        pipeline = Pipeline(self.stages(), batch_size=batch_size)
        trajectories = pipeline.run(records)
        return trajectories, build_report_from_metrics(pipeline.metrics)


def build_report_from_metrics(metrics: "PipelineMetrics") -> BuildReport:
    """Aggregate engine stage metrics into a :class:`BuildReport`.

    The mapping is the contract between the builder stages and the
    legacy report shape: ``clean`` contributes the error-filter drops,
    ``segment`` the overlap repairs, ``trace`` the entry and
    unobserved-transition counts, ``annotate`` the trajectory count.
    """
    clean = metrics["clean"]
    segment = metrics["segment"]
    trace = metrics["trace"]
    annotate = metrics["annotate"]
    cleaning = CleaningReport(
        total=clean.items_in,
        kept=clean.items_out - segment.drops.get("overlap_contained", 0),
        dropped_zero_duration=clean.drops.get("zero_duration", 0),
        dropped_negative_duration=clean.drops.get("negative_duration", 0),
        dropped_unknown_state=clean.drops.get("unknown_state", 0),
        dropped_contained=segment.drops.get("overlap_contained", 0),
        clipped_overlaps=segment.counters.get("overlap_clipped", 0),
    )
    return BuildReport(
        cleaning=cleaning,
        trajectories=annotate.items_out,
        entries=trace.counters.get("entries", 0),
        unobserved_transitions=trace.counters.get(
            "unobserved_transitions", 0),
        stage_metrics=metrics,
    )
