"""Episodes and episodic segmentations (Definition 3.4, Section 4.2).

An **episode** of a semantic trajectory ``T`` is a subtrajectory ``T'``
such that

1. ``T'`` is a semantic subtrajectory of ``T`` (Definition 3.3),
2. ``A'_traj ≠ A_traj`` (the episode means something *different* from
   the whole trajectory), and
3. a domain-dependent, user-defined predicate ``P_ep(T')`` holds.

An **episodic segmentation** is "any subset of its episodes that covers
it time-wise.  Contrary to typical literature practice, we allow an
episodic segmentation to contain episodes that overlap in time, since
the exact same movement part may have multiple meanings depending on
the broader context" — the paper's Figure 5 tags E→P→S→C with
"exit museum" while its E→P→S prefix also carries "buy souvenir".

Predicates are first-class composable objects so that mining code can
enumerate candidate episodes mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.core.annotations import AnnotationKind, AnnotationSet
from repro.core.subtrajectory import extract_by_entries, is_subtrajectory
from repro.core.trajectory import SemanticTrajectory

#: An episode predicate: "P_ep : T' → {true, false} where P_ep is
#: domain-dependent and user-defined".
EpisodePredicate = Callable[[SemanticTrajectory], bool]


@dataclass(frozen=True)
class Episode:
    """A detected episode: the subtrajectory plus the predicate label.

    Attributes:
        subtrajectory: the episode's semantic subtrajectory ``T'``
            (carrying ``A'_traj`` as its annotations).
        label: human-readable predicate name (e.g. ``"exit museum"``).
    """

    subtrajectory: SemanticTrajectory
    label: str

    @property
    def t_start(self) -> float:
        """Episode start time."""
        return self.subtrajectory.t_start

    @property
    def t_end(self) -> float:
        """Episode end time."""
        return self.subtrajectory.t_end

    @property
    def annotations(self) -> AnnotationSet:
        """The episode's ``A'_traj``."""
        return self.subtrajectory.annotations

    def overlaps(self, other: "Episode") -> bool:
        """True when the two episodes intersect in time."""
        return self.t_start <= other.t_end and other.t_start <= self.t_end

    def states(self) -> List[str]:
        """The episode's distinct state sequence."""
        return self.subtrajectory.distinct_state_sequence()


def is_episode(candidate: SemanticTrajectory, main: SemanticTrajectory,
               predicate: EpisodePredicate) -> bool:
    """Check the three conditions of Definition 3.4."""
    if not is_subtrajectory(candidate, main):
        return False
    if candidate.annotations == main.annotations:
        return False
    return bool(predicate(candidate))


# ----------------------------------------------------------------------
# predicate combinators
# ----------------------------------------------------------------------
class Predicate:
    """Base class giving predicates ``&``, ``|`` and ``~`` composition."""

    name = "predicate"

    def __call__(self, trajectory: SemanticTrajectory) -> bool:
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return _BinaryPredicate(self, other, all, "and")

    def __or__(self, other: "Predicate") -> "Predicate":
        return _BinaryPredicate(self, other, any, "or")

    def __invert__(self) -> "Predicate":
        return _NotPredicate(self)


class _BinaryPredicate(Predicate):
    def __init__(self, left: Predicate, right: Predicate,
                 reducer: Callable, symbol: str) -> None:
        self._left = left
        self._right = right
        self._reducer = reducer
        self.name = "({} {} {})".format(left.name, symbol, right.name)

    def __call__(self, trajectory: SemanticTrajectory) -> bool:
        return self._reducer(
            p(trajectory) for p in (self._left, self._right))


class _NotPredicate(Predicate):
    def __init__(self, inner: Predicate) -> None:
        self._inner = inner
        self.name = "(not {})".format(inner.name)

    def __call__(self, trajectory: SemanticTrajectory) -> bool:
        return not self._inner(trajectory)


class StateSequencePredicate(Predicate):
    """Holds when the trajectory's state sequence equals/contains a pattern.

    Args:
        pattern: the state sequence to match.
        exact: require equality with the full distinct state sequence;
            otherwise a contiguous subsequence match suffices.
    """

    def __init__(self, pattern: Sequence[str], exact: bool = True) -> None:
        if not pattern:
            raise ValueError("pattern must be non-empty")
        self.pattern = tuple(pattern)
        self.exact = exact
        self.name = "states={}".format("→".join(pattern))

    def __call__(self, trajectory: SemanticTrajectory) -> bool:
        sequence = tuple(trajectory.distinct_state_sequence())
        if self.exact:
            return sequence == self.pattern
        window = len(self.pattern)
        return any(sequence[i:i + window] == self.pattern
                   for i in range(len(sequence) - window + 1))


class VisitsStatePredicate(Predicate):
    """Holds when the trajectory visits a given state."""

    def __init__(self, state: str) -> None:
        self.state = state
        self.name = "visits={}".format(state)

    def __call__(self, trajectory: SemanticTrajectory) -> bool:
        return trajectory.trace.visits_state(self.state)


class EndsInStatePredicate(Predicate):
    """Holds when the trajectory's last state is the given one."""

    def __init__(self, state: str) -> None:
        self.state = state
        self.name = "ends={}".format(state)

    def __call__(self, trajectory: SemanticTrajectory) -> bool:
        return trajectory.trace.entries[-1].state == self.state

class MinDurationPredicate(Predicate):
    """Holds when the trajectory lasts at least ``seconds``.

    The classic stop-detection style predicate ([3]'s "temporal stay
    value thresholds") expressed in SITM terms.
    """

    def __init__(self, seconds: float) -> None:
        self.seconds = seconds
        self.name = "duration>={}s".format(seconds)

    def __call__(self, trajectory: SemanticTrajectory) -> bool:
        return trajectory.duration >= self.seconds


class AnnotationPredicate(Predicate):
    """Holds when some stay or the trajectory carries an annotation."""

    def __init__(self, kind: AnnotationKind,
                 value: Optional[object] = None) -> None:
        self.kind = kind
        self.value = value
        self.name = "has {}:{}".format(kind.value, value)

    def __call__(self, trajectory: SemanticTrajectory) -> bool:
        if trajectory.annotations.has(self.kind, self.value):
            return True
        return any(entry.annotations.has(self.kind, self.value)
                   for entry in trajectory.trace)


# ----------------------------------------------------------------------
# episode detection
# ----------------------------------------------------------------------
def find_episodes(main: SemanticTrajectory, predicate: EpisodePredicate,
                  annotations: AnnotationSet,
                  label: Optional[str] = None,
                  maximal_only: bool = True) -> List[Episode]:
    """Enumerate episodes of ``main`` satisfying ``predicate``.

    Every proper contiguous entry range is considered a candidate
    subtrajectory carrying ``annotations`` as its ``A'_traj``; those on
    which the predicate holds become episodes.

    Args:
        main: the trajectory to segment.
        predicate: the user-defined ``P_ep``.
        annotations: the episode annotation set; must differ from
            ``main.annotations`` (Definition 3.4 condition 2).
        label: episode label; defaults to the predicate's name.
        maximal_only: keep only episodes not strictly contained (in
            entry range) in another episode with the same label —
            mirrors the "maximal subsequence" flavour of [25]'s episode
            definition while still allowing distinct-label overlap.

    Raises:
        ValueError: when ``annotations`` equals the main trajectory's.
    """
    if annotations == main.annotations:
        raise ValueError(
            "Definition 3.4 requires A'_traj != A_traj for an episode")
    label = label if label is not None else getattr(
        predicate, "name", "episode")
    entry_count = len(main.trace)
    hits: List[Tuple[int, int]] = []
    for first in range(entry_count):
        for last in range(first, entry_count):
            if first == 0 and last == entry_count - 1:
                continue  # not a proper subsequence
            candidate = extract_by_entries(main, first, last,
                                           annotations=annotations)
            if predicate(candidate):
                hits.append((first, last))
    if maximal_only:
        hits = [span for span in hits
                if not any(other != span
                           and other[0] <= span[0] and span[1] <= other[1]
                           for other in hits)]
    episodes = []
    for first, last in hits:
        sub = extract_by_entries(main, first, last, annotations=annotations)
        episodes.append(Episode(sub, label))
    return episodes


class EpisodicSegmentation:
    """A set of episodes of one trajectory that covers it time-wise.

    Overlapping episodes are explicitly allowed (Section 3.3: "we allow
    an episodic segmentation to contain episodes that overlap in time").
    """

    def __init__(self, main: SemanticTrajectory,
                 episodes: Iterable[Episode]) -> None:
        self.main = main
        self.episodes: Tuple[Episode, ...] = tuple(
            sorted(episodes, key=lambda e: (e.t_start, e.t_end)))

    def __len__(self) -> int:
        return len(self.episodes)

    def __iter__(self):
        return iter(self.episodes)

    def covers_main(self, tolerance: float = 0.0) -> bool:
        """True when the episodes' union covers the trajectory's span.

        Gaps of at most ``tolerance`` seconds between consecutive
        episodes are ignored.
        """
        if not self.episodes:
            return False
        coverage_end = self.main.t_start
        for episode in self.episodes:
            if episode.t_start > coverage_end + tolerance:
                return False
            coverage_end = max(coverage_end, episode.t_end)
        return coverage_end + tolerance >= self.main.t_end

    def overlapping_pairs(self) -> List[Tuple[Episode, Episode]]:
        """All pairs of episodes that intersect in time."""
        pairs: List[Tuple[Episode, Episode]] = []
        for i, first in enumerate(self.episodes):
            for second in self.episodes[i + 1:]:
                if first.overlaps(second):
                    pairs.append((first, second))
        return pairs

    def has_overlaps(self) -> bool:
        """True when at least two episodes intersect in time."""
        return bool(self.overlapping_pairs())

    def labels(self) -> List[str]:
        """The distinct episode labels, in first-appearance order."""
        seen: List[str] = []
        for episode in self.episodes:
            if episode.label not in seen:
                seen.append(episode.label)
        return seen

    def episodes_at(self, t: float) -> List[Episode]:
        """All episodes whose span contains ``t``.

        More than one result is precisely the "same movement part,
        multiple meanings" situation the SITM supports.
        """
        return [e for e in self.episodes if e.t_start <= t <= e.t_end]

    def tagged_share(self) -> float:
        """Fraction of the trajectory span covered by ≥1 episode.

        Used by the exclusive-vs-overlapping episodes ablation (A3).
        """
        span = self.main.duration
        if span <= 0:
            return 0.0
        boundaries = sorted({self.main.t_start, self.main.t_end}
                            | {e.t_start for e in self.episodes}
                            | {e.t_end for e in self.episodes})
        covered = 0.0
        for left, right in zip(boundaries, boundaries[1:]):
            midpoint = (left + right) / 2.0
            if any(e.t_start <= midpoint <= e.t_end for e in self.episodes):
                covered += right - left
        return covered / span


def force_exclusive(segmentation: EpisodicSegmentation
                    ) -> EpisodicSegmentation:
    """Reduce a segmentation to mutually exclusive episodes.

    Implements the "typical literature practice" the paper argues
    against ([26]'s mutually exclusive predicates): episodes are kept
    greedily by start time and any episode overlapping an already-kept
    one is dropped entirely.  The information loss is measurable via
    :meth:`EpisodicSegmentation.tagged_share` and the disappearance of
    multi-label time points (ablation A3).
    """
    kept: List[Episode] = []
    for episode in segmentation.episodes:
        if all(not episode.overlaps(existing) for existing in kept):
            kept.append(episode)
    return EpisodicSegmentation(segmentation.main, kept)
