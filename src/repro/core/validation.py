"""Model-level validation of semantic trajectories against a space.

Section 4.2 observes that the hand-extracted accessibility topology
"can therefore also assist in filtering out data errors".  This module
systematises that: a trajectory is checked against the indoor space
graph and every anomaly is reported as a typed :class:`Issue` with a
severity, so pipelines can decide what to drop, repair (via
:mod:`repro.core.inference`), or merely log.

It also classifies temporal gaps following Parent et al. [21] (quoted
in Section 2.2): gaps larger than the sampling rate are "either
accidental ('holes') or intentional ('semantic gaps')" — intentional
ones being recognisable here by an annotation on the following stay.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.core.annotations import AnnotationKind
from repro.core.builder import UNOBSERVED_TRANSITION_PREFIX
from repro.core.trajectory import SemanticTrajectory
from repro.indoor.nrg import NodeRelationGraph


class Severity(enum.Enum):
    """How bad an issue is."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"


class IssueCode(enum.Enum):
    """Machine-readable issue categories."""

    UNKNOWN_STATE = "unknown-state"
    IMPOSSIBLE_TRANSITION = "impossible-transition"
    UNOBSERVED_TRANSITION = "unobserved-transition"
    WRONG_TRANSITION_ENDPOINTS = "wrong-transition-endpoints"
    ZERO_DURATION = "zero-duration"
    DETECTION_OVERLAP = "detection-overlap"
    TEMPORAL_HOLE = "temporal-hole"
    SEMANTIC_GAP = "semantic-gap"


@dataclass(frozen=True)
class Issue:
    """One validation finding.

    Attributes:
        severity: :class:`Severity`.
        code: :class:`IssueCode`.
        entry_index: index of the offending trace entry (the second of
            a pair for transition/gap issues).
        message: human-readable explanation.
    """

    severity: Severity
    code: IssueCode
    entry_index: int
    message: str


def validate_trajectory(trajectory: SemanticTrajectory,
                        nrg: Optional[NodeRelationGraph] = None,
                        sampling_rate_seconds: float = 60.0
                        ) -> List[Issue]:
    """Validate one trajectory, optionally against an accessibility NRG.

    Checks performed:

    * every state is a node of the NRG (ERROR otherwise);
    * every state change is witnessed by a directed accessibility edge,
      and by the *named* edge when the trace records one (ERROR when the
      move is impossible, WARNING for builder-marked unobserved
      transitions, ERROR when a named transition joins other cells);
    * zero-duration stays (WARNING — "potential error" per Section 4.1);
    * bounded detection overlaps (INFO — expected sensing artefact);
    * temporal gaps above the sampling rate, split into semantic gaps
      (INFO, next stay is annotated) and holes (WARNING).
    """
    issues: List[Issue] = []
    entries = trajectory.trace.entries
    for index, entry in enumerate(entries):
        if nrg is not None and entry.state not in nrg:
            issues.append(Issue(
                Severity.ERROR, IssueCode.UNKNOWN_STATE, index,
                "state {!r} is not a node of NRG {!r}".format(
                    entry.state, nrg.name)))
        if entry.duration == 0:
            issues.append(Issue(
                Severity.WARNING, IssueCode.ZERO_DURATION, index,
                "zero-duration stay in {!r} (potential detection "
                "error)".format(entry.state)))
    for index in range(1, len(entries)):
        previous = entries[index - 1]
        current = entries[index]
        _check_transition(issues, nrg, previous, current, index)
        _check_timing(issues, trajectory, previous, current, index,
                      sampling_rate_seconds)
    return issues


def _check_transition(issues: List[Issue],
                      nrg: Optional[NodeRelationGraph],
                      previous, current, index: int) -> None:
    if current.state == previous.state:
        return  # event-based split; no spatial move to check
    transition = current.transition
    if transition is not None \
            and transition.startswith(UNOBSERVED_TRANSITION_PREFIX):
        issues.append(Issue(
            Severity.WARNING, IssueCode.UNOBSERVED_TRANSITION, index,
            "move {} → {} has no accessibility edge; flagged by the "
            "builder".format(previous.state, current.state)))
        return
    if nrg is None:
        return
    if previous.state not in nrg or current.state not in nrg:
        return  # already reported as unknown states
    if not nrg.has_transition(previous.state, current.state):
        issues.append(Issue(
            Severity.ERROR, IssueCode.IMPOSSIBLE_TRANSITION, index,
            "move {} → {} is not permitted by the directed "
            "accessibility NRG".format(previous.state, current.state)))
        return
    if transition is None:
        return
    edges = nrg.edges_between(previous.state, current.state)
    ids = {e.edge_id for e in edges} | {
        e.boundary_id for e in edges if e.boundary_id is not None}
    if transition not in ids:
        issues.append(Issue(
            Severity.ERROR, IssueCode.WRONG_TRANSITION_ENDPOINTS, index,
            "transition {!r} does not join {} and {}".format(
                transition, previous.state, current.state)))


def _check_timing(issues: List[Issue], trajectory: SemanticTrajectory,
                  previous, current, index: int,
                  sampling_rate_seconds: float) -> None:
    gap = current.t_start - previous.t_end
    if gap < 0:
        issues.append(Issue(
            Severity.INFO, IssueCode.DETECTION_OVERLAP, index,
            "stays overlap by {:.1f}s (sensor detection area "
            "overlap)".format(-gap)))
        return
    if gap <= sampling_rate_seconds:
        return
    if current.annotations or trajectory.annotations.has(
            AnnotationKind.BEHAVIOR, "intentional-gap"):
        issues.append(Issue(
            Severity.INFO, IssueCode.SEMANTIC_GAP, index,
            "annotated gap of {:.0f}s before {!r} (semantic gap)".format(
                gap, current.state)))
    else:
        issues.append(Issue(
            Severity.WARNING, IssueCode.TEMPORAL_HOLE, index,
            "unannotated gap of {:.0f}s before {!r} (hole)".format(
                gap, current.state)))


def error_count(issues: List[Issue]) -> int:
    """Number of ERROR-severity issues."""
    return sum(1 for issue in issues if issue.severity is Severity.ERROR)


def is_consistent(trajectory: SemanticTrajectory,
                  nrg: Optional[NodeRelationGraph] = None) -> bool:
    """True when validation finds no ERROR-severity issue."""
    return error_count(validate_trajectory(trajectory, nrg)) == 0
