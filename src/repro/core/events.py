"""Event-based trace maintenance (Section 3.3, last paragraph).

    "the SITM is event-based in the sense that, only a change of the
    spatial cell that the MO is located in, or a change of the semantic
    information regarding the MO's presence in that cell, needs to be
    accompanied by a new tuple and a corresponding timestamp."

The paper's worked example: a visitor in room006 (exhibits + gift shop)
changes goal mid-stay, so the single presence interval

    (door005, room006, 14:12:00, 14:28:00, {goals:["visit"]})

splits into

    (door005, room006, 14:12:00, 14:21:45, {goals:["visit"]})
    (_,       room006, 14:21:46, 14:28:00, {goals:["visit","buy"]})

This module implements that split (:func:`apply_semantic_event`), its
inverse normalisation (:func:`merge_redundant_entries`), and a
:class:`SemanticEventLog` that replays a sequence of events onto a
trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.annotations import AnnotationSet
from repro.core.trajectory import SemanticTrajectory, Trace, TraceEntry

#: The paper's example leaves a one-second gap between the two halves of
#: a split (…14:21:45 / 14:21:46…), reflecting timestamping at integer
#: seconds.  We reproduce that convention.
SPLIT_GAP_SECONDS = 1.0


@dataclass(frozen=True)
class SemanticEvent:
    """A change of semantic state at a point in time.

    Attributes:
        t: when the change happened.
        annotations: the stay's annotation set from ``t`` onwards.
    """

    t: float
    annotations: AnnotationSet


def split_entry(entry: TraceEntry, t: float,
                new_annotations: AnnotationSet,
                gap: float = SPLIT_GAP_SECONDS) -> List[TraceEntry]:
    """Split one presence interval at ``t`` with new semantics.

    The first part keeps the entry's transition and annotations and ends
    at ``t``; the second part starts ``gap`` seconds later, has no
    transition (the cell did not change — the paper writes ``_``), and
    carries ``new_annotations``.

    Raises:
        ValueError: when ``t`` does not fall strictly inside the stay
            or the new annotations equal the old ones (no event).
    """
    if not entry.t_start < t < entry.t_end:
        raise ValueError(
            "split time {} outside the stay ({}, {})".format(
                t, entry.t_start, entry.t_end))
    if new_annotations == entry.annotations:
        raise ValueError(
            "a semantic event needs a *change* of semantic information; "
            "the annotation sets are identical")
    second_start = min(t + gap, entry.t_end)
    return [
        TraceEntry(entry.transition, entry.state, entry.t_start, t,
                   entry.annotations, entry.transition_annotations),
        TraceEntry(None, entry.state, second_start, entry.t_end,
                   new_annotations),
    ]


def apply_semantic_event(trajectory: SemanticTrajectory,
                         event: SemanticEvent,
                         gap: float = SPLIT_GAP_SECONDS
                         ) -> SemanticTrajectory:
    """Apply one semantic event to a trajectory, splitting its stay.

    Raises:
        ValueError: when no stay contains the event time, or the event
            does not change the annotation set.
    """
    entries = list(trajectory.trace.entries)
    for index, entry in enumerate(entries):
        if entry.t_start < event.t < entry.t_end:
            parts = split_entry(entry, event.t, event.annotations, gap)
            new_trace = trajectory.trace.with_entry_replaced(index, *parts)
            return trajectory.with_trace(new_trace)
    raise ValueError(
        "no presence interval strictly contains event time {}".format(
            event.t))


def merge_redundant_entries(trace: Trace,
                            max_gap: float = SPLIT_GAP_SECONDS
                            ) -> Trace:
    """Merge consecutive entries that an event-based model never splits.

    Two consecutive entries merge when they share the same state *and*
    the same annotation set and are separated by at most ``max_gap``
    seconds — i.e. no spatial and no semantic change happened, so under
    the event-based reading they are one stay.  This is the
    normalisation applied after removing annotations or after joining
    detection fragments.
    """
    merged: List[TraceEntry] = []
    for entry in trace:
        if merged:
            previous = merged[-1]
            same_state = previous.state == entry.state
            same_semantics = previous.annotations == entry.annotations
            contiguous = entry.t_start - previous.t_end <= max_gap
            if same_state and same_semantics and contiguous:
                merged[-1] = TraceEntry(
                    previous.transition, previous.state,
                    previous.t_start, max(previous.t_end, entry.t_end),
                    previous.annotations,
                    previous.transition_annotations)
                continue
        merged.append(entry)
    return Trace(merged)


def is_event_minimal(trace: Trace,
                     max_gap: float = SPLIT_GAP_SECONDS) -> bool:
    """True when no consecutive pair could be merged.

    An event-minimal trace is the canonical form of Section 3.3: every
    tuple witnesses a spatial or semantic change.
    """
    return len(merge_redundant_entries(trace, max_gap)) == len(trace)


class SemanticEventLog:
    """An ordered log of semantic events, replayable onto trajectories.

    This is the integration point for "different data sources in order
    to semantically enrich the trajectory": each source appends events
    (e.g. a point-of-sale system appends a ``goal:buy`` event at the
    purchase timestamp) and :meth:`apply_to` folds them into the trace.
    """

    def __init__(self, events: Iterable[SemanticEvent] = ()) -> None:
        self._events: List[SemanticEvent] = sorted(
            events, key=lambda e: e.t)

    def append(self, event: SemanticEvent) -> None:
        """Add an event, keeping the log time-ordered."""
        self._events.append(event)
        self._events.sort(key=lambda e: e.t)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def apply_to(self, trajectory: SemanticTrajectory,
                 skip_unmatched: bool = True) -> SemanticTrajectory:
        """Replay all events onto a trajectory.

        Args:
            trajectory: the trajectory to enrich.
            skip_unmatched: silently ignore events falling outside any
                stay (e.g. during a detection gap) instead of raising.
        """
        current = trajectory
        for event in self._events:
            try:
                current = apply_semantic_event(current, event)
            except ValueError:
                if not skip_unmatched:
                    raise
        return current
