"""Semantic subtrajectories (Definition 3.3).

A semantic subtrajectory is "for all practical purposes a semantic
trajectory (similar to how a mathematical subsequence is itself a
sequence) but necessarily referable to some other main semantic
trajectory": ``T'`` is a subtrajectory of ``T`` iff ``trace'`` is a
proper subsequence of ``trace`` and

    t_start ≤ t'_start < t'_end < t_end   or
    t_start < t'_start < t'_end ≤ t_end.

Note the asymmetric strictness: a subtrajectory may share *one* end of
the main trajectory's span but not both (that would be the whole
trajectory, which Definition 3.3 excludes).  Its annotation set "may or
may not be the same as that of its main trajectory" — contrary to
CONSTAnT [8].
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.annotations import AnnotationSet
from repro.core.trajectory import SemanticTrajectory, Trace, TraceEntry


def is_proper_sub_span(main: SemanticTrajectory,
                       t_start: float, t_end: float) -> bool:
    """Check Definition 3.3's span condition for a candidate window."""
    if t_start >= t_end:
        return False
    left_anchored = (main.t_start <= t_start < t_end < main.t_end)
    right_anchored = (main.t_start < t_start < t_end <= main.t_end)
    return left_anchored or right_anchored


def is_subtrajectory(candidate: SemanticTrajectory,
                     main: SemanticTrajectory) -> bool:
    """True when ``candidate`` is a semantic subtrajectory of ``main``.

    Checks moving-object identity, the proper-span condition, and that
    the candidate's trace entries form a (contiguous-in-time, possibly
    clipped) subsequence of the main trace.
    """
    if candidate.mo_id != main.mo_id:
        return False
    if not is_proper_sub_span(main, candidate.t_start, candidate.t_end):
        return False
    return _entries_are_subsequence(candidate.trace, main.trace)


def _entries_are_subsequence(sub: Trace, main: Trace) -> bool:
    """True when every sub entry matches (possibly clipped) a main entry."""
    main_entries = list(main.entries)
    cursor = 0
    for entry in sub.entries:
        while cursor < len(main_entries):
            host = main_entries[cursor]
            if (host.state == entry.state
                    and host.t_start <= entry.t_start
                    and entry.t_end <= host.t_end):
                cursor += 1
                break
            cursor += 1
        else:
            return False
    return True


def extract_by_time(main: SemanticTrajectory, t_start: float, t_end: float,
                    annotations: Optional[AnnotationSet] = None,
                    clip: bool = True) -> SemanticTrajectory:
    """Extract the subtrajectory covering ``[t_start, t_end]``.

    Args:
        main: the main semantic trajectory.
        t_start: window start.
        t_end: window end.
        annotations: the subtrajectory's ``A'_traj``; defaults to the
            main trajectory's ``A_traj`` (Definition 3.3 allows either).
        clip: when True, boundary entries are clipped to the window;
            when False, they are included whole.

    Raises:
        ValueError: when the window violates the proper-subsequence
            condition or contains no trace entries.
    """
    if not is_proper_sub_span(main, t_start, t_end):
        raise ValueError(
            "window [{}, {}] is not a proper sub-span of [{}, {}]".format(
                t_start, t_end, main.t_start, main.t_end))
    selected: List[TraceEntry] = []
    for entry in main.trace:
        if not entry.overlaps_time(t_start, t_end):
            continue
        if clip:
            clipped_start = max(entry.t_start, t_start)
            clipped_end = min(entry.t_end, t_end)
            if clipped_end < clipped_start:
                continue
            selected.append(TraceEntry(
                transition=entry.transition
                if entry.t_start >= t_start else None,
                state=entry.state,
                t_start=clipped_start,
                t_end=clipped_end,
                annotations=entry.annotations,
                transition_annotations=entry.transition_annotations,
            ))
        else:
            selected.append(entry)
    if not selected:
        raise ValueError("window contains no trace entries")
    return SemanticTrajectory(
        mo_id=main.mo_id,
        trace=Trace(selected),
        annotations=annotations if annotations is not None
        else main.annotations,
        t_start=t_start if t_start <= selected[0].t_start else None,
        t_end=t_end if t_end >= selected[-1].t_end else None,
    )


def extract_by_entries(main: SemanticTrajectory, first: int, last: int,
                       annotations: Optional[AnnotationSet] = None,
                       ) -> SemanticTrajectory:
    """Extract the subtrajectory spanning entries ``first..last`` inclusive.

    Raises:
        ValueError: when the range is the whole trace (not a *proper*
            subsequence) or out of bounds.
    """
    entries = main.trace.entries
    if not 0 <= first <= last < len(entries):
        raise ValueError("entry range [{}, {}] out of bounds".format(
            first, last))
    if first == 0 and last == len(entries) - 1:
        raise ValueError(
            "the full entry range is not a proper subsequence "
            "(Definition 3.3)")
    selected = entries[first:last + 1]
    trace_entries = list(selected)
    if first > 0:
        # The subtrajectory starts fresh: drop the incoming transition
        # of its first entry, as the trace it came from is not part of
        # the subtrajectory.
        head = trace_entries[0]
        trace_entries[0] = TraceEntry(
            transition=None, state=head.state, t_start=head.t_start,
            t_end=head.t_end, annotations=head.annotations,
            transition_annotations=head.transition_annotations)
    return SemanticTrajectory(
        mo_id=main.mo_id,
        trace=Trace(trace_entries),
        annotations=annotations if annotations is not None
        else main.annotations,
    )
