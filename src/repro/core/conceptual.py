"""Conceptual ("focus of attention") trajectories (Section 5).

    "modeling conceptual instead of physical trajectories could be
    compelling in the museum domain, where an interpretation of visitor
    movement based on 'focus of attention' is sometimes even more
    important than one based on physical presence."

A **conceptual trajectory** re-reads a moving object's track as a
sequence of *attended objects* rather than occupied cells.  The
attention oracle is geometric: a visitor attends an exhibit while
inside its RoI — "the predefined spatial area of engagement with the
corresponding exhibit, outside of which a visitor is certainly not
paying attention to it" (Section 4.2).  Time spent in no RoI is
*unfocused* and simply absent from the conceptual trace (it is not a
data hole; physically the visitor is still somewhere).

The result is an ordinary :class:`SemanticTrajectory` over RoI states,
so every SITM tool (episodes, lifting, mining, storage) applies to
attention data unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.annotations import (
    AnnotationKind,
    AnnotationSet,
    SemanticAnnotation,
)
from repro.core.trajectory import SemanticTrajectory, Trace, TraceEntry
from repro.indoor.cells import CellSpace
from repro.positioning.detection import PositionFix

#: Annotation marking a conceptual (attention-based) trajectory.
CONCEPTUAL = SemanticAnnotation(AnnotationKind.CUSTOM, "conceptual",
                                source="attention-model")


@dataclass
class AttentionReport:
    """Outcome of one attention extraction."""

    fixes: int = 0
    attended_fixes: int = 0
    attention_spans: int = 0

    @property
    def focus_share(self) -> float:
        """Fraction of fixes spent attending some exhibit."""
        if self.fixes == 0:
            return 0.0
        return self.attended_fixes / self.fixes


class AttentionExtractor:
    """Builds conceptual trajectories from position fixes.

    Args:
        roi_space: the RoI layer's cell space (engagement areas).
        min_attention_seconds: attention spans shorter than this are
            treated as walk-bys and dropped (a glance is not
            engagement).
        max_gap: a silence longer than this ends the current span even
            within the same RoI.
    """

    def __init__(self, roi_space: CellSpace,
                 min_attention_seconds: float = 5.0,
                 max_gap: float = 30.0) -> None:
        self.roi_space = roi_space
        self.min_attention_seconds = min_attention_seconds
        self.max_gap = max_gap

    def extract(self, mo_id: str, fixes: Iterable[PositionFix],
                report: Optional[AttentionReport] = None
                ) -> Optional[SemanticTrajectory]:
        """Build the conceptual trajectory of one track.

        Returns ``None`` when no attention span survives the minimum
        duration filter (the visitor attended nothing).
        """
        if report is None:
            report = AttentionReport()
        spans: List[TraceEntry] = []
        current_roi: Optional[str] = None
        span_start = span_end = 0.0
        last_t: Optional[float] = None

        def close_span() -> None:
            nonlocal current_roi
            if current_roi is None:
                return
            duration = span_end - span_start
            if duration >= self.min_attention_seconds:
                roi_cell = self.roi_space.cell(current_roi)
                # Attention shifts are not boundary crossings; a
                # synthetic transition id keeps the trace well-formed
                # and readable ("the gaze moved from X to Y").
                transition = None
                if spans and spans[-1].state != current_roi:
                    transition = "attention:{}->{}".format(
                        spans[-1].state, current_roi)
                spans.append(TraceEntry(
                    transition=transition,
                    state=current_roi,
                    t_start=span_start,
                    t_end=span_end,
                    annotations=AnnotationSet.of(SemanticAnnotation(
                        AnnotationKind.PLACE, roi_cell.name or "exhibit",
                        link=current_roi, source="attention-model")),
                ))
                report.attention_spans += 1
            current_roi = None

        for fix in fixes:
            if last_t is not None and fix.t < last_t:
                raise ValueError("fixes must be time-ordered")
            gap = 0.0 if last_t is None else fix.t - last_t
            last_t = fix.t
            report.fixes += 1
            cell = self.roi_space.locate_point(fix.position,
                                               floor=fix.floor)
            roi = cell.cell_id if cell is not None else None
            if roi is not None:
                report.attended_fixes += 1
            if current_roi is not None and (roi != current_roi
                                            or gap > self.max_gap):
                close_span()
            if roi is not None:
                if current_roi is None:
                    current_roi = roi
                    span_start = fix.t
                span_end = fix.t
        close_span()

        if not spans:
            return None
        return SemanticTrajectory(
            mo_id=mo_id,
            trace=Trace(spans),
            annotations=AnnotationSet.of(
                CONCEPTUAL, SemanticAnnotation.goal("attend")),
        )


def attended_exhibits(trajectory: SemanticTrajectory) -> List[str]:
    """The distinct attended RoI states, in first-attention order."""
    seen: List[str] = []
    for state in trajectory.states():
        if state not in seen:
            seen.append(state)
    return seen


def attention_profile(trajectory: SemanticTrajectory
                      ) -> Dict[str, float]:
    """Total attention seconds per exhibit RoI."""
    profile: Dict[str, float] = {}
    for entry in trajectory.trace:
        profile[entry.state] = profile.get(entry.state, 0.0) \
            + entry.duration
    return profile


def physical_vs_conceptual(physical: SemanticTrajectory,
                           conceptual: SemanticTrajectory
                           ) -> Dict[str, float]:
    """Compare the two readings of one movement.

    Returns the paper-motivated contrast numbers: physical span,
    total attention time, and the focus ratio (attention / span).
    """
    span = physical.duration
    attention = conceptual.trace.total_duration()
    return {
        "physical_span": span,
        "physical_states": float(
            len(set(physical.distinct_state_sequence()))),
        "attention_time": attention,
        "attended_exhibits": float(
            len(attended_exhibits(conceptual))),
        "focus_ratio": attention / span if span > 0 else 0.0,
    }
