"""Semantic annotations (Sections 2.2 and 3.3).

The paper adopts the annotation notion of Parent et al. [21]: "any
additional data (captured or inferred) that enrich the knowledge about
a trajectory or any part thereof.  It can be an attribute value, a link
to an object, or a complex value composed of both."

Whole-trajectory annotations (``A_traj``) "would typically be chosen to
represent an activity, a behavior, or a goal" with the paper's specific
reading:

* **activity** — "more targeted/conscious actions";
* **behavior** — "less intentional actions or reactions";
* **goal** — "the potentiality of movement (e.g. a disrupted activity)".

Per-stay annotations (``A_i``) and transition annotations (footnote 2)
use the same machinery.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

#: Annotation values are scalars or links; complex values combine both
#: via the ``link`` field of :class:`SemanticAnnotation`.
AnnotationValue = Union[str, int, float, bool]


class AnnotationKind(enum.Enum):
    """The annotation vocabulary distinguished by the paper."""

    ACTIVITY = "activity"
    BEHAVIOR = "behavior"
    GOAL = "goal"
    #: semantics of places: links to geographic/semantic objects.
    PLACE = "place"
    #: provenance markers, e.g. for inferred presence tuples (Figure 6).
    PROVENANCE = "provenance"
    #: anything else ("not confined within specific types of
    #: information" — Section 3.3).
    CUSTOM = "custom"


@dataclass(frozen=True)
class SemanticAnnotation:
    """One semantic annotation.

    Attributes:
        kind: the :class:`AnnotationKind`.
        value: the attribute value, e.g. ``"visit"`` for a goal.
        link: optional identifier of a linked object (an exhibit id, an
            ontology concept IRI, ...) — the "link to an object" form.
        source: free-form provenance, e.g. ``"inferred"``, ``"app"``.
        confidence: optional degree of belief in [0, 1]; useful for
            inferred annotations.
    """

    kind: AnnotationKind
    value: AnnotationValue
    link: Optional[str] = None
    source: Optional[str] = None
    confidence: Optional[float] = None

    def __post_init__(self) -> None:
        if self.confidence is not None \
                and not 0.0 <= self.confidence <= 1.0:
            raise ValueError("confidence must lie in [0, 1]")

    @staticmethod
    def goal(value: str, **kwargs: object) -> "SemanticAnnotation":
        """Shorthand for a goal annotation."""
        return SemanticAnnotation(AnnotationKind.GOAL, value, **kwargs)

    @staticmethod
    def activity(value: str, **kwargs: object) -> "SemanticAnnotation":
        """Shorthand for an activity annotation."""
        return SemanticAnnotation(AnnotationKind.ACTIVITY, value, **kwargs)

    @staticmethod
    def behavior(value: str, **kwargs: object) -> "SemanticAnnotation":
        """Shorthand for a behavior annotation."""
        return SemanticAnnotation(AnnotationKind.BEHAVIOR, value, **kwargs)

    def describe(self) -> str:
        """Compact human-readable form, e.g. ``goal:visit``."""
        text = "{}:{}".format(self.kind.value, self.value)
        if self.link is not None:
            text += "→" + self.link
        return text


class AnnotationSet:
    """An immutable set of semantic annotations.

    Wraps a frozenset with kind/value query helpers.  Two sets are equal
    when they contain the same annotations — the criterion Definition
    3.4 uses (an episode requires ``A'_traj ≠ A_traj``) and the
    event-based model uses (a new tuple is needed exactly when the
    annotation set changes — Section 3.3).
    """

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[SemanticAnnotation] = ()) -> None:
        self._items: FrozenSet[SemanticAnnotation] = frozenset(items)

    @staticmethod
    def empty() -> "AnnotationSet":
        """The empty annotation set (∅ in the paper's trace examples)."""
        return _EMPTY

    @staticmethod
    def of(*items: SemanticAnnotation) -> "AnnotationSet":
        """Build a set from the given annotations."""
        return AnnotationSet(items)

    @staticmethod
    def goals(*values: str) -> "AnnotationSet":
        """Build a set of goal annotations, e.g. the paper's
        ``{goals:["visit","buy"]}``."""
        return AnnotationSet(SemanticAnnotation.goal(v) for v in values)

    # ------------------------------------------------------------------
    # set behaviour
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[SemanticAnnotation]:
        return iter(sorted(self._items, key=lambda a: a.describe()))

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __contains__(self, item: SemanticAnnotation) -> bool:
        return item in self._items

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AnnotationSet):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return hash(self._items)

    def __repr__(self) -> str:
        if not self._items:
            return "AnnotationSet(∅)"
        return "AnnotationSet({})".format(
            ", ".join(a.describe() for a in self))

    def union(self, other: "AnnotationSet") -> "AnnotationSet":
        """Set union."""
        return AnnotationSet(self._items | other._items)

    def with_annotation(self, item: SemanticAnnotation) -> "AnnotationSet":
        """A copy with ``item`` added."""
        return AnnotationSet(self._items | {item})

    def without_kind(self, kind: AnnotationKind) -> "AnnotationSet":
        """A copy with every annotation of ``kind`` removed."""
        return AnnotationSet(a for a in self._items if a.kind is not kind)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def of_kind(self, kind: AnnotationKind) -> Tuple[SemanticAnnotation, ...]:
        """All annotations of a kind, deterministically ordered."""
        return tuple(a for a in self if a.kind is kind)

    def values_of(self, kind: AnnotationKind) -> List[AnnotationValue]:
        """The values of all annotations of a kind."""
        return [a.value for a in self.of_kind(kind)]

    def goal_values(self) -> List[AnnotationValue]:
        """Values of the goal annotations."""
        return self.values_of(AnnotationKind.GOAL)

    def has(self, kind: AnnotationKind,
            value: Optional[AnnotationValue] = None) -> bool:
        """True when an annotation of ``kind`` (and ``value``) exists."""
        for item in self._items:
            if item.kind is kind and (value is None or item.value == value):
                return True
        return False

    def links(self) -> List[str]:
        """All non-null linked object identifiers."""
        return sorted(a.link for a in self._items if a.link is not None)

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_list(self) -> List[Dict]:
        """Plain-data form for JSON persistence.

        The order is **deterministic** (sorted by kind, then typed
        value, then link/source/confidence), not set-iteration order:
        equal sets serialize to identical bytes in every process,
        which the wire protocol's byte-identity guarantee and the
        on-disk snapshot format both build on.
        """
        return [
            {
                "kind": a.kind.value,
                "value": a.value,
                "link": a.link,
                "source": a.source,
                "confidence": a.confidence,
            }
            for a in sorted(self._items, key=self._sort_key)
        ]

    @staticmethod
    def _sort_key(a: SemanticAnnotation) -> Tuple:
        # type name first: values mix str/int/float/bool, which do
        # not compare across types
        return (a.kind.value, type(a.value).__name__, str(a.value),
                a.link or "", a.source or "",
                -1.0 if a.confidence is None else a.confidence)

    @staticmethod
    def from_list(data: Iterable[Mapping]) -> "AnnotationSet":
        """Inverse of :meth:`to_list`."""
        return AnnotationSet(
            SemanticAnnotation(
                kind=AnnotationKind(item["kind"]),
                value=item["value"],
                link=item.get("link"),
                source=item.get("source"),
                confidence=item.get("confidence"),
            )
            for item in data
        )


_EMPTY = AnnotationSet()
