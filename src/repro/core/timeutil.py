"""Timestamp helpers shared across the SITM.

Timestamps throughout the library are POSIX seconds as ``float``.  This
keeps interval arithmetic trivial and lets numpy vectorise over them,
while these helpers give the human-readable clock forms used in the
paper's examples (``11:30:00``) and duration forms used in Section 4.1
(``7 hours, 41 min and 37 sec``).
"""

from __future__ import annotations

import datetime as _dt

#: Seconds in a day, used by visit-day bucketing.
SECONDS_PER_DAY = 86_400


def clock(seconds: float) -> str:
    """Format a timestamp as ``HH:MM:SS`` wall-clock time (UTC)."""
    moment = _dt.datetime.fromtimestamp(seconds, tz=_dt.timezone.utc)
    return moment.strftime("%H:%M:%S")


def date(seconds: float) -> str:
    """Format a timestamp as ``DD-MM-YYYY`` (the paper's date style)."""
    moment = _dt.datetime.fromtimestamp(seconds, tz=_dt.timezone.utc)
    return moment.strftime("%d-%m-%Y")


def from_clock(day_start: float, hms: str) -> float:
    """Timestamp for clock time ``hms`` (``HH:MM:SS``) on a given day.

    Args:
        day_start: timestamp of the day's midnight.
        hms: wall-clock string, e.g. ``"11:30:00"``.
    """
    hours, minutes, seconds = (int(part) for part in hms.split(":"))
    return day_start + hours * 3600 + minutes * 60 + seconds


def from_date(dmy: str) -> float:
    """Midnight timestamp of a ``DD-MM-YYYY`` date (UTC)."""
    day, month, year = (int(part) for part in dmy.split("-"))
    moment = _dt.datetime(year, month, day, tzinfo=_dt.timezone.utc)
    return moment.timestamp()


def duration_hms(seconds: float) -> str:
    """Format a duration as ``Hh MMm SSs`` (paper: 7h 41m 37s)."""
    total = int(round(seconds))
    hours, rest = divmod(total, 3600)
    minutes, secs = divmod(rest, 60)
    return "{}h {:02d}m {:02d}s".format(hours, minutes, secs)


def day_index(seconds: float, epoch: float = 0.0) -> int:
    """Which day (since ``epoch``) a timestamp falls on.

    Used to decide whether two visits by the same visitor happened on
    the same day ("although not necessarily on different days" —
    Section 4.1).
    """
    return int((seconds - epoch) // SECONDS_PER_DAY)
