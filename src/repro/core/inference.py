"""Location inference over the SITM (Sections 3.2 and 4.2).

Two inference mechanisms fall out of the model:

**Hierarchy lifting** — "By only allowing 'proper part' types of
relationships, we allow inference of a MO's location at all levels of
granularity above the detection data level" (Section 3.2).
:func:`lift_trajectory` rewrites a trajectory at a coarser layer, so the
same dataset yields room-level *and* floor-level pattern mining inputs.

**Missing-presence inference** — Figure 6: "Based on the chain topology
of zones, a visitor's presence in Zone 60888 can be inferred": detected
in E (60887) then S (60890) with no direct accessibility edge between
them, the visitor *must* have crossed P (60888).
:func:`infer_missing_presence` inserts such undetected tuples, with a
confidence reflecting path ambiguity and a provenance annotation, e.g.::

    (checkpoint002, zone60888, 17:30:21, 17:31:42,
     {goals:["cloakroomPickup","souvenirBuy","museumExit"]})
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.annotations import (
    AnnotationKind,
    AnnotationSet,
    SemanticAnnotation,
)
from repro.core.events import merge_redundant_entries
from repro.core.trajectory import SemanticTrajectory, Trace, TraceEntry
from repro.indoor.hierarchy import LayerHierarchy
from repro.indoor.nrg import NodeRelationGraph

#: Annotation marking an inferred (never detected) presence tuple.
INFERRED = SemanticAnnotation(AnnotationKind.PROVENANCE, "inferred",
                              source="topology-inference")


# ----------------------------------------------------------------------
# hierarchy lifting
# ----------------------------------------------------------------------
@dataclass
class LiftReport:
    """Outcome of a lifting run."""

    input_entries: int = 0
    lifted_entries: int = 0
    dropped_unliftable: int = 0


def lift_trajectory(trajectory: SemanticTrajectory,
                    hierarchy: LayerHierarchy,
                    target_layer: str,
                    merge_gap: float = float("inf"),
                    report: Optional[LiftReport] = None
                    ) -> SemanticTrajectory:
    """Rewrite a trajectory at a coarser hierarchy layer.

    Every entry's state is lifted via the parent chain; consecutive
    entries that land in the same coarse cell merge into one presence
    interval (no spatial change happened *at that granularity*).  Stay
    annotations are preserved on the first constituent entry of each
    merged run; ``A_traj`` is untouched.

    Entries whose state cannot be lifted (orphans, or states outside
    the hierarchy) are dropped and counted in ``report``.

    Args:
        trajectory: the fine-grained trajectory.
        hierarchy: the layer hierarchy to lift through.
        target_layer: the coarser layer name.
        merge_gap: maximum gap (seconds) across which same-state lifted
            entries merge; infinite by default because the MO provably
            stayed within the coarse cell between its child detections.
        report: optional mutable counters.

    Raises:
        ValueError: when every entry drops (nothing to lift).
    """
    if report is None:
        report = LiftReport()
    lifted: List[TraceEntry] = []
    for entry in trajectory.trace:
        report.input_entries += 1
        coarse = hierarchy.lift(entry.state, target_layer)
        if coarse is None:
            report.dropped_unliftable += 1
            continue
        lifted.append(TraceEntry(
            transition=entry.transition,
            state=coarse,
            t_start=entry.t_start,
            t_end=entry.t_end,
            annotations=entry.annotations,
        ))
    if not lifted:
        raise ValueError(
            "no entry of the trajectory could be lifted to layer "
            "{!r}".format(target_layer))
    # Transitions between same-coarse-cell entries are internal moves at
    # the fine level; clear them so the merged trace stays event-based.
    normalised: List[TraceEntry] = [lifted[0]]
    for entry in lifted[1:]:
        if entry.state == normalised[-1].state:
            entry = TraceEntry(None, entry.state, entry.t_start,
                               entry.t_end, entry.annotations)
        normalised.append(entry)
    merged = merge_redundant_entries(Trace(normalised), max_gap=merge_gap)
    report.lifted_entries = len(merged)
    return trajectory.with_trace(merged)


def multi_granularity_views(trajectory: SemanticTrajectory,
                            hierarchy: LayerHierarchy
                            ) -> Dict[str, SemanticTrajectory]:
    """The trajectory lifted to every layer at or above its own.

    "It also enables the identification of certain types of movement
    patterns at the 'room' level for instance, and at the same time of
    other types of patterns at the 'floor' level, from the same
    trajectory dataset" (Section 3.2).

    Returns a mapping layer name → lifted trajectory, including the
    original at its own layer.
    """
    own_layer = hierarchy.graph.layer_of(trajectory.trace.entries[0].state)
    own_level = hierarchy.level_of_layer(own_layer)
    views: Dict[str, SemanticTrajectory] = {own_layer: trajectory}
    for layer_name in hierarchy.layers:
        level = hierarchy.level_of_layer(layer_name)
        if level >= own_level:
            continue
        try:
            views[layer_name] = lift_trajectory(trajectory, hierarchy,
                                                layer_name)
        except ValueError:
            continue
    return views


# ----------------------------------------------------------------------
# missing-presence inference (Figure 6)
# ----------------------------------------------------------------------
@dataclass
class InferenceReport:
    """Outcome of a missing-presence inference run."""

    gaps_examined: int = 0
    tuples_inserted: int = 0
    ambiguous_gaps: int = 0
    unexplained_gaps: int = 0


#: Optional callback giving domain annotations to an inferred tuple
#: (e.g. the Louvre example's cloakroom/souvenir/exit goals).
InferredAnnotator = Callable[[str], AnnotationSet]


def infer_missing_presence(trajectory: SemanticTrajectory,
                           nrg: NodeRelationGraph,
                           annotator: Optional[InferredAnnotator] = None,
                           max_path_length: int = 6,
                           report: Optional[InferenceReport] = None
                           ) -> SemanticTrajectory:
    """Insert presence tuples for provably-traversed undetected cells.

    For every consecutive entry pair ``(A, B)`` with no direct
    accessibility edge ``A → B``, the shortest NRG path explains the
    movement.  Its intermediate nodes are inserted as inferred entries
    that share the gap time proportionally.  Each inferred entry carries
    the :data:`INFERRED` provenance annotation with a confidence of
    ``1 / (number of shortest paths)`` — a single shortest path (the
    Figure 6 chain) gives certainty 1.0.

    Gaps with no explaining path within ``max_path_length`` hops are
    left untouched and counted as unexplained (data errors, in the
    paper's reading).
    """
    if report is None:
        report = InferenceReport()
    entries = list(trajectory.trace.entries)
    rebuilt: List[TraceEntry] = [entries[0]]
    for entry in entries[1:]:
        previous = rebuilt[-1]
        if (entry.state == previous.state
                or entry.state not in nrg or previous.state not in nrg
                or nrg.has_transition(previous.state, entry.state)):
            rebuilt.append(entry)
            continue
        report.gaps_examined += 1
        paths = nrg.all_simple_paths(previous.state, entry.state,
                                     max_length=max_path_length)
        if not paths:
            report.unexplained_gaps += 1
            rebuilt.append(entry)
            continue
        shortest_length = len(paths[0])
        shortest_paths = [p for p in paths if len(p) == shortest_length]
        if len(shortest_paths) > 1:
            report.ambiguous_gaps += 1
        confidence = 1.0 / len(shortest_paths)
        path = shortest_paths[0]
        intermediates = path[1:-1]
        gap_start = previous.t_end
        gap_end = max(entry.t_start, gap_start)
        slot = ((gap_end - gap_start) / len(intermediates)
                if intermediates else 0.0)
        for offset, state in enumerate(intermediates):
            base = AnnotationSet.of(SemanticAnnotation(
                AnnotationKind.PROVENANCE, "inferred",
                source="topology-inference", confidence=confidence))
            if annotator is not None:
                base = base.union(annotator(state))
            transition, _ = _transition_into(nrg, path[offset], state)
            rebuilt.append(TraceEntry(
                transition=transition,
                state=state,
                t_start=gap_start + offset * slot,
                t_end=gap_start + (offset + 1) * slot,
                annotations=base,
            ))
            report.tuples_inserted += 1
        # Rewire the detected entry's transition to come from the last
        # inferred cell instead of the impossible direct move.
        last_hop, _ = _transition_into(nrg, path[-2], entry.state)
        rebuilt.append(TraceEntry(
            transition=last_hop,
            state=entry.state,
            t_start=entry.t_start,
            t_end=entry.t_end,
            annotations=entry.annotations,
            transition_annotations=entry.transition_annotations,
        ))
    return trajectory.with_trace(Trace(rebuilt))


def _transition_into(nrg: NodeRelationGraph, from_state: str,
                     to_state: str) -> Tuple[Optional[str], bool]:
    """The transition id of the (unique or first) edge between states."""
    edges = nrg.edges_between(from_state, to_state)
    if not edges:
        return None, False
    edge = edges[0]
    return (edge.boundary_id or edge.edge_id), True


def coverage_gap_states(trajectory: SemanticTrajectory,
                        nrg: NodeRelationGraph,
                        max_path_length: int = 6) -> List[str]:
    """Just the states an object must have crossed without detection.

    A lighter-weight query than :func:`infer_missing_presence` for
    analytics that only need the set of provably-visited cells.
    """
    states: List[str] = []
    sequence = trajectory.distinct_state_sequence()
    for from_state, to_state in zip(sequence, sequence[1:]):
        if from_state not in nrg or to_state not in nrg:
            continue
        if nrg.has_transition(from_state, to_state):
            continue
        paths = nrg.all_simple_paths(from_state, to_state,
                                     max_length=max_path_length)
        if paths:
            for state in paths[0][1:-1]:
                if state not in states:
                    states.append(state)
    return states
