"""The Semantic Indoor Trajectory Model — the paper's core contribution.

This package implements Section 3.3 of the paper:

* :mod:`repro.core.annotations` — semantic annotations (``A_traj``,
  ``A_i``, transition annotations);
* :mod:`repro.core.trajectory` — Definitions 3.1/3.2
  (:class:`SemanticTrajectory`, :class:`Trace`, :class:`TraceEntry`);
* :mod:`repro.core.subtrajectory` — Definition 3.3;
* :mod:`repro.core.episodes` — Definition 3.4 episodes, predicates, and
  overlapping episodic segmentations;
* :mod:`repro.core.events` — the event-based split/merge semantics;
* :mod:`repro.core.builder` — raw zone detections → trajectories;
* :mod:`repro.core.inference` — hierarchy lifting and missing-presence
  inference (Figure 6);
* :mod:`repro.core.validation` — data-error detection against the
  accessibility topology.
"""

from repro.core.annotations import (
    AnnotationKind,
    AnnotationSet,
    SemanticAnnotation,
)
from repro.core.trajectory import (
    SemanticTrajectory,
    Trace,
    TraceEntry,
    TraceValidationError,
)
from repro.core.subtrajectory import (
    extract_by_entries,
    extract_by_time,
    is_subtrajectory,
)
from repro.core.episodes import (
    Episode,
    EpisodicSegmentation,
    Predicate,
    StateSequencePredicate,
    VisitsStatePredicate,
    find_episodes,
    force_exclusive,
    is_episode,
)
from repro.core.events import (
    SemanticEvent,
    SemanticEventLog,
    apply_semantic_event,
    merge_redundant_entries,
)
from repro.core.builder import (
    BuildReport,
    CleaningReport,
    DetectionRecord,
    TraceDraft,
    TrajectoryBuilder,
)
from repro.core.inference import (
    InferenceReport,
    LiftReport,
    infer_missing_presence,
    lift_trajectory,
    multi_granularity_views,
)
from repro.core.validation import (
    Issue,
    IssueCode,
    Severity,
    is_consistent,
    validate_trajectory,
)
from repro.core.conceptual import (
    AttentionExtractor,
    AttentionReport,
    attended_exhibits,
    attention_profile,
    physical_vs_conceptual,
)

__all__ = [
    "AnnotationKind",
    "AnnotationSet",
    "SemanticAnnotation",
    "SemanticTrajectory",
    "Trace",
    "TraceEntry",
    "TraceValidationError",
    "extract_by_entries",
    "extract_by_time",
    "is_subtrajectory",
    "Episode",
    "EpisodicSegmentation",
    "Predicate",
    "StateSequencePredicate",
    "VisitsStatePredicate",
    "find_episodes",
    "force_exclusive",
    "is_episode",
    "SemanticEvent",
    "SemanticEventLog",
    "apply_semantic_event",
    "merge_redundant_entries",
    "BuildReport",
    "CleaningReport",
    "DetectionRecord",
    "TraceDraft",
    "TrajectoryBuilder",
    "InferenceReport",
    "LiftReport",
    "infer_missing_presence",
    "lift_trajectory",
    "multi_granularity_views",
    "Issue",
    "IssueCode",
    "Severity",
    "is_consistent",
    "validate_trajectory",
    "AttentionExtractor",
    "AttentionReport",
    "attended_exhibits",
    "attention_profile",
    "physical_vs_conceptual",
]
