"""The workbench facade: generate → build → store → query → mine.

:class:`Workbench` unifies the reproduction's layers behind one
object.  A workbench owns a space model, a
:class:`~repro.storage.store.TrajectoryStore`, and the metrics of its
last build; it ingests detection records through the streaming
pipeline engine, exposes the declarative planned query API, and feeds
query results straight into the mining layer::

    from repro.api import Workbench
    from repro.storage import expr as E

    wb = Workbench.louvre(scale=0.1)
    salle = wb.query().matching(E.state("zone60853") & E.goal("visit"))
    print(salle.explain())
    patterns = wb.patterns(salle, min_support=0.1)
    balances = wb.flow(salle.execute().limit(500))

Every mining entry point (:meth:`sequences`, :meth:`similarity`,
:meth:`flow`, :meth:`patterns`) accepts a corpus in any form — a
query, a lazy result set, stored hits, plain trajectories, or nothing
(meaning the whole store).

Since the service-layer redesign, :class:`Workbench` is *sugar over
the service protocol*: its query/mining operations compile to the
same typed commands (:mod:`repro.service.protocol`) that the embedded
HTTP server executes, dispatched through an in-process
:class:`~repro.service.executor.LocalBinding` — so library callers
and wire callers hit one code path and get byte-identical results.
See ``docs/service.md`` (the protocol reference) and ``docs/query.md``
(the query language).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.builder import DetectionRecord, TrajectoryBuilder
from repro.mining.corpus import Corpus, iter_trajectories
from repro.mining.flow import FlowBalance, flow_balances
from repro.mining.prefixspan import SequentialPattern
from repro.mining.sequences import corpus_summary, state_sequences
from repro.pipeline import Pipeline, Stage, StoreSinkStage
from repro.pipeline.metrics import PipelineMetrics
from repro.storage.expr import Expr, ExprSerializationError
from repro.storage.query import Query
from repro.storage.results import ResultSet
from repro.storage.store import TrajectoryStore

#: The session name a workbench's corpus occupies in its private
#: service registry (the local binding's one tenant).
LOCAL_SESSION = "local"

#: Process-wide space-assignment counter backing
#: :attr:`Workbench.space_generation` — never reused, unlike
#: ``id(space)``, so response-cache stamps cannot collide with a
#: garbage-collected predecessor.
_SPACE_GENERATIONS = itertools.count(1)


class Workbench:
    """One handle over a corpus: build it, query it, mine it.

    Args:
        space: the indoor space model (needed for building from
            detection records and for hierarchy-aware mining); may be
            ``None`` for pre-built trajectory corpora.
        store: an existing store to adopt; a fresh one by default.
    """

    def __init__(self, space: Optional[object] = None,
                 store: Optional[TrajectoryStore] = None) -> None:
        self.space = space
        self.store = store if store is not None else TrajectoryStore()
        #: Metrics of the most recent :meth:`build` run.
        self.metrics: Optional[PipelineMetrics] = None
        self._binding = None

    @property
    def space(self) -> Optional[object]:
        """The indoor space model (settable; see
        :attr:`space_generation`)."""
        return self._space

    @space.setter
    def space(self, value: Optional[object]) -> None:
        self._space = value
        self._space_generation = next(_SPACE_GENERATIONS)

    @property
    def space_generation(self) -> int:
        """Monotonic stamp of space assignments.

        Bumped (from a process-wide counter) on every assignment to
        :attr:`space`, including construction.  The response cache
        keys on this instead of ``id(space)``: two distinct space
        objects can share an ``id`` across a garbage collection, but
        never a generation.
        """
        return self._space_generation

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def louvre(cls, scale: float = 1.0, space: Optional[object] = None,
               batch_size: int = 512,
               streaming: bool = True,
               workers: int = 0, executor: str = "thread",
               cache: object = None) -> "Workbench":
        """A workbench over the (scaled) synthetic Louvre corpus.

        ``workers``/``executor``/``cache`` are forwarded to
        :meth:`build` (parallel batch execution and inter-stage
        caching).
        """
        from repro.louvre.space import LouvreSpace
        from repro.pipeline.sources import louvre_source

        workbench = cls(space=space if space is not None
                        else LouvreSpace())
        workbench.build(louvre_source(workbench.space, scale=scale),
                        batch_size=batch_size, streaming=streaming,
                        workers=workers, executor=executor,
                        cache=cache)
        return workbench

    @classmethod
    def from_csv(cls, path: str, space: Optional[object] = None,
                 batch_size: int = 512,
                 streaming: bool = False,
                 workers: int = 0, executor: str = "thread",
                 cache: object = None) -> "Workbench":
        """A workbench built from a detection CSV (Louvre zones by
        default)."""
        from repro.louvre.space import LouvreSpace
        from repro.pipeline.sources import csv_source

        workbench = cls(space=space if space is not None
                        else LouvreSpace())
        workbench.build(csv_source(path), batch_size=batch_size,
                        streaming=streaming, workers=workers,
                        executor=executor, cache=cache)
        return workbench

    @classmethod
    def from_trajectories(cls,
                          trajectories: Corpus,
                          space: Optional[object] = None) -> "Workbench":
        """A workbench over already-built trajectories (no pipeline
        run)."""
        workbench = cls(space=space)
        workbench.store.extend(iter_trajectories(trajectories))
        return workbench

    @classmethod
    def synthetic(cls, archetype: str = "museum", seed: int = 0,
                  agents: int = 1000, crowd_seed: int = 0,
                  agents_per_day: int = 5000,
                  batch_size: int = 512) -> "Workbench":
        """A workbench over a parametric venue and synthetic crowd.

        Generates a seeded :mod:`repro.synth` venue of the requested
        archetype, synthesizes ``agents`` deterministic visitors over
        it, and builds the corpus through the standard pipeline.  The
        crowd stream is event-time interleaved (not visit-contiguous),
        so the build uses the batching segmenter.

        Raises:
            KeyError: for an unknown archetype.
        """
        from repro.synth import (CrowdSpec, CrowdSynthesizer,
                                 VenueSpec, generate_venue)

        venue = generate_venue(VenueSpec(archetype=archetype,
                                         seed=seed))
        crowd = CrowdSynthesizer(
            venue, CrowdSpec(agents=agents, seed=crowd_seed,
                             agents_per_day=agents_per_day))
        workbench = cls(space=venue)
        workbench.build(crowd.iter_events(), batch_size=batch_size,
                        streaming=False)
        return workbench

    # ------------------------------------------------------------------
    # durability (repro.persist)
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, directory: str, verify: bool = True) -> "Workbench":
        """Recover a workbench persisted with :meth:`save`.

        Loads the durable session directory's current snapshot,
        replays its append log, revives the recorded space model, and
        keeps the log attached — so the reopened workbench journals
        further builds to disk as they stream.

        Raises:
            repro.persist.PersistError: when ``directory`` holds no
                persisted session.
            repro.persist.CorruptSnapshotError: when the snapshot
                fails checksum verification.
        """
        from repro.persist import open_workbench

        return open_workbench(directory, verify=verify)

    def save(self, directory: str, fsync: bool = True):
        """Persist this workbench's corpus as a durable session
        directory (snapshot + append log; see
        ``docs/persistence.md``).

        Returns the :class:`~repro.persist.format.SnapshotInfo`.
        Afterwards the store journals every further insert to the
        directory's log, and calling :meth:`save` again folds the
        log back into a fresh snapshot.
        """
        from repro.persist import save_workbench

        return save_workbench(directory, self, fsync=fsync)

    # ------------------------------------------------------------------
    # build (the pipeline engine)
    # ------------------------------------------------------------------
    def prepare_build(self, batch_size: int = 512,
                      streaming: bool = True,
                      extra_stages: Sequence[Stage] = (),
                      workers: int = 0, executor: str = "thread",
                      cache: object = None) -> Pipeline:
        """Assemble (but do not run) the build pipeline.

        The clean → segment → trace → annotate → store chain over
        this workbench's space and store, ready for
        :meth:`Pipeline.run <repro.pipeline.engine.Pipeline.run>`.
        :meth:`build` is this plus the run; the service layer's
        background jobs call it directly so they can hold the
        pipeline and report live metrics while it streams.

        Raises:
            ValueError: when the workbench has no space model or the
                cache argument is malformed.
        """
        from repro.pipeline.cache import DEFAULT_CACHE, StageCache

        if self.space is None:
            raise ValueError(
                "building from detection records needs a space model; "
                "construct the Workbench with one or use "
                "from_trajectories()")
        if cache is True:
            cache = DEFAULT_CACHE
        elif cache is False:
            cache = None
        elif cache is not None and not isinstance(cache, StageCache):
            raise ValueError(
                "cache must be a StageCache, a bool or None")
        builder = TrajectoryBuilder(self.space.dataset_zone_nrg())
        sink = StoreSinkStage(store=self.store)
        return Pipeline(
            builder.stages(streaming=streaming) + list(extra_stages)
            + [sink],
            batch_size=batch_size, workers=workers, executor=executor,
            cache=cache)

    def build(self, records: Iterable[DetectionRecord],
              batch_size: int = 512, streaming: bool = True,
              extra_stages: Sequence[Stage] = (),
              workers: int = 0, executor: str = "thread",
              cache: object = None) -> PipelineMetrics:
        """Stream detection records through clean → segment → trace →
        annotate → store, appending to this workbench's store.

        Args:
            records: any detection-record iterable (a pipeline source).
            batch_size: engine batch size.
            streaming: use the O(longest-visit) streaming segmenter
                (requires visit-contiguous input, as the bundled
                sources produce).
            extra_stages: stages appended between ``annotate`` and the
                store sink (e.g. a gap-inference stage).
            workers: parallel-safe stages run their batches on a pool
                of this size (0/1 = serial; see ``docs/pipeline.md``).
            executor: ``"thread"`` or ``"process"`` pool kind.
            cache: inter-stage result cache — a
                :class:`~repro.pipeline.cache.StageCache`, ``True``
                for the process-wide default cache, or
                ``False``/``None`` for no caching.  Repeated builds
                of a fingerprinted source replay the memoized
                clean→…→annotate prefix instead of recomputing it.

        Raises:
            ValueError: when the workbench has no space model.
        """
        pipeline = self.prepare_build(
            batch_size=batch_size, streaming=streaming,
            extra_stages=extra_stages, workers=workers,
            executor=executor, cache=cache)
        pipeline.run(records, collect=False)
        self.metrics = pipeline.metrics
        return self.metrics

    # ------------------------------------------------------------------
    # query surface
    # ------------------------------------------------------------------
    def query(self, expression: Optional[Expr] = None) -> Query:
        """A planned query over the store (optionally pre-seeded)."""
        return Query(self.store, expression)

    def find(self, expression: Expr) -> ResultSet:
        """Plan and execute an expression; a lazy result stream."""
        return self.query(expression).execute()

    def explain(self, expression: Expr) -> str:
        """The selectivity-ordered plan an expression compiles to."""
        return self.query(expression).explain()

    def load_query(self, data: Mapping) -> Query:
        """Rebuild a serialized query (:meth:`Query.to_dict`) against
        this store."""
        return Query.from_dict(self.store, data)

    # ------------------------------------------------------------------
    # the service binding (one code path for library and wire callers)
    # ------------------------------------------------------------------
    @property
    def binding(self):
        """The workbench's in-process service endpoint.

        A :class:`~repro.service.executor.LocalBinding` over a
        private single-session registry holding this workbench under
        the name :data:`LOCAL_SESSION` — every protocol-expressible
        operation below routes through it, so the in-process path is
        the HTTP server's path minus the socket.
        """
        if self._binding is None:
            from repro.service.executor import LocalBinding
            from repro.service.registry import SessionRegistry

            self._binding = LocalBinding(SessionRegistry())
        registry = self._binding.registry
        if LOCAL_SESSION not in registry.names():
            # (Re-)adopt: resilient to a DropSession("local") issued
            # through the binding or a served endpoint — the store
            # lives on the workbench, so nothing is lost.
            registry.adopt(LOCAL_SESSION, self)
        return self._binding

    def _protocol_query(self, corpus: Optional[Corpus]
                        ) -> Tuple[bool, Optional[Dict]]:
        """``(expressible, query_dict)`` for a corpus argument.

        A corpus is protocol-expressible when it is the whole store
        (``None``) or a serializable :class:`Query` over *this*
        workbench's store; materialized iterables and foreign-store
        queries fall back to the direct mining path.
        """
        if corpus is None:
            return True, None
        if isinstance(corpus, Query) and corpus._store is self.store:
            try:
                return True, corpus.to_dict()
            except ExprSerializationError:
                return False, None  # holds a where() callable
        return False, None

    def _delegate(self, corpus: Optional[Corpus], make_command,
                  attribute: str, fallback):
        """Route through the protocol when the corpus allows it.

        ``make_command(query_dict)`` builds the command,
        ``attribute`` names the response field to return, and
        ``fallback()`` serves corpora the protocol cannot express
        (materialized iterables, foreign-store or ``where()``
        queries) via the same executor-level helpers.
        """
        expressible, query = self._protocol_query(corpus)
        if expressible:
            return getattr(self.binding.call(make_command(query)),
                           attribute)
        return fallback()

    # ------------------------------------------------------------------
    # mining over any corpus form
    # ------------------------------------------------------------------
    def _corpus(self, corpus: Optional[Corpus]) -> Corpus:
        return self.store if corpus is None else corpus

    def sequences(self, corpus: Optional[Corpus] = None
                  ) -> List[List[str]]:
        """Distinct state sequences (``None`` → the whole store)."""
        from repro.service import protocol as P

        return self._delegate(
            corpus,
            lambda q: P.Sequences(session=LOCAL_SESSION, query=q),
            "sequences",
            lambda: state_sequences(self._corpus(corpus)))

    def patterns(self, corpus: Optional[Corpus] = None,
                 min_support: float = 0.05,
                 max_length: int = 4) -> List[SequentialPattern]:
        """Sequential patterns (PrefixSpan) over a corpus.

        Args:
            corpus: any corpus form; ``None`` mines the whole store.
            min_support: absolute count when >= 1, else a fraction of
                the corpus (floored at 2).
            max_length: longest pattern to explore.
        """
        from repro.service import protocol as P
        from repro.service.executor import patterns_over

        return self._delegate(
            corpus,
            lambda q: P.MinePatterns(session=LOCAL_SESSION, query=q,
                                     min_support=min_support,
                                     max_length=max_length),
            "patterns",
            lambda: patterns_over(
                state_sequences(self._corpus(corpus)),
                min_support, max_length))

    def similarity(self, corpus: Optional[Corpus] = None,
                   hierarchy: Optional[object] = None
                   ) -> List[List[float]]:
        """Pairwise trajectory similarity matrix over a corpus.

        Uses the hierarchy-aware metric when a layer hierarchy is
        given — or the space's ``zone_hierarchy`` when it has one —
        and plain normalized edit similarity otherwise.
        """
        from repro.service import protocol as P
        from repro.service.executor import similarity_over

        # An explicit hierarchy cannot cross the protocol (it derives
        # the hierarchy from the session's space) — direct path only.
        direct = lambda: similarity_over(  # noqa: E731
            self.space, state_sequences(self._corpus(corpus)),
            hierarchy)
        if hierarchy is not None:
            return direct()
        return self._delegate(
            corpus,
            lambda q: P.Similarity(session=LOCAL_SESSION, query=q),
            "matrix", direct)

    def flow(self, corpus: Optional[Corpus] = None
             ) -> List[FlowBalance]:
        """Per-cell flow balances over a corpus."""
        from repro.service import protocol as P

        return self._delegate(
            corpus,
            lambda q: P.Flow(session=LOCAL_SESSION, query=q),
            "balances",
            lambda: flow_balances(self._corpus(corpus)))

    def summary(self, corpus: Optional[Corpus] = None
                ) -> Dict[str, float]:
        """Section 4.1-style headline numbers over a corpus."""
        from repro.service import protocol as P

        return self._delegate(
            corpus,
            lambda q: P.Summary(session=LOCAL_SESSION, query=q),
            "stats",
            lambda: corpus_summary(self._corpus(corpus)))

    def serve(self, host: str = "127.0.0.1", port: int = 0,
              backend: str = "asyncio"):
        """Expose this workbench over HTTP (non-blocking).

        Starts an embedded server over the binding's registry, so the
        corpus is addressable as session :data:`LOCAL_SESSION`.
        ``backend`` picks the front-end: ``"asyncio"`` (the default
        :class:`~repro.service.aserver.AsyncServiceServer`) or
        ``"threading"`` (the legacy :class:`~repro.service.server
        .ServiceServer`) — both answer byte-identically.  Returns the
        started server; call ``.stop()`` when done.
        """
        if backend == "asyncio":
            from repro.service.aserver import AsyncServiceServer

            return AsyncServiceServer(self.binding.registry,
                                      host=host, port=port).start()
        if backend == "threading":
            from repro.service.server import ServiceServer

            return ServiceServer(self.binding.registry, host=host,
                                 port=port).start()
        raise ValueError(
            "unknown serve backend {!r} (expected 'asyncio' or "
            "'threading')".format(backend))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.store)

    def __repr__(self) -> str:
        return "Workbench(store={} trajectories, space={})".format(
            len(self.store),
            type(self.space).__name__ if self.space is not None
            else None)
