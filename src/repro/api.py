"""The workbench facade: generate → build → store → query → mine.

:class:`Workbench` unifies the reproduction's layers behind one
object.  A workbench owns a space model, a
:class:`~repro.storage.store.TrajectoryStore`, and the metrics of its
last build; it ingests detection records through the streaming
pipeline engine, exposes the declarative planned query API, and feeds
query results straight into the mining layer::

    from repro.api import Workbench
    from repro.storage import expr as E

    wb = Workbench.louvre(scale=0.1)
    salle = wb.query().matching(E.state("zone60853") & E.goal("visit"))
    print(salle.explain())
    patterns = wb.patterns(salle, min_support=0.1)
    balances = wb.flow(salle.execute().limit(500))

Every mining entry point (:meth:`sequences`, :meth:`similarity`,
:meth:`flow`, :meth:`patterns`) accepts a corpus in any form — a
query, a lazy result set, stored hits, plain trajectories, or nothing
(meaning the whole store).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.builder import DetectionRecord, TrajectoryBuilder
from repro.mining.corpus import Corpus, iter_trajectories
from repro.mining.flow import FlowBalance, flow_balances
from repro.mining.prefixspan import SequentialPattern, prefixspan
from repro.mining.sequences import corpus_summary, state_sequences
from repro.mining.similarity import similarity_matrix
from repro.pipeline import Pipeline, Stage, StoreSinkStage
from repro.pipeline.metrics import PipelineMetrics
from repro.storage.expr import Expr
from repro.storage.query import Query
from repro.storage.results import ResultSet
from repro.storage.store import TrajectoryStore


class Workbench:
    """One handle over a corpus: build it, query it, mine it.

    Args:
        space: the indoor space model (needed for building from
            detection records and for hierarchy-aware mining); may be
            ``None`` for pre-built trajectory corpora.
        store: an existing store to adopt; a fresh one by default.
    """

    def __init__(self, space: Optional[object] = None,
                 store: Optional[TrajectoryStore] = None) -> None:
        self.space = space
        self.store = store if store is not None else TrajectoryStore()
        #: Metrics of the most recent :meth:`build` run.
        self.metrics: Optional[PipelineMetrics] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def louvre(cls, scale: float = 1.0, space: Optional[object] = None,
               batch_size: int = 512,
               streaming: bool = True,
               workers: int = 0, executor: str = "thread",
               cache: object = None) -> "Workbench":
        """A workbench over the (scaled) synthetic Louvre corpus.

        ``workers``/``executor``/``cache`` are forwarded to
        :meth:`build` (parallel batch execution and inter-stage
        caching).
        """
        from repro.louvre.space import LouvreSpace
        from repro.pipeline.sources import louvre_source

        workbench = cls(space=space if space is not None
                        else LouvreSpace())
        workbench.build(louvre_source(workbench.space, scale=scale),
                        batch_size=batch_size, streaming=streaming,
                        workers=workers, executor=executor,
                        cache=cache)
        return workbench

    @classmethod
    def from_csv(cls, path: str, space: Optional[object] = None,
                 batch_size: int = 512,
                 streaming: bool = False,
                 workers: int = 0, executor: str = "thread",
                 cache: object = None) -> "Workbench":
        """A workbench built from a detection CSV (Louvre zones by
        default)."""
        from repro.louvre.space import LouvreSpace
        from repro.pipeline.sources import csv_source

        workbench = cls(space=space if space is not None
                        else LouvreSpace())
        workbench.build(csv_source(path), batch_size=batch_size,
                        streaming=streaming, workers=workers,
                        executor=executor, cache=cache)
        return workbench

    @classmethod
    def from_trajectories(cls,
                          trajectories: Corpus,
                          space: Optional[object] = None) -> "Workbench":
        """A workbench over already-built trajectories (no pipeline
        run)."""
        workbench = cls(space=space)
        workbench.store.extend(iter_trajectories(trajectories))
        return workbench

    # ------------------------------------------------------------------
    # build (the pipeline engine)
    # ------------------------------------------------------------------
    def build(self, records: Iterable[DetectionRecord],
              batch_size: int = 512, streaming: bool = True,
              extra_stages: Sequence[Stage] = (),
              workers: int = 0, executor: str = "thread",
              cache: object = None) -> PipelineMetrics:
        """Stream detection records through clean → segment → trace →
        annotate → store, appending to this workbench's store.

        Args:
            records: any detection-record iterable (a pipeline source).
            batch_size: engine batch size.
            streaming: use the O(longest-visit) streaming segmenter
                (requires visit-contiguous input, as the bundled
                sources produce).
            extra_stages: stages appended between ``annotate`` and the
                store sink (e.g. a gap-inference stage).
            workers: parallel-safe stages run their batches on a pool
                of this size (0/1 = serial; see ``docs/pipeline.md``).
            executor: ``"thread"`` or ``"process"`` pool kind.
            cache: inter-stage result cache — a
                :class:`~repro.pipeline.cache.StageCache`, ``True``
                for the process-wide default cache, or
                ``False``/``None`` for no caching.  Repeated builds
                of a fingerprinted source replay the memoized
                clean→…→annotate prefix instead of recomputing it.

        Raises:
            ValueError: when the workbench has no space model.
        """
        from repro.pipeline.cache import DEFAULT_CACHE, StageCache

        if self.space is None:
            raise ValueError(
                "building from detection records needs a space model; "
                "construct the Workbench with one or use "
                "from_trajectories()")
        if cache is True:
            cache = DEFAULT_CACHE
        elif cache is False:
            cache = None
        elif cache is not None and not isinstance(cache, StageCache):
            raise ValueError(
                "cache must be a StageCache, a bool or None")
        builder = TrajectoryBuilder(self.space.dataset_zone_nrg())
        sink = StoreSinkStage(store=self.store)
        pipeline = Pipeline(
            builder.stages(streaming=streaming) + list(extra_stages)
            + [sink],
            batch_size=batch_size, workers=workers, executor=executor,
            cache=cache)
        pipeline.run(records, collect=False)
        self.metrics = pipeline.metrics
        return self.metrics

    # ------------------------------------------------------------------
    # query surface
    # ------------------------------------------------------------------
    def query(self, expression: Optional[Expr] = None) -> Query:
        """A planned query over the store (optionally pre-seeded)."""
        return Query(self.store, expression)

    def find(self, expression: Expr) -> ResultSet:
        """Plan and execute an expression; a lazy result stream."""
        return self.query(expression).execute()

    def explain(self, expression: Expr) -> str:
        """The selectivity-ordered plan an expression compiles to."""
        return self.query(expression).explain()

    def load_query(self, data: Mapping) -> Query:
        """Rebuild a serialized query (:meth:`Query.to_dict`) against
        this store."""
        return Query.from_dict(self.store, data)

    # ------------------------------------------------------------------
    # mining over any corpus form
    # ------------------------------------------------------------------
    def _corpus(self, corpus: Optional[Corpus]) -> Corpus:
        return self.store if corpus is None else corpus

    def sequences(self, corpus: Optional[Corpus] = None
                  ) -> List[List[str]]:
        """Distinct state sequences (``None`` → the whole store)."""
        return state_sequences(self._corpus(corpus))

    def patterns(self, corpus: Optional[Corpus] = None,
                 min_support: float = 0.05,
                 max_length: int = 4) -> List[SequentialPattern]:
        """Sequential patterns (PrefixSpan) over a corpus.

        Args:
            corpus: any corpus form; ``None`` mines the whole store.
            min_support: absolute count when >= 1, else a fraction of
                the corpus (floored at 2).
            max_length: longest pattern to explore.
        """
        sequences = self.sequences(corpus)
        if not sequences:
            return []
        if min_support >= 1:
            support = int(min_support)
        else:
            support = max(2, int(math.ceil(min_support
                                           * len(sequences))))
        return prefixspan(sequences, support, max_length)

    def similarity(self, corpus: Optional[Corpus] = None,
                   hierarchy: Optional[object] = None
                   ) -> List[List[float]]:
        """Pairwise trajectory similarity matrix over a corpus.

        Uses the hierarchy-aware metric when a layer hierarchy is
        given — or the space's ``zone_hierarchy`` when it has one —
        and plain normalized edit similarity otherwise.
        """
        if hierarchy is None:
            hierarchy = getattr(self.space, "zone_hierarchy", None)
        return similarity_matrix(hierarchy, self.sequences(corpus))

    def flow(self, corpus: Optional[Corpus] = None
             ) -> List[FlowBalance]:
        """Per-cell flow balances over a corpus."""
        return flow_balances(self._corpus(corpus))

    def summary(self, corpus: Optional[Corpus] = None
                ) -> Dict[str, float]:
        """Section 4.1-style headline numbers over a corpus."""
        return corpus_summary(self._corpus(corpus))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.store)

    def __repr__(self) -> str:
        return "Workbench(store={} trajectories, space={})".format(
            len(self.store),
            type(self.space).__name__ if self.space is not None
            else None)
