"""The unified streaming pipeline engine.

The paper's workflow is one fixed chain — zone detections are cleaned,
segmented into visits, lifted to SITM trajectories, indexed, then
mined (Sections 4.1–4.3).  This package turns that chain into a
composable engine: a :class:`Stage` protocol over batches, a
:class:`Pipeline` executor that streams configurable-size batches end
to end (memory stays O(batch), not O(corpus)), per-stage
metrics/instrumentation, and a named-stage registry so pipelines can
be assembled from specs and extended with custom stages.

See ``docs/pipeline.md`` for the architecture and the stage catalog.
"""

from repro.pipeline.cache import DEFAULT_CACHE, StageCache, fingerprint_of
from repro.pipeline.engine import EXECUTORS, Pipeline, PipelineError, Stage
from repro.pipeline.metrics import PipelineMetrics, StageMetrics
from repro.pipeline.registry import (
    UnknownStageError,
    available_stages,
    create_stage,
    register_stage,
    stage_catalog,
)
from repro.pipeline.sources import (
    FingerprintedSource,
    csv_source,
    louvre_source,
)
from repro.pipeline.stages import (
    AnnotateStage,
    CleanStage,
    CollectStage,
    FilterStage,
    JsonlSinkStage,
    MapStage,
    PrefixSpanStage,
    SegmentStage,
    StateSequenceStage,
    StoreSinkStage,
    TraceConstructStage,
)

__all__ = [
    "DEFAULT_CACHE",
    "EXECUTORS",
    "FingerprintedSource",
    "Pipeline",
    "PipelineError",
    "Stage",
    "StageCache",
    "fingerprint_of",
    "PipelineMetrics",
    "StageMetrics",
    "UnknownStageError",
    "available_stages",
    "create_stage",
    "register_stage",
    "stage_catalog",
    "csv_source",
    "louvre_source",
    "AnnotateStage",
    "CleanStage",
    "CollectStage",
    "FilterStage",
    "JsonlSinkStage",
    "MapStage",
    "PrefixSpanStage",
    "SegmentStage",
    "StateSequenceStage",
    "StoreSinkStage",
    "TraceConstructStage",
]
