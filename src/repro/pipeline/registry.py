"""The named-stage registry.

Stages register under a short name (``clean``, ``segment``, ``store``,
...) so pipelines can be assembled from specs — the CLI's
``repro pipeline run --stages clean,segment,trace,annotate,store``
resolves names through this module, and downstream code can plug in
custom stages with :func:`register_stage` (see ``docs/pipeline.md``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple


class UnknownStageError(KeyError):
    """A stage name was not found in the registry."""

    def __init__(self, name: str, available: List[str]) -> None:
        super().__init__(name)
        self.name = name
        self.available = available

    def __str__(self) -> str:
        return "unknown pipeline stage {!r}; registered stages: {}".format(
            self.name, ", ".join(self.available) or "(none)")


#: name → stage factory (usually the stage class itself).
_REGISTRY: Dict[str, Callable[..., object]] = {}


def register_stage(name: str,
                   factory: Optional[Callable[..., object]] = None):
    """Register a stage factory under ``name``.

    Usable directly (``register_stage("x", factory)``) or as a class
    decorator (``@register_stage("x")``).  Re-registering a name
    replaces the previous factory, so applications can override
    built-ins.
    """
    def _register(target: Callable[..., object]):
        _REGISTRY[name] = target
        return target

    if factory is not None:
        return _register(factory)
    return _register


def create_stage(name: str, **kwargs):
    """Instantiate the stage registered under ``name``.

    Raises:
        UnknownStageError: for an unregistered name.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise UnknownStageError(name, available_stages()) from None
    return factory(**kwargs)


def available_stages() -> List[str]:
    """The registered stage names, sorted."""
    return sorted(_REGISTRY)


def stage_catalog() -> List[Tuple[str, str]]:
    """(name, one-line description) for every registered stage."""
    catalog: List[Tuple[str, str]] = []
    for name in available_stages():
        doc = _REGISTRY[name].__doc__ or ""
        catalog.append((name, doc.strip().splitlines()[0] if doc else ""))
    return catalog
