"""Per-stage instrumentation for pipeline runs.

Every :class:`~repro.pipeline.engine.Pipeline` run attaches one
:class:`StageMetrics` to each stage and aggregates them into a
:class:`PipelineMetrics`.  Stages record *why* items disappeared
(:meth:`StageMetrics.drop`) and arbitrary domain counters
(:meth:`StageMetrics.count`), while the executor itself accounts for
items in/out, batch counts and wall time — so a run explains itself
without any consumer re-deriving statistics from the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List


@dataclass
class StageMetrics:
    """What one stage did during one pipeline run.

    Attributes:
        name: the stage's registry name.
        batches: number of ``process`` calls (the ``finish`` flush
            counts as one more when it emitted items).
        items_in: items handed to the stage.
        items_out: items the stage emitted (including its flush).
        seconds: wall time spent inside the stage.
        drops: drop reason → count of items discarded for it.
        counters: free-form domain counters (e.g. ``entries``,
            ``overlap_clipped``).
    """

    name: str
    batches: int = 0
    items_in: int = 0
    items_out: int = 0
    seconds: float = 0.0
    drops: Dict[str, int] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)

    def drop(self, reason: str, count: int = 1) -> None:
        """Record ``count`` items discarded for ``reason``."""
        self.drops[reason] = self.drops.get(reason, 0) + count

    def count(self, key: str, amount: int = 1) -> None:
        """Bump a free-form domain counter."""
        self.counters[key] = self.counters.get(key, 0) + amount

    def merge_from(self, other: "StageMetrics") -> None:
        """Fold another metrics record for the same stage into this one.

        Used by the parallel executor (per-task metrics merged in
        submission order) and the stage cache (memoized prefix metrics
        replayed into a fresh run), so aggregate counts — and the
        insertion order of drop reasons — match serial execution.
        """
        self.batches += other.batches
        self.items_in += other.items_in
        self.items_out += other.items_out
        self.seconds += other.seconds
        for reason, count in other.drops.items():
            self.drops[reason] = self.drops.get(reason, 0) + count
        for key, amount in other.counters.items():
            self.counters[key] = self.counters.get(key, 0) + amount

    @property
    def dropped(self) -> int:
        """Total items discarded across all reasons."""
        return sum(self.drops.values())

    @property
    def throughput(self) -> float:
        """Items in per second (0 when no time was measured)."""
        if self.seconds <= 0:
            return 0.0
        return self.items_in / self.seconds

    def as_dict(self) -> Dict[str, object]:
        """Plain-data form for reports and JSON."""
        return {
            "name": self.name,
            "batches": self.batches,
            "items_in": self.items_in,
            "items_out": self.items_out,
            "dropped": self.dropped,
            "seconds": self.seconds,
            "drops": dict(self.drops),
            "counters": dict(self.counters),
        }


class PipelineMetrics:
    """The ordered per-stage metrics of one pipeline run."""

    def __init__(self, stages: List[StageMetrics]) -> None:
        self._stages = list(stages)
        self._by_name: Dict[str, StageMetrics] = {}
        for metrics in self._stages:
            # first occurrence wins when a name repeats
            self._by_name.setdefault(metrics.name, metrics)

    def __iter__(self) -> Iterator[StageMetrics]:
        return iter(self._stages)

    def __len__(self) -> int:
        return len(self._stages)

    def __getitem__(self, name: str) -> StageMetrics:
        """Metrics of the (first) stage with the given name.

        Raises:
            KeyError: when no stage has that name.
        """
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError("no stage named {!r}; stages: {}".format(
                name, [m.name for m in self._stages]))

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def total_seconds(self) -> float:
        """Wall time summed over all stages."""
        return sum(m.seconds for m in self._stages)

    def as_dict(self) -> Dict[str, object]:
        """Plain-data form for reports and JSON."""
        return {
            "total_seconds": self.total_seconds,
            "stages": [m.as_dict() for m in self._stages],
        }

    def render(self) -> str:
        """A fixed-width per-stage summary table."""
        header = ("stage", "batches", "in", "out", "dropped", "seconds")
        rows: List[List[str]] = [list(header)]
        for m in self._stages:
            rows.append([m.name, str(m.batches), str(m.items_in),
                         str(m.items_out), str(m.dropped),
                         "{:.4f}".format(m.seconds)])
        widths = [max(len(row[i]) for row in rows)
                  for i in range(len(header))]
        lines = ["  ".join(cell.ljust(widths[i])
                           for i, cell in enumerate(row)).rstrip()
                 for row in rows]
        detail: List[str] = []
        for m in self._stages:
            notes = dict(m.drops)
            notes.update(m.counters)
            if notes:
                detail.append("  {}: {}".format(m.name, ", ".join(
                    "{}={}".format(k, v)
                    for k, v in sorted(notes.items()))))
        if detail:
            lines.append("")
            lines.extend(detail)
        return "\n".join(lines)
