"""The built-in stage catalog.

Builder stages (``clean`` → ``segment`` → ``trace`` → ``annotate``)
are the four natural phases of :class:`~repro.core.builder
.TrajectoryBuilder` exposed as composable pipeline stages — they reuse
the builder's primitives, so the facade and the engine cannot drift
apart.  Storage and mining stages turn the store and the sequential
miners into sinks/transforms, so one pipeline covers the paper's whole
ingest → build → store → mine chain.

Every stage here registers itself in :mod:`repro.pipeline.registry`
under the name given by its ``name`` attribute.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.builder import (
    CleaningReport,
    DetectionRecord,
    TrajectoryBuilder,
)
from repro.pipeline.cache import fingerprint_of
from repro.pipeline.engine import Stage
from repro.pipeline.registry import register_stage
from repro.storage.store import TrajectoryStore


# ----------------------------------------------------------------------
# generic building blocks
# ----------------------------------------------------------------------
class MapStage(Stage):
    """Apply a function to every item (stateless, streaming).

    Declared ``parallel_safe``: the mapped function must be a pure
    per-item function for the parallel executor to be used.
    """

    name = "map"
    parallel_safe = True

    def __init__(self, fn: Callable[[Any], Any],
                 name: Optional[str] = None) -> None:
        if name is not None:
            self.name = name
        super().__init__()
        self.fn = fn

    def process(self, batch: Sequence[Any]) -> List[Any]:
        return [self.fn(item) for item in batch]


class FilterStage(Stage):
    """Keep items satisfying a predicate (stateless, streaming).

    Declared ``parallel_safe``: the predicate must be pure for the
    parallel executor to be used.
    """

    name = "filter"
    parallel_safe = True

    def __init__(self, predicate: Callable[[Any], bool],
                 name: Optional[str] = None,
                 drop_reason: str = "predicate") -> None:
        if name is not None:
            self.name = name
        super().__init__()
        self.predicate = predicate
        self.drop_reason = drop_reason

    def process(self, batch: Sequence[Any]) -> List[Any]:
        kept = [item for item in batch if self.predicate(item)]
        dropped = len(batch) - len(kept)
        if dropped:
            self.metrics.drop(self.drop_reason, dropped)
        return kept


@register_stage("collect")
class CollectStage(Stage):
    """Pass-through sink that keeps every item in :attr:`items`."""

    name = "collect"

    def __init__(self) -> None:
        super().__init__()
        self.items: List[Any] = []

    def process(self, batch: Sequence[Any]) -> List[Any]:
        self.items.extend(batch)
        return list(batch)


# ----------------------------------------------------------------------
# builder stages (clean → segment → trace → annotate)
# ----------------------------------------------------------------------
@register_stage("clean")
class CleanStage(Stage):
    """Stage 1 — drop error detections (zero/negative duration,
    unknown states), counting every drop reason.

    Stateless and order-preserving; overlap repair needs per-object
    time order and therefore lives in :class:`SegmentStage`.
    """

    name = "clean"
    parallel_safe = True

    def __init__(self, builder: TrajectoryBuilder) -> None:
        super().__init__()
        self.builder = builder

    def config_fingerprint(self) -> str:
        return fingerprint_of("clean", self.builder.config_fingerprint())

    def process(self, batch: Sequence[DetectionRecord]
                ) -> List[DetectionRecord]:
        kept: List[DetectionRecord] = []
        classify = self.builder.classify_record
        for record in batch:
            reason = classify(record)
            if reason is None:
                kept.append(record)
            else:
                self.metrics.drop(reason)
        return kept


@register_stage("segment")
class SegmentStage(Stage):
    """Stage 2 — repair overlaps and group records into visits.

    Emits one item per visit (a list of records).  Two modes:

    * **exact** (default): buffers all cleaned records and flushes at
      end of stream with exactly the legacy semantics — global
      ``(mo, t_start, t_end)`` sort, cross-visit overlap repair per
      moving object, visits ordered by ``(mo, t_start)``.  Output is
      bit-identical to ``TrajectoryBuilder.clean`` + ``split_visits``;
      memory is O(corpus) in this stage only.
    * **streaming**: assumes records arrive *contiguously* per
      ``(mo_id, visit_id)`` key (as the Louvre generator and CSV dumps
      of it produce them — batch boundaries may still split a visit
      anywhere).  A visit is flushed as soon as a record with a
      different key arrives, so memory is O(longest visit) and visits
      come out in stream order.  Overlap repair then only sees one
      group at a time.
    """

    name = "segment"

    def __init__(self, builder: TrajectoryBuilder,
                 streaming: bool = False) -> None:
        super().__init__()
        self.builder = builder
        self.streaming = streaming
        self._buffer: List[DetectionRecord] = []
        self._open_key: Optional[Tuple[str, Optional[str]]] = None
        self._open: List[DetectionRecord] = []

    def config_fingerprint(self) -> str:
        return fingerprint_of("segment",
                              self.builder.config_fingerprint(),
                              self.streaming)

    def process(self, batch: Sequence[DetectionRecord]
                ) -> List[List[DetectionRecord]]:
        if not self.streaming:
            self._buffer.extend(batch)
            return []
        visits: List[List[DetectionRecord]] = []
        for record in batch:
            key = (record.mo_id, record.visit_id)
            if self._open and key != self._open_key:
                visits.extend(self._flush_open())
            self._open_key = key
            self._open.append(record)
        return visits

    def finish(self) -> List[List[DetectionRecord]]:
        if self.streaming:
            return self._flush_open()
        records, self._buffer = self._buffer, []
        records.sort(key=lambda r: (r.mo_id, r.t_start, r.t_end))
        records = self._repair(records)
        return self.builder.split_visits(records)

    def _flush_open(self) -> List[List[DetectionRecord]]:
        group, self._open = self._open, []
        self._open_key = None
        if not group:
            return []
        group.sort(key=lambda r: (r.t_start, r.t_end))
        group = self._repair(group)
        if not group:
            return []
        if group[0].visit_id is not None:
            return [group]
        return self.builder.split_visits(group)

    def _repair(self, records: List[DetectionRecord]
                ) -> List[DetectionRecord]:
        """Overlap repair via the builder, mirrored into metrics."""
        report = CleaningReport()
        repaired = self.builder._resolve_overlaps(records, report)
        if report.dropped_contained:
            self.metrics.drop("overlap_contained",
                              report.dropped_contained)
        if report.clipped_overlaps:
            self.metrics.count("overlap_clipped",
                               report.clipped_overlaps)
        return repaired


@register_stage("trace")
class TraceConstructStage(Stage):
    """Stage 3 — resolve transitions and build each visit's trace."""

    name = "trace"
    parallel_safe = True

    def __init__(self, builder: TrajectoryBuilder) -> None:
        super().__init__()
        self.builder = builder

    def config_fingerprint(self) -> str:
        return fingerprint_of("trace", self.builder.config_fingerprint())

    def process(self, batch: Sequence[Sequence[DetectionRecord]]
                ) -> List[Any]:
        drafts = []
        for visit in batch:
            draft = self.builder.construct_trace(visit)
            self.metrics.count("entries", len(draft.trace))
            if draft.unobserved_transitions:
                self.metrics.count("unobserved_transitions",
                                   draft.unobserved_transitions)
            drafts.append(draft)
        return drafts


@register_stage("annotate")
class AnnotateStage(Stage):
    """Stage 4 — attach ``A_traj``, completing each trajectory."""

    name = "annotate"
    parallel_safe = True

    def __init__(self, builder: TrajectoryBuilder) -> None:
        super().__init__()
        self.builder = builder

    def config_fingerprint(self) -> str:
        return fingerprint_of("annotate",
                              self.builder.config_fingerprint())

    def process(self, batch: Sequence[Any]) -> List[Any]:
        return [self.builder.annotate(draft) for draft in batch]


# ----------------------------------------------------------------------
# storage stages
# ----------------------------------------------------------------------
@register_stage("store")
class StoreSinkStage(Stage):
    """Bulk-insert trajectories into a :class:`TrajectoryStore`.

    Uses :meth:`TrajectoryStore.extend`, so secondary indexes update
    incrementally and the interval index is touched once per batch.
    Passes the batch through unchanged, so mining stages can follow.
    """

    name = "store"

    def __init__(self, store: Optional[TrajectoryStore] = None) -> None:
        super().__init__()
        self.store = store if store is not None else TrajectoryStore()

    def process(self, batch: Sequence[Any]) -> List[Any]:
        self.store.extend(batch)
        return list(batch)


@register_stage("jsonl-sink")
class JsonlSinkStage(Stage):
    """Append trajectories to a JSON-lines archive, streaming.

    The file is opened on first use and closed by the flush, so a
    pipeline run is also a well-scoped writer.  Passes the batch
    through unchanged.
    """

    name = "jsonl-sink"

    def __init__(self, path: str) -> None:
        super().__init__()
        self.path = path
        self._handle = None
        self.written = 0

    def process(self, batch: Sequence[Any]) -> List[Any]:
        import json

        if self._handle is None:
            self._handle = open(self.path, "w", encoding="utf-8")
        for trajectory in batch:
            self._handle.write(json.dumps(trajectory.to_dict()))
            self._handle.write("\n")
            self.written += 1
        return list(batch)

    def finish(self) -> List[Any]:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        return []


# ----------------------------------------------------------------------
# mining stages
# ----------------------------------------------------------------------
@register_stage("state-sequences")
class StateSequenceStage(Stage):
    """Trajectory → its distinct symbolic state sequence."""

    name = "state-sequences"
    parallel_safe = True

    def config_fingerprint(self) -> str:
        return fingerprint_of("state-sequences")

    def process(self, batch: Sequence[Any]) -> List[List[str]]:
        return [t.distinct_state_sequence() for t in batch]


@register_stage("prefixspan")
class PrefixSpanStage(Stage):
    """Accumulate state sequences and mine them at end of stream.

    Sequential pattern mining needs corpus-wide support counts, so
    this is a barrier sink: it buffers the (small, symbolic)
    sequences and emits the mined patterns from its flush; they are
    also kept on :attr:`patterns`.

    Args:
        min_support: absolute count when >= 1, else a fraction of the
            sequence count resolved at flush time (floored at 2).
        max_length: longest pattern to explore.
    """

    name = "prefixspan"

    def __init__(self, min_support: float = 0.05,
                 max_length: int = 4) -> None:
        super().__init__()
        self.min_support = min_support
        self.max_length = max_length
        self.patterns: List[Any] = []
        self._sequences: List[List[str]] = []

    def process(self, batch: Sequence[List[str]]) -> List[Any]:
        self._sequences.extend(batch)
        return []

    def finish(self) -> List[Any]:
        from repro.mining.prefixspan import prefixspan

        sequences, self._sequences = self._sequences, []
        if not sequences:
            return []
        if self.min_support >= 1:
            support = int(self.min_support)
        else:
            support = max(2, int(len(sequences) * self.min_support))
        self.metrics.count("min_support", support)
        self.patterns = prefixspan(sequences, support, self.max_length)
        return list(self.patterns)
