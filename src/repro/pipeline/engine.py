"""The streaming pipeline engine.

A :class:`Pipeline` is an ordered chain of :class:`Stage` objects.  The
executor pulls items from any iterable source, chunks them into
batches of a configurable size and pushes each batch through every
stage in order, so peak memory stays proportional to the batch size
(plus whatever state individual stages choose to hold) instead of the
corpus size.  When the source is exhausted each stage is *flushed* in
order — anything a stateful stage still buffers cascades through the
stages downstream of it.

Stages transform batches of items and may change the item type along
the chain (detection records → visits → trace drafts → trajectories →
patterns); the engine is agnostic to what flows through it.  Every run
produces a fresh :class:`~repro.pipeline.metrics.PipelineMetrics` with
per-stage items in/out, drop reasons and wall time.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Iterable, Iterator, List, Optional, Sequence

from repro.pipeline.metrics import PipelineMetrics, StageMetrics


class Stage:
    """One typed transformation step of a pipeline.

    Subclasses override :meth:`process` (and :meth:`finish` when they
    buffer state across batches).  During a run the executor attaches a
    :class:`~repro.pipeline.metrics.StageMetrics` as ``self.metrics``;
    stages report discarded items via ``self.metrics.drop(reason)`` and
    domain counters via ``self.metrics.count(key)``.

    A stage instance carries run state, so one instance belongs to one
    pipeline run at a time.
    """

    #: Registry/display name; subclasses override.
    name: str = "stage"

    def __init__(self) -> None:
        self.metrics = StageMetrics(self.name)

    def process(self, batch: Sequence[Any]) -> List[Any]:
        """Transform one batch; returns the items to pass downstream."""
        return list(batch)

    def finish(self) -> List[Any]:
        """Flush buffered state at end of stream (default: nothing)."""
        return []


class PipelineError(RuntimeError):
    """A pipeline could not be assembled or executed."""


class Pipeline:
    """A composed chain of stages with a streaming batch executor.

    Args:
        stages: the stage instances, in processing order.
        batch_size: how many source items form one batch.

    Raises:
        PipelineError: for an empty stage list or a bad batch size.
    """

    def __init__(self, stages: Sequence[Stage],
                 batch_size: int = 512) -> None:
        if not stages:
            raise PipelineError("a pipeline needs at least one stage")
        if batch_size < 1:
            raise PipelineError(
                "batch_size must be >= 1, got {}".format(batch_size))
        self.stages: List[Stage] = list(stages)
        self.batch_size = batch_size
        self._metrics: Optional[PipelineMetrics] = None

    # ------------------------------------------------------------------
    # composition
    # ------------------------------------------------------------------
    def then(self, stage: Stage) -> "Pipeline":
        """Append a stage (fluent composition); returns ``self``."""
        self.stages.append(stage)
        return self

    @property
    def metrics(self) -> PipelineMetrics:
        """Metrics of the most recent run.

        Raises:
            PipelineError: before the first run.
        """
        if self._metrics is None:
            raise PipelineError("pipeline has not been run yet")
        return self._metrics

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_iter(self, source: Iterable[Any]) -> Iterator[List[Any]]:
        """Stream ``source`` through the pipeline, yielding output batches.

        Peak engine memory is O(batch_size) plus per-stage state; the
        caller decides whether to materialize the yielded batches.
        Metrics become available on :attr:`metrics` once the iterator
        is exhausted (they are complete only after the final flush).
        """
        per_stage = [StageMetrics(stage.name) for stage in self.stages]
        for stage, metrics in zip(self.stages, per_stage):
            stage.metrics = metrics
        self._metrics = PipelineMetrics(per_stage)

        iterator = iter(source)
        while True:
            batch = list(itertools.islice(iterator, self.batch_size))
            if not batch:
                break
            out = self._push(batch, 0)
            if out:
                yield out
        # End of stream: flush each stage in order; whatever it still
        # buffered flows through the stages after it.
        for index, stage in enumerate(self.stages):
            started = time.perf_counter()
            tail = stage.finish()
            stage.metrics.seconds += time.perf_counter() - started
            if tail:
                stage.metrics.batches += 1
                stage.metrics.items_out += len(tail)
                out = self._push(tail, index + 1)
                if out:
                    yield out

    def run(self, source: Iterable[Any],
            collect: bool = True) -> List[Any]:
        """Run to completion; returns the last stage's output.

        Args:
            source: any iterable of input items.
            collect: when False the final output is discarded as it is
                produced (sinks keep what matters), so memory stays
                bounded by the batch size.
        """
        output: List[Any] = []
        for batch in self.run_iter(source):
            if collect:
                output.extend(batch)
        return output

    def _push(self, batch: List[Any], start: int) -> List[Any]:
        """Push one batch through ``stages[start:]``."""
        for stage in self.stages[start:]:
            metrics = stage.metrics
            metrics.batches += 1
            metrics.items_in += len(batch)
            started = time.perf_counter()
            batch = stage.process(batch)
            metrics.seconds += time.perf_counter() - started
            metrics.items_out += len(batch)
            if not batch:
                break
        return batch
