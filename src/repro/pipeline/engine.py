"""The streaming pipeline engine.

A :class:`Pipeline` is an ordered chain of :class:`Stage` objects.  The
executor pulls items from any iterable source, chunks them into
batches of a configurable size and pushes each batch through every
stage in order, so peak memory stays proportional to the batch size
(plus whatever state individual stages choose to hold) instead of the
corpus size.  When the source is exhausted each stage is *flushed* in
order — anything a stateful stage still buffers cascades through the
stages downstream of it.

Stages transform batches of items and may change the item type along
the chain (detection records → visits → trace drafts → trajectories →
patterns); the engine is agnostic to what flows through it.  Every run
produces a fresh :class:`~repro.pipeline.metrics.PipelineMetrics` with
per-stage items in/out, drop reasons and wall time.

Two optional executor features sit behind the same API:

* **Parallel batches** (``workers=N``) — stages declare whether they
  are pure per-batch functions via :attr:`Stage.parallel_safe`; the
  engine partitions the chain into maximal parallel-safe *segments*
  and runs their batches on a ``concurrent.futures`` pool (``executor=
  "thread"`` or ``"process"``) with an **ordered merge**, so outputs
  and metric counts are identical to the serial engine.  Stateful
  segments (segmenter, sinks, miners) always run serially in the main
  thread, in chain order.
* **Inter-stage caching** (``cache=StageCache()``) — when the source
  carries a content ``fingerprint`` and a prefix of the chain is
  config-fingerprintable, the boundary output of that prefix is
  memoized so repeated runs skip the unchanged prefix entirely (see
  :mod:`repro.pipeline.cache`).
"""

from __future__ import annotations

import copy
import itertools
import pickle
import threading
import time
from collections import deque
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.pipeline.metrics import PipelineMetrics, StageMetrics

#: The supported pool kinds for ``Pipeline(workers=...)``.
EXECUTORS = ("thread", "process")

#: Thread-local StageMetrics overrides used by parallel tasks, keyed by
#: ``id(stage)``.  A stage instance is shared between worker threads,
#: so each task routes ``stage.metrics`` to its own private metrics
#: and the engine merges them back in submission order.
_TASK_METRICS = threading.local()


class Stage:
    """One typed transformation step of a pipeline.

    Subclasses override :meth:`process` (and :meth:`finish` when they
    buffer state across batches).  During a run the executor attaches a
    :class:`~repro.pipeline.metrics.StageMetrics` as ``self.metrics``;
    stages report discarded items via ``self.metrics.drop(reason)`` and
    domain counters via ``self.metrics.count(key)``.

    A stage instance carries run state, so one instance belongs to one
    pipeline run at a time.
    """

    #: Registry/display name; subclasses override.
    name: str = "stage"

    #: Declare ``process`` a pure function of its batch: no state
    #: shared across batches, no ordering-sensitive side effects, and
    #: metrics recorded only through ``self.metrics``.  Only then may
    #: the parallel executor run different batches of this stage
    #: concurrently.  ``finish`` must return ``[]`` for such stages.
    parallel_safe: bool = False

    def __init__(self) -> None:
        self._metrics = StageMetrics(self.name)

    @property
    def metrics(self) -> StageMetrics:
        overrides = getattr(_TASK_METRICS, "overrides", None)
        if overrides is not None:
            override = overrides.get(id(self))
            if override is not None:
                return override
        return self._metrics

    @metrics.setter
    def metrics(self, value: StageMetrics) -> None:
        self._metrics = value

    def process(self, batch: Sequence[Any]) -> List[Any]:
        """Transform one batch; returns the items to pass downstream."""
        return list(batch)

    def finish(self) -> List[Any]:
        """Flush buffered state at end of stream (default: nothing)."""
        return []

    def config_fingerprint(self) -> Optional[str]:
        """A stable digest of the stage's configuration, or ``None``.

        Returning a string declares the stage *cache-safe*: given the
        same source and the same fingerprint, the stage (re)produces
        the same output and may be skipped by replaying memoized
        results.  Stages with side effects (sinks) or unhashable
        configuration return ``None`` (the default), which ends the
        cacheable prefix of the chain.
        """
        return None


class PipelineError(RuntimeError):
    """A pipeline could not be assembled or executed."""


def _run_segment(stages: Sequence[Stage],
                 metrics: Sequence[StageMetrics],
                 batch: List[Any], timing: bool) -> List[Any]:
    """Push one batch through a stage segment using explicit metrics."""
    for stage, stage_metrics in zip(stages, metrics):
        stage_metrics.batches += 1
        stage_metrics.items_in += len(batch)
        if timing:
            started = time.perf_counter()
            batch = stage.process(batch)
            stage_metrics.seconds += time.perf_counter() - started
        else:
            batch = stage.process(batch)
        stage_metrics.items_out += len(batch)
        if not batch:
            break
    return batch


def _thread_segment_task(stages: Sequence[Stage], batch: List[Any],
                         timing: bool
                         ) -> Tuple[List[Any], List[StageMetrics]]:
    """Worker body for thread pools: private metrics per task."""
    task_metrics = [StageMetrics(stage.name) for stage in stages]
    overrides = {id(stage): m for stage, m in zip(stages, task_metrics)}
    previous = getattr(_TASK_METRICS, "overrides", None)
    _TASK_METRICS.overrides = overrides
    try:
        out = _run_segment(stages, task_metrics, batch, timing)
    finally:
        _TASK_METRICS.overrides = previous
    return out, task_metrics


#: Per-process copy of the pipeline's parallel segments, installed by
#: the pool initializer so stages are pickled once per worker instead
#: of once per task.
_WORKER_SEGMENTS: Dict[Tuple[int, int], List[Stage]] = {}


def _init_process_worker(payload: bytes) -> None:
    global _WORKER_SEGMENTS
    _WORKER_SEGMENTS = pickle.loads(payload)


def _process_segment_task(key: Tuple[int, int], batch: List[Any],
                          timing: bool
                          ) -> Tuple[List[Any], List[StageMetrics]]:
    """Worker body for process pools: stages live in worker globals."""
    stages = _WORKER_SEGMENTS[key]
    task_metrics = [StageMetrics(stage.name) for stage in stages]
    # Worker processes run tasks one at a time; direct assignment on
    # the worker's private stage copies is safe.
    for stage, stage_metrics in zip(stages, task_metrics):
        stage.metrics = stage_metrics
    out = _run_segment(stages, task_metrics, batch, timing)
    return out, task_metrics


class Pipeline:
    """A composed chain of stages with a streaming batch executor.

    Args:
        stages: the stage instances, in processing order.
        batch_size: how many source items form one batch.
        workers: pool size for parallel-safe segments; ``0`` or ``1``
            executes everything serially (the default).
        executor: ``"thread"`` or ``"process"`` — the pool kind used
            for parallel-safe segments.  Process pools require the
            segment stages and the items crossing them to be
            picklable.
        timing: record per-batch wall time in the metrics.  Disabling
            it removes two clock reads per stage per batch from the
            hot path; item/drop accounting is kept either way.
        cache: a :class:`~repro.pipeline.cache.StageCache` memoizing
            the output of the chain's cache-safe prefix per source
            fingerprint, or ``None`` (the default) for no caching.

    Raises:
        PipelineError: for an empty stage list, a bad batch size, a
            negative worker count or an unknown executor kind.
    """

    def __init__(self, stages: Sequence[Stage],
                 batch_size: int = 512,
                 workers: int = 0,
                 executor: str = "thread",
                 timing: bool = True,
                 cache: Optional["StageCache"] = None) -> None:
        if not stages:
            raise PipelineError("a pipeline needs at least one stage")
        if batch_size < 1:
            raise PipelineError(
                "batch_size must be >= 1, got {}".format(batch_size))
        if workers is None:
            workers = 0
        if workers < 0:
            raise PipelineError(
                "workers must be >= 0, got {}".format(workers))
        if executor not in EXECUTORS:
            raise PipelineError(
                "executor must be one of {}, got {!r}".format(
                    "/".join(EXECUTORS), executor))
        self.stages: List[Stage] = list(stages)
        self.batch_size = batch_size
        self.workers = int(workers)
        self.executor = executor
        self.timing = timing
        self.cache = cache
        self._metrics: Optional[PipelineMetrics] = None

    # ------------------------------------------------------------------
    # composition
    # ------------------------------------------------------------------
    def then(self, stage: Stage) -> "Pipeline":
        """Append a stage (fluent composition); returns ``self``."""
        self.stages.append(stage)
        return self

    @property
    def metrics(self) -> PipelineMetrics:
        """Metrics of the most recent run.

        Raises:
            PipelineError: before the first run.
        """
        if self._metrics is None:
            raise PipelineError("pipeline has not been run yet")
        return self._metrics

    def segments(self) -> List[Tuple[int, int, bool]]:
        """The chain partitioned into maximal same-safety runs.

        Returns ``(start, end, parallel_safe)`` index triples; with
        ``workers <= 1`` the whole chain is one serial segment.
        """
        return self._segments(0, len(self.stages))

    def cacheable_depth(self) -> int:
        """Length of the longest config-fingerprintable chain prefix."""
        depth = 0
        for stage in self.stages:
            if stage.config_fingerprint() is None:
                break
            depth += 1
        return depth

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_iter(self, source: Iterable[Any],
                 fingerprint: Optional[str] = None
                 ) -> Iterator[List[Any]]:
        """Stream ``source`` through the pipeline, yielding output batches.

        Peak engine memory is O(batch_size) plus per-stage state (the
        parallel executor keeps at most ``~2×workers`` batches in
        flight); the caller decides whether to materialize the yielded
        batches.  Metrics become available on :attr:`metrics` once the
        iterator is exhausted (they are complete only after the final
        flush).

        Args:
            source: any iterable of input items.
            fingerprint: content fingerprint of the source for the
                stage cache; defaults to ``source.fingerprint`` when
                the source carries one (see
                :mod:`repro.pipeline.sources`).
        """
        per_stage = [StageMetrics(stage.name) for stage in self.stages]
        for stage, stage_metrics in zip(self.stages, per_stage):
            stage.metrics = stage_metrics
        self._metrics = PipelineMetrics(per_stage)

        if fingerprint is None:
            fingerprint = getattr(source, "fingerprint", None)

        start = 0
        stream: Optional[Iterator[List[Any]]] = None
        record_upto = 0
        prefix_keys: Optional[Tuple[Tuple[str, str], ...]] = None
        if self.cache is not None and fingerprint is not None:
            depth = self.cacheable_depth()
            if depth:
                prefix_keys = tuple(
                    (stage.name, stage.config_fingerprint())
                    for stage in self.stages[:depth])
                hit = self.cache.lookup(fingerprint, prefix_keys)
                if hit is not None:
                    matched, batches, cached_metrics = hit
                    for target, cached in zip(per_stage[:matched],
                                              cached_metrics):
                        target.merge_from(cached)
                    # Shallow-copy each batch so downstream stages can
                    # consume the lists; the items themselves are
                    # shared with the cache and must stay immutable.
                    stream = iter([list(batch) for batch in batches])
                    start = matched
                else:
                    matched = 0
                if matched < depth:
                    record_upto = depth
        if stream is None:
            stream = self._batches(iter(source))

        pools: Dict[str, Any] = {}
        try:
            end = len(self.stages)
            if record_upto > start:
                recorded: List[List[Any]] = []
                boundary = self._compose(stream, start, record_upto,
                                         pools)
                suffix = self._compose(
                    self._recording(boundary, recorded),
                    record_upto, end, pools)
                for out in suffix:
                    yield out
                assert prefix_keys is not None
                self.cache.store(
                    fingerprint, prefix_keys, recorded,
                    [copy.deepcopy(m)
                     for m in per_stage[:record_upto]])
            else:
                for out in self._compose(stream, start, end, pools):
                    yield out
        finally:
            pool = pools.get("pool")
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)

    def run(self, source: Iterable[Any],
            collect: bool = True,
            fingerprint: Optional[str] = None) -> List[Any]:
        """Run to completion; returns the last stage's output.

        Args:
            source: any iterable of input items.
            collect: when False the final output is discarded as it is
                produced (sinks keep what matters), so memory stays
                bounded by the batch size.
            fingerprint: see :meth:`run_iter`.
        """
        output: List[Any] = []
        for batch in self.run_iter(source, fingerprint=fingerprint):
            if collect:
                output.extend(batch)
        return output

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _batches(self, iterator: Iterator[Any]
                 ) -> Iterator[List[Any]]:
        while True:
            batch = list(itertools.islice(iterator, self.batch_size))
            if not batch:
                return
            yield batch

    @staticmethod
    def _recording(stream: Iterator[List[Any]],
                   into: List[List[Any]]) -> Iterator[List[Any]]:
        for batch in stream:
            into.append(list(batch))
            yield batch

    def _segments(self, start: int, end: int
                  ) -> List[Tuple[int, int, bool]]:
        if self.workers <= 1:
            return [(start, end, False)] if start < end else []
        segments: List[Tuple[int, int, bool]] = []
        index = start
        while index < end:
            safe = self.stages[index].parallel_safe
            stop = index
            while stop < end and self.stages[stop].parallel_safe == safe:
                stop += 1
            segments.append((index, stop, safe))
            index = stop
        return segments

    def _compose(self, stream: Iterator[List[Any]], start: int,
                 end: int, pools: Dict[str, Any]
                 ) -> Iterator[List[Any]]:
        """Chain segment appliers over ``stages[start:end]``.

        Each applier consumes the one upstream of it and flushes its
        own stages once the upstream is exhausted, which reproduces
        the serial engine's event order exactly: a stage's flush tail
        passes through every downstream stage before the next stage
        flushes.
        """
        generator = stream
        for seg_start, seg_end, safe in self._segments(start, end):
            if safe:
                # Register before any pool exists: the process pool's
                # initializer payload covers exactly the parallel
                # segments composed for this run (cache splits shift
                # segment boundaries, so they cannot be derived from
                # the full chain).
                pools.setdefault("segments", []).append(
                    (seg_start, seg_end))
                generator = self._apply_parallel(generator, seg_start,
                                                 seg_end, pools)
            else:
                generator = self._apply_serial(generator, seg_start,
                                               seg_end)
        return generator

    def _apply_serial(self, stream: Iterator[List[Any]], start: int,
                      end: int) -> Iterator[List[Any]]:
        for batch in stream:
            out = self._push_range(batch, start, end)
            if out:
                yield out
        for out in self._flush_range(start, end):
            yield out

    def _apply_parallel(self, stream: Iterator[List[Any]], start: int,
                        end: int, pools: Dict[str, Any]
                        ) -> Iterator[List[Any]]:
        """Run a parallel-safe segment's batches on the pool.

        Futures are consumed strictly in submission order (a bounded
        sliding window), so outputs, metric counts and drop-reason
        insertion order are identical to serial execution.
        """
        pool = self._pool(pools)
        stages = self.stages[start:end]
        timing = self.timing
        in_flight: deque = deque()
        limit = max(2, self.workers * 2)
        if self.executor == "process":
            key = (start, end)

            def submit(batch: List[Any]):
                return pool.submit(_process_segment_task, key, batch,
                                   timing)
        else:
            def submit(batch: List[Any]):
                return pool.submit(_thread_segment_task, stages, batch,
                                   timing)

        for batch in stream:
            in_flight.append(submit(batch))
            if len(in_flight) >= limit:
                out = self._merge_task(in_flight.popleft(), start, end)
                if out:
                    yield out
        while in_flight:
            out = self._merge_task(in_flight.popleft(), start, end)
            if out:
                yield out
        # Parallel-safe stages hold no cross-batch state, but honor
        # the protocol anyway so a mis-flagged stage still flushes.
        for out in self._flush_range(start, end):
            yield out

    def _merge_task(self, future: Any, start: int,
                    end: int) -> List[Any]:
        out, task_metrics = future.result()
        for stage, merged in zip(self.stages[start:end], task_metrics):
            stage.metrics.merge_from(merged)
        return out

    def _pool(self, pools: Dict[str, Any]):
        pool = pools.get("pool")
        if pool is None:
            import concurrent.futures

            if self.executor == "process":
                payload = pickle.dumps({
                    (seg_start, seg_end): self.stages[seg_start:seg_end]
                    for seg_start, seg_end
                    in pools.get("segments", ())})
                pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_init_process_worker,
                    initargs=(payload,))
            else:
                pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-pipeline")
            pools["pool"] = pool
        return pool

    def _push_range(self, batch: List[Any], start: int,
                    end: int) -> List[Any]:
        """Push one batch through ``stages[start:end]`` serially."""
        timing = self.timing
        for index in range(start, end):
            stage = self.stages[index]
            stage_metrics = stage.metrics
            stage_metrics.batches += 1
            stage_metrics.items_in += len(batch)
            if timing:
                started = time.perf_counter()
                batch = stage.process(batch)
                stage_metrics.seconds += time.perf_counter() - started
            else:
                batch = stage.process(batch)
            stage_metrics.items_out += len(batch)
            if not batch:
                break
        return batch

    def _flush_range(self, start: int, end: int
                     ) -> Iterator[List[Any]]:
        """Flush ``stages[start:end]`` in order, cascading tails."""
        for index in range(start, end):
            stage = self.stages[index]
            if self.timing:
                started = time.perf_counter()
                tail = stage.finish()
                stage.metrics.seconds += time.perf_counter() - started
            else:
                tail = stage.finish()
            if tail:
                stage.metrics.batches += 1
                stage.metrics.items_out += len(tail)
                out = self._push_range(tail, index + 1, end)
                if out:
                    yield out
