"""Source iterables feeding detection records into pipelines.

A pipeline source is just an iterable — these helpers wrap the two
record producers the reproduction ships: the synthetic Louvre corpus
generator and the detection-CSV reader.  The CSV source streams row by
row, so a pipeline over a file on disk never materializes the corpus;
the Louvre generator is corpus-global by construction (its
zero-duration injection samples over all visits), so its source
materializes inside the generator and then *emits* visit by visit,
keeping everything downstream O(batch).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.builder import DetectionRecord
from repro.louvre.dataset import DatasetParameters, LouvreDatasetGenerator
from repro.louvre.space import LouvreSpace
from repro.storage.csvio import iter_detrecords_csv


def louvre_source(space: Optional[LouvreSpace] = None,
                  parameters: Optional[DatasetParameters] = None,
                  scale: float = 1.0) -> Iterator[DetectionRecord]:
    """Detection records of the (scaled) synthetic Louvre corpus.

    Records are yielded visit-contiguously, which is exactly the
    contiguity :class:`~repro.pipeline.stages.SegmentStage` streaming
    mode assumes.
    """
    if parameters is None:
        parameters = DatasetParameters() if scale >= 1.0 \
            else DatasetParameters().scaled(scale)
    generator = LouvreDatasetGenerator(space, parameters)
    for visit in generator.generate():
        for record in visit.records:
            yield record


def csv_source(path: str) -> Iterator[DetectionRecord]:
    """Detection records streamed from a detection CSV file."""
    return iter_detrecords_csv(path)
