"""Source iterables feeding detection records into pipelines.

A pipeline source is just an iterable — these helpers wrap the two
record producers the reproduction ships: the synthetic Louvre corpus
generator and the detection-CSV reader.  The CSV source streams row by
row, so a pipeline over a file on disk never materializes the corpus;
the Louvre generator is corpus-global by construction (its
zero-duration injection samples over all visits), so its source
materializes inside the generator and then *emits* visit by visit,
keeping everything downstream O(batch).

Both helpers return a :class:`FingerprintedSource` — a re-iterable
carrying a stable content ``fingerprint`` that the engine's stage
cache keys on (:mod:`repro.pipeline.cache`): the generator is
deterministic given its parameters, and a CSV file is identified by
path, size and mtime.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Iterator, Optional

from repro.core.builder import DetectionRecord
from repro.louvre.dataset import DatasetParameters, LouvreDatasetGenerator
from repro.louvre.space import LouvreSpace
from repro.pipeline.cache import fingerprint_of
from repro.storage.csvio import iter_detrecords_csv


class FingerprintedSource:
    """A re-iterable record source with a content fingerprint.

    Args:
        factory: zero-argument callable producing a fresh iterator of
            records for each pass.
        fingerprint: stable digest of the source's content, or ``None``
            when the content cannot be fingerprinted (disables
            caching for runs over this source).
    """

    def __init__(self, factory: Callable[[], Iterable[DetectionRecord]],
                 fingerprint: Optional[str]) -> None:
        self._factory = factory
        self.fingerprint = fingerprint

    def __iter__(self) -> Iterator[DetectionRecord]:
        return iter(self._factory())


def louvre_source(space: Optional[LouvreSpace] = None,
                  parameters: Optional[DatasetParameters] = None,
                  scale: float = 1.0) -> FingerprintedSource:
    """Detection records of the (scaled) synthetic Louvre corpus.

    Records are yielded visit-contiguously, which is exactly the
    contiguity :class:`~repro.pipeline.stages.SegmentStage` streaming
    mode assumes.  The generator is seeded and deterministic, so the
    source fingerprint is derived from its parameters.
    """
    if parameters is None:
        parameters = DatasetParameters() if scale >= 1.0 \
            else DatasetParameters().scaled(scale)

    def generate() -> Iterator[DetectionRecord]:
        generator = LouvreDatasetGenerator(space, parameters)
        for visit in generator.generate():
            for record in visit.records:
                yield record

    fingerprint = fingerprint_of(
        "louvre",
        type(space).__name__ if space is not None else "LouvreSpace",
        parameters)
    return FingerprintedSource(generate, fingerprint)


def csv_source(path: str) -> FingerprintedSource:
    """Detection records streamed from a detection CSV file.

    The fingerprint identifies the file by absolute path, size and
    mtime; an unreadable path yields no fingerprint (and the usual
    error once the pipeline starts pulling records).
    """
    try:
        stat = os.stat(path)
        fingerprint = fingerprint_of("csv", os.path.abspath(path),
                                     stat.st_size, stat.st_mtime_ns)
    except OSError:
        fingerprint = None
    return FingerprintedSource(lambda: iter_detrecords_csv(path),
                               fingerprint)
