"""Inter-stage result caching for pipeline runs.

Rebuilding the same corpus through the same stage prefix is pure
recomputation: the builder stages are deterministic functions of
(source content, stage configuration).  :class:`StageCache` memoizes
the *boundary output* of a chain's cache-safe prefix — the longest run
of stages whose :meth:`~repro.pipeline.engine.Stage.config_fingerprint`
is not ``None`` — keyed on

``(source fingerprint, ((stage name, stage config hash), ...))``

so a repeated :class:`~repro.pipeline.engine.Pipeline` run (or
``Workbench`` build) replays the memoized batches into the remaining
stages instead of re-running the prefix.  A run whose chain *extends*
a cached prefix (same leading keys, more cacheable stages) reuses the
shorter entry and records the longer one.

Cached batches hold the original item objects; consumers must treat
pipeline items as immutable (the builder's trajectories are).  Entries
are evicted LRU beyond ``max_entries`` — every entry holds one
corpus-sized item list, so the bound is deliberately small.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, List, Optional, Sequence, Tuple

from repro.pipeline.metrics import StageMetrics

#: One prefix key: ``(stage name, stage config fingerprint)``.
PrefixKey = Tuple[str, str]


def fingerprint_of(*parts: Any) -> str:
    """A stable hex digest over the ``repr`` of the given parts.

    Convenience for building source and stage-config fingerprints;
    callers are responsible for passing parts whose ``repr`` is
    deterministic (sort sets and dicts first).
    """
    digest = hashlib.sha1()
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()


class StageCache:
    """An LRU memo of stage-prefix outputs, keyed by source + config.

    Thread-safe; one instance may back many pipelines.  ``hits`` /
    ``misses`` counters make cache behavior observable in tests and
    benchmarks.

    Args:
        max_entries: how many prefix outputs to retain (LRU beyond).
    """

    def __init__(self, max_entries: int = 4) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[str, Tuple[PrefixKey, ...]], " \
            "Tuple[List[List[Any]], List[StageMetrics]]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, fingerprint: str,
               keys: Sequence[PrefixKey]
               ) -> Optional[Tuple[int, List[List[Any]],
                                   List[StageMetrics]]]:
        """The longest cached prefix of ``keys`` for this source.

        Returns ``(depth, batches, metrics)`` where ``depth`` is how
        many leading stages the entry covers, or ``None`` on a miss.
        """
        with self._lock:
            for depth in range(len(keys), 0, -1):
                entry_key = (fingerprint, tuple(keys[:depth]))
                entry = self._entries.get(entry_key)
                if entry is not None:
                    self._entries.move_to_end(entry_key)
                    self.hits += 1
                    batches, metrics = entry
                    return depth, batches, metrics
            self.misses += 1
            return None

    def store(self, fingerprint: str, keys: Sequence[PrefixKey],
              batches: List[List[Any]],
              metrics: List[StageMetrics]) -> None:
        """Memoize a prefix's boundary output and its stage metrics."""
        with self._lock:
            entry_key = (fingerprint, tuple(keys))
            self._entries[entry_key] = (batches, metrics)
            self._entries.move_to_end(entry_key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


#: Process-wide cache used when callers opt in without providing their
#: own instance (``Workbench.build(cache=True)``).
DEFAULT_CACHE = StageCache()
