"""The one implementation of every protocol command.

:func:`execute_command` maps a :class:`~repro.service.protocol.Command`
to a :class:`~repro.service.protocol.Response` against a
:class:`~repro.service.registry.SessionRegistry`.  It is the *single*
code path behind both transports: the HTTP server
(:mod:`repro.service.server`) calls it per request, and
:class:`LocalBinding` calls it in-process — which is what
:class:`~repro.api.Workbench` delegates its protocol-expressible
operations to.  Anything this module computes is therefore guaranteed
to serialize identically whether it travelled over a socket or not.

Failures never escape as raw exceptions: they come back as
:class:`~repro.service.protocol.ErrorInfo` with a machine-matchable
code (``unknown_session``, ``bad_cursor``, ...).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.mining.corpus import Corpus
from repro.mining.flow import flow_balances
from repro.mining.prefixspan import SequentialPattern, prefixspan
from repro.mining.sequences import corpus_summary, state_sequences
from repro.mining.similarity import similarity_matrix
from repro.service import protocol as P
from repro.service.registry import (
    BuildJob,
    Session,
    SessionRegistry,
    UnknownJobError,
    UnknownSessionError,
)
from repro.storage.expr import ExprSerializationError
from repro.storage.query import Query
from repro.storage.results import ORDER_KEYS, ResultSet

#: Hard page-size ceiling; RunQuery limits are clamped to it.
MAX_PAGE_SIZE = 1000


class CommandError(Exception):
    """Internal: a handler failure destined to become ``ErrorInfo``."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


# ----------------------------------------------------------------------
# shared corpus-level mining helpers (Workbench uses these too)
# ----------------------------------------------------------------------
def patterns_over(sequences: Sequence[Sequence[str]],
                  min_support: float = 0.05,
                  max_length: int = 4) -> List[SequentialPattern]:
    """PrefixSpan with the service's support convention.

    ``min_support`` is an absolute count when >= 1, else a fraction
    of the corpus (floored at 2).  The one implementation shared by
    the ``MinePatterns`` command and :meth:`Workbench.patterns
    <repro.api.Workbench.patterns>`.
    """
    if not sequences:
        return []
    if min_support >= 1:
        support = int(min_support)
    else:
        support = max(2, int(math.ceil(min_support * len(sequences))))
    return prefixspan(sequences, support, max_length)


def similarity_over(space: Optional[object],
                    sequences: Sequence[Sequence[str]],
                    hierarchy: Optional[object] = None
                    ) -> List[List[float]]:
    """Similarity matrix, hierarchy-aware when the space has one."""
    if hierarchy is None:
        hierarchy = getattr(space, "zone_hierarchy", None)
    return similarity_matrix(hierarchy, sequences)


# ----------------------------------------------------------------------
# per-command handlers
# ----------------------------------------------------------------------
def _session(registry: SessionRegistry, name: str) -> Session:
    try:
        return registry.get(name)
    except UnknownSessionError:
        raise CommandError(
            "unknown_session",
            "no session named {!r}; sessions: {}".format(
                name, ", ".join(registry.names()) or "(none)"))


def _query(session: Session, query: Optional[Dict]) -> Query:
    store = session.workbench.store
    if query is None:
        return Query(store)
    try:
        return Query.from_dict(store, query)
    except (KeyError, TypeError, ValueError) as error:
        raise CommandError(
            "bad_request", "unparseable query: {}".format(error))


def _corpus(session: Session, query: Optional[Dict]) -> Corpus:
    if query is None:
        return session.workbench.store
    return _query(session, query).execute()


def _job_info(job: BuildJob) -> P.JobInfo:
    return P.JobInfo(job_id=job.job_id, session=job.session,
                     state=job.state.value, error=job.error,
                     metrics=P.JobInfo.metrics_dict(job.metrics))


def _build(registry: SessionRegistry,
           command: P.BuildDataset) -> P.Response:
    try:
        job = registry.build(
            command.session, source=command.source,
            scale=command.scale, path=command.path,
            workers=command.workers, executor=command.executor,
            batch_size=command.batch_size,
            streaming=command.streaming, cache=command.cache,
            wait=command.wait)
    except ValueError as error:
        raise CommandError("bad_request", str(error))
    return _job_info(job)


def _job_status(registry: SessionRegistry,
                command: P.JobStatus) -> P.Response:
    try:
        job = registry.job(command.job_id)
    except UnknownJobError:
        raise CommandError("unknown_job",
                           "no job {!r}".format(command.job_id))
    return _job_info(job)


def _list_sessions(registry: SessionRegistry,
                   command: P.ListSessions) -> P.Response:
    infos = []
    for session in registry.sessions():
        space = session.workbench.space
        infos.append(P.SessionInfo(
            name=session.name,
            trajectories=len(session.workbench.store),
            state=session.state,
            space=type(space).__name__ if space is not None else None))
    return P.SessionList(sessions=infos)


def _drop_session(registry: SessionRegistry,
                  command: P.DropSession) -> P.Response:
    try:
        registry.drop(command.session)
    except UnknownSessionError:
        raise CommandError(
            "unknown_session",
            "no session named {!r}".format(command.session))
    return P.Dropped(session=command.session)


# ----------------------------------------------------------------------
# RunQuery, split into route / execute / merge phases
#
# The *route* phase (validation, page shaping, cursor decoding) and
# the *merge* phase (page assembly, cursor issuing) are pure functions
# of the command, shared verbatim by the single-process path below and
# the shard coordinator (repro.shard.coordinator) — that sharing is
# what makes sharded pages byte-identical, error messages included.
# Only the *execute* phase differs: one store here, a k-way merged
# scatter there.
# ----------------------------------------------------------------------
class PageSpec:
    """The routed shape of one RunQuery page."""

    __slots__ = ("limit", "offset", "order_by", "descending",
                 "fingerprint")

    def __init__(self, limit: int, offset: int,
                 order_by: Optional[str], descending: bool,
                 fingerprint: str) -> None:
        self.limit = limit
        self.offset = offset
        self.order_by = order_by
        self.descending = descending
        self.fingerprint = fingerprint


def route_page(command: P.RunQuery) -> PageSpec:
    """Validate page shaping and resolve the effective ordering.

    Raises:
        CommandError: on an unusable limit/offset/order_by.
    """
    if command.limit < 1:
        raise CommandError("bad_request",
                           "limit must be >= 1, got {}".format(
                               command.limit))
    if command.offset < 0:
        raise CommandError("bad_request", "offset must be >= 0")
    if command.order_by is not None \
            and command.order_by not in ORDER_KEYS:
        raise CommandError(
            "bad_request",
            "unknown order_by {!r}; one of: {}".format(
                command.order_by, ", ".join(sorted(ORDER_KEYS))))
    limit = min(command.limit, MAX_PAGE_SIZE)
    fingerprint = P.page_fingerprint(command.query, command.order_by,
                                     command.descending)
    # ``descending`` without an explicit key means newest-first
    # natural order: honor it as an explicit doc_id sort, never
    # silently ignore it.
    order_by = command.order_by
    if order_by is None and command.descending:
        order_by = "doc_id"
    return PageSpec(limit, command.offset, order_by,
                    command.descending, fingerprint)


def decode_page_cursor(command: P.RunQuery, spec: PageSpec
                       ) -> Tuple[Optional[Tuple], Optional[int]]:
    """Decode and validate a resume cursor against the routed page.

    Returns ``(boundary, last_doc_id)``: a keyset ``(order-key
    value, doc id)`` boundary for explicit orderings, a plain last
    doc id for natural order, both ``None`` without a cursor.

    Raises:
        CommandError: ``bad_cursor`` on any malformed/mismatched
            token.
    """
    if command.cursor is None:
        return None, None
    try:
        token = P.decode_cursor(command.cursor)
    except P.ProtocolError as error:
        raise CommandError("bad_cursor", str(error))
    if token.get("f") != spec.fingerprint:
        raise CommandError(
            "bad_cursor",
            "cursor belongs to a different query/ordering")
    try:
        doc_id = int(token.get("k", -1))
    except (TypeError, ValueError):
        raise CommandError("bad_cursor",
                           "cursor position is not an integer")
    if doc_id < 0:  # cursors are forgeable base64 — validate
        raise CommandError("bad_cursor",
                           "cursor position is negative")
    if spec.order_by is not None:
        # Keyset cursor: (order-key value, doc id) of the last hit
        # served.  The value's JSON type must match what the order
        # key yields — a forged/stale token surfaces as bad_cursor,
        # not as a TypeError mid-sort.
        if "okv" not in token:
            raise CommandError(
                "bad_cursor",
                "cursor carries no keyset boundary for ordered "
                "pagination (offset cursors are no longer "
                "issued)")
        value = token["okv"]
        if not isinstance(value, (str, int, float)) \
                or isinstance(value, bool):
            raise CommandError(
                "bad_cursor", "unorderable cursor boundary")
        return (value, doc_id), None
    return None, doc_id


def assemble_page(window: List, spec: PageSpec
                  ) -> Tuple[List, Optional[str]]:
    """Cut the probed window into a page and its resume cursor.

    ``window`` holds up to ``spec.limit + 1`` hits — a full probe
    means a next page exists and earns a cursor keyed on the last
    served hit.
    """
    page = window[:spec.limit]
    next_cursor: Optional[str] = None
    if len(window) > spec.limit and page:
        last = page[-1]
        if spec.order_by is not None:
            token = {"f": spec.fingerprint,
                     "okv": ORDER_KEYS[spec.order_by](last),
                     "k": last.doc_id}
        else:
            token = {"f": spec.fingerprint, "k": last.doc_id}
        next_cursor = P.encode_cursor(token)
    return page, next_cursor


def _keyset_view(results: ResultSet, order_by: str,
                 descending: bool,
                 boundary: Optional[Tuple]) -> List:
    """Explicitly ordered hits strictly past a keyset boundary.

    The sort key is the composite ``(order-key value, doc_id)`` with
    *both* components following the sort direction, so the boundary —
    the composite key of the last hit served — splits the ordering
    into "already seen" and "still to serve" even when many documents
    share an order-key value.  Documents ingested mid-walk land on
    whichever side their composite key dictates: nothing already
    served repeats, nothing still ahead is skipped.

    Raises:
        TypeError: when the boundary value does not order against
            the key (a forged or stale cursor).
    """
    key_fn = ORDER_KEYS[order_by]
    composite = lambda hit: (key_fn(hit), hit.doc_id)  # noqa: E731
    ordered = sorted(results, key=composite, reverse=descending)
    if boundary is None:
        return ordered
    if descending:
        return [hit for hit in ordered if composite(hit) < boundary]
    return [hit for hit in ordered if composite(hit) > boundary]


def _run_query(registry: SessionRegistry,
               command: P.RunQuery) -> P.Response:
    # -- route: validate shape, resolve ordering, decode the cursor
    session = _session(registry, command.session)
    spec = route_page(command)
    query = _query(session, command.query)
    boundary, last_doc_id = decode_page_cursor(command, spec)

    # -- execute: one probed window from the single local store
    if last_doc_id is not None:
        # Resume below the result-set layer: the plan drops candidate
        # ids <= the boundary *before* fetching/residual-checking, so
        # a full cursor walk costs O(N), not O(N²/page).
        resume_after = last_doc_id
        view = ResultSet(
            lambda: query.plan().iter_results(
                start_after=resume_after))
    elif spec.order_by is not None:
        try:
            hits_past = _keyset_view(query.execute(), spec.order_by,
                                     command.descending, boundary)
        except TypeError:
            raise CommandError(
                "bad_cursor",
                "cursor boundary does not order against this "
                "key")
        view = ResultSet(lambda: iter(hits_past))
        if spec.offset:
            view = view.offset(spec.offset)
    elif spec.offset:
        view = query.execute().offset(spec.offset)
    else:
        view = query.execute()
    # Probe one past the page: a full probe means a next page exists.
    window = view.limit(spec.limit + 1).to_list()

    # -- merge: assemble the page and its resume cursor
    page, next_cursor = assemble_page(window, spec)

    # The total costs a second plan execution when residuals remain,
    # so it is computed once per pagination stream (the cursor-less
    # first page), not per page.
    total = query.count() if command.include_total \
        and command.cursor is None else None
    hits = [P.Hit(doc_id=hit.doc_id, trajectory=hit.trajectory)
            for hit in page]
    return P.QueryPage(hits=hits, total=total,
                       next_cursor=next_cursor)


def _explain(registry: SessionRegistry,
             command: P.Explain) -> P.Response:
    session = _session(registry, command.session)
    return P.Explanation(plan=_query(session, command.query).explain())


def _mine_patterns(registry: SessionRegistry,
                   command: P.MinePatterns) -> P.Response:
    session = _session(registry, command.session)
    sequences = state_sequences(_corpus(session, command.query))
    try:
        patterns = patterns_over(sequences, command.min_support,
                                 command.max_length)
    except ValueError as error:
        raise CommandError("bad_request", str(error))
    return P.PatternList(patterns=patterns)


def _similarity(registry: SessionRegistry,
                command: P.Similarity) -> P.Response:
    session = _session(registry, command.session)
    sequences = state_sequences(_corpus(session, command.query))
    matrix = similarity_over(session.workbench.space, sequences)
    return P.SimilarityMatrix(matrix=matrix)


def _flow(registry: SessionRegistry, command: P.Flow) -> P.Response:
    session = _session(registry, command.session)
    return P.FlowList(
        balances=flow_balances(_corpus(session, command.query)))


def _sequences(registry: SessionRegistry,
               command: P.Sequences) -> P.Response:
    session = _session(registry, command.session)
    return P.SequenceList(
        sequences=state_sequences(_corpus(session, command.query)))


def _summary(registry: SessionRegistry,
             command: P.Summary) -> P.Response:
    session = _session(registry, command.session)
    return P.SummaryStats(
        stats=corpus_summary(_corpus(session, command.query)))


def _ingest_documents(registry: SessionRegistry,
                      command: P.IngestDocuments) -> P.Response:
    from repro.core.trajectory import SemanticTrajectory
    from repro.persist.session import revive_space

    session = registry.create(command.session)
    workbench = session.workbench
    if workbench.space is None and command.space is not None:
        workbench.space = revive_space(command.space)
    try:
        docs = [SemanticTrajectory.from_dict(item)
                for item in command.docs]
    except (KeyError, TypeError, ValueError) as error:
        session.ingest_rejected += len(command.docs)
        raise CommandError(
            "bad_request", "unparseable document: {}".format(error))
    # The build lock serializes against checkpoints, exactly like a
    # pipeline build; the store's write lock covers the extend itself.
    with session.build_lock:
        if docs:
            workbench.store.extend(docs)
        session.ingest_accepted += len(docs)
    return P.Ingested(session=command.session, count=len(docs),
                      total=len(workbench.store))


def _count_patterns(registry: SessionRegistry,
                    command: P.CountPatterns) -> P.Response:
    from repro.mining.prefixspan import pattern_support

    session = _session(registry, command.session)
    sequences = state_sequences(_corpus(session, command.query))
    supports = [pattern_support(sequences, tuple(pattern))
                for pattern in command.patterns]
    return P.PatternSupports(supports=supports,
                             sequences=len(sequences))


def _similarity_block(registry: SessionRegistry,
                      command: P.SimilarityBlock) -> P.Response:
    from repro.mining.similarity import similarity_block

    session = _session(registry, command.session)
    size = len(command.sequences)
    if not 0 <= command.row_start <= command.row_end <= size:
        raise CommandError(
            "bad_request",
            "row block [{}, {}) out of range for {} "
            "sequences".format(command.row_start, command.row_end,
                               size))
    hierarchy = getattr(session.workbench.space, "zone_hierarchy",
                        None)
    rows = similarity_block(hierarchy, command.sequences,
                            command.row_start, command.row_end)
    return P.SimilarityRows(rows=rows)


def _summary_parts(registry: SessionRegistry,
                   command: P.SummaryParts) -> P.Response:
    from repro.mining.corpus import iter_trajectories

    session = _session(registry, command.session)
    visits = detections = transitions = 0
    mo_ids = set()
    max_duration: Optional[float] = None
    min_duration: Optional[float] = None
    for trajectory in iter_trajectories(
            _corpus(session, command.query)):
        visits += 1
        mo_ids.add(trajectory.mo_id)
        detections += len(trajectory.trace)
        transitions += len(trajectory.trace) - 1
        duration = trajectory.duration
        if max_duration is None or duration > max_duration:
            max_duration = duration
        if min_duration is None or duration < min_duration:
            min_duration = duration
    return P.SummaryPartsInfo(
        visits=visits, mo_ids=sorted(mo_ids),
        detections=detections, transitions=transitions,
        max_visit_duration=max_duration,
        min_visit_duration=min_duration)


def _store_stats(registry: SessionRegistry,
                 command: P.StoreStats) -> P.Response:
    session = _session(registry, command.session)
    store = session.workbench.store
    annotations = [[kind.value, value, count]
                   for (kind, value), count
                   in store.annotation_cardinalities().items()]
    annotations.sort(key=lambda item: (item[0], repr(item[1])))
    span = store.time_span()
    return P.StoreStatsInfo(
        doc_count=len(store),
        states=store.state_cardinalities(),
        annotations=annotations,
        mos=store.mo_cardinalities(),
        time_span=None if span is None else list(span))


# ----------------------------------------------------------------------
# live streams (repro.stream) — imported lazily so the service layer
# has no stream dependency until a stream command actually arrives
# ----------------------------------------------------------------------
def _streams(registry: SessionRegistry):
    from repro.stream.manager import stream_manager

    return stream_manager(registry)


def _stream(registry: SessionRegistry, session: str, stream: str):
    from repro.stream.manager import UnknownStreamError

    try:
        return _streams(registry).get(session, stream)
    except UnknownStreamError:
        raise CommandError(
            "unknown_stream",
            "no stream {!r} on session {!r}".format(stream, session))


def _open_stream(registry: SessionRegistry,
                 command: P.OpenStream) -> P.Response:
    if command.checkpoint_every < 1:
        raise CommandError("bad_request",
                           "checkpoint_every must be >= 1")
    if command.max_open_events < 1:
        raise CommandError("bad_request",
                           "max_open_events must be >= 1")
    if command.gap_seconds is not None and command.gap_seconds <= 0:
        raise CommandError("bad_request", "gap_seconds must be > 0")
    stream = _streams(registry).open(
        command.session, command.stream,
        gap_seconds=command.gap_seconds,
        checkpoint_every=command.checkpoint_every,
        max_open_events=command.max_open_events,
        relay=command.relay)
    return P.StreamInfo(session=command.session,
                        stream=command.stream,
                        status=stream.status())


def _append_events(registry: SessionRegistry,
                   command: P.AppendEvents) -> P.Response:
    from repro.persist.format import PersistError
    from repro.stream.manager import StreamOverloadedError
    from repro.stream.segmenter import NO_WATERMARK

    stream = _stream(registry, command.session, command.stream)
    if command.watermark is not None \
            and not isinstance(command.watermark, (int, float)):
        raise CommandError("bad_request",
                           "watermark must be a number")
    try:
        result = stream.append(command.events,
                               watermark=command.watermark)
    except ValueError as error:
        raise CommandError("bad_request", str(error))
    except StreamOverloadedError as error:
        raise CommandError("overloaded", str(error))
    except PersistError as error:
        raise CommandError("persistence", str(error))
    watermark = stream.segmenter.watermark
    return P.EventsAppended(
        session=command.session, stream=command.stream,
        appended=result["appended"],
        episodes_closed=result["episodes_closed"],
        watermark=None if watermark == NO_WATERMARK else watermark,
        open_events=stream.segmenter.open_events,
        seq=result["seq"],
        episodes=result.get("episodes") or [])


def _stream_status(registry: SessionRegistry,
                   command: P.StreamStatus) -> P.Response:
    stream = _stream(registry, command.session, command.stream)
    return P.StreamInfo(session=command.session,
                        stream=command.stream,
                        status=stream.status())


def _close_stream(registry: SessionRegistry,
                  command: P.CloseStream) -> P.Response:
    from repro.persist.format import PersistError
    from repro.stream.manager import UnknownStreamError

    _stream(registry, command.session, command.stream)
    try:
        summary = _streams(registry).close(command.session,
                                           command.stream)
    except UnknownStreamError:
        raise CommandError(
            "unknown_stream",
            "no stream {!r} on session {!r}".format(
                command.stream, command.session))
    except PersistError as error:
        raise CommandError("persistence", str(error))
    return P.StreamClosed(
        session=command.session, stream=command.stream,
        episodes_closed=summary["episodes_closed"],
        episodes_total=summary["episodes_total"],
        events_acked=summary["events_acked"],
        episodes=summary.get("episodes") or [])


def _save_session(registry: SessionRegistry,
                  command: P.SaveSession) -> P.Response:
    import os

    from repro.persist import PersistError

    _session(registry, command.session)  # 404 before 500
    try:
        info = registry.save(command.session)
    except PersistError as error:
        raise CommandError("persistence", str(error))
    return P.SessionSaved(
        session=command.session,
        snapshot=os.path.basename(info.path),
        trajectories=info.doc_count,
        total_bytes=info.total_bytes)


def _restore_session(registry: SessionRegistry,
                     command: P.RestoreSession) -> P.Response:
    from repro.persist import PersistError

    try:
        session = registry.restore(command.session)
    except UnknownSessionError:
        # A name nobody ever created is the client's mistake (404),
        # not a storage failure (500).
        raise CommandError(
            "unknown_session",
            "no session named {!r} in memory or on disk".format(
                command.session))
    except PersistError as error:
        raise CommandError("persistence", str(error))
    space = session.workbench.space
    return P.SessionInfo(
        name=session.name,
        trajectories=len(session.workbench.store),
        state=session.state,
        space=type(space).__name__ if space is not None else None)


_HANDLERS: Dict[Type[P.Command], Callable] = {
    P.BuildDataset: _build,
    P.JobStatus: _job_status,
    P.ListSessions: _list_sessions,
    P.DropSession: _drop_session,
    P.RunQuery: _run_query,
    P.Explain: _explain,
    P.MinePatterns: _mine_patterns,
    P.Similarity: _similarity,
    P.Flow: _flow,
    P.Sequences: _sequences,
    P.Summary: _summary,
    P.IngestDocuments: _ingest_documents,
    P.CountPatterns: _count_patterns,
    P.SimilarityBlock: _similarity_block,
    P.SummaryParts: _summary_parts,
    P.StoreStats: _store_stats,
    P.SaveSession: _save_session,
    P.RestoreSession: _restore_session,
    P.OpenStream: _open_stream,
    P.AppendEvents: _append_events,
    P.StreamStatus: _stream_status,
    P.CloseStream: _close_stream,
}


def execute_command(registry: SessionRegistry,
                    command: P.Command) -> P.Response:
    """Run one command; *expected* failures become ``ErrorInfo``.

    Unexpected exceptions (genuine bugs) propagate with their
    traceback intact — the in-process library path must not swallow
    them.  The transport boundary (:meth:`ServiceServer`'s handler,
    :meth:`LocalBinding.call_json`) converts them to ``internal``
    errors, because a wire server must answer, not crash.
    """
    handler = _HANDLERS.get(type(command))
    if handler is None:
        return P.ErrorInfo(
            code="bad_request",
            message="unhandled command {!r}".format(command.kind))
    if command.deadline_ms is not None and command.deadline_ms <= 0:
        # The propagated budget was already spent in transit; answer
        # fast instead of doing work nobody is waiting for.
        return P.ErrorInfo(
            code="deadline_exceeded",
            message="deadline expired before execution began")
    try:
        return handler(registry, command)
    except CommandError as error:
        return P.ErrorInfo(code=error.code, message=error.message)
    except ExprSerializationError as error:
        return P.ErrorInfo(code="unserializable", message=str(error))
    except P.ProtocolError as error:
        return P.ErrorInfo(code="protocol", message=str(error))


def execute_command_safely(registry: SessionRegistry,
                           command: P.Command) -> P.Response:
    """:func:`execute_command` with the wire-boundary catch-all."""
    try:
        return execute_command(registry, command)
    except Exception as error:  # the service must answer, not crash
        return P.ErrorInfo(
            code="internal",
            message="{}: {}".format(type(error).__name__, error))


def run_command(engine, command: P.Command) -> P.Response:
    """Dispatch a command to whatever engine is behind the service.

    A plain :class:`SessionRegistry` goes through
    :func:`execute_command`; an engine carrying its own
    ``execute_command`` method (the shard coordinator) dispatches
    there.  Every front-end routes through this, so swapping the
    engine never touches a transport.
    """
    runner = getattr(engine, "execute_command", None)
    if runner is not None:
        return runner(command)
    return execute_command(engine, command)


def run_command_safely(engine, command: P.Command) -> P.Response:
    """:func:`run_command` with the wire-boundary catch-all."""
    runner = getattr(engine, "execute_command_safely", None)
    if runner is not None:
        return runner(command)
    return execute_command_safely(engine, command)


class LocalBinding:
    """The service protocol without sockets.

    Wraps an engine — a :class:`SessionRegistry` or a shard
    coordinator — so commands execute in-process through the exact
    code path the HTTP server uses.  :class:`~repro.api.Workbench` is
    sugar over one of these; tests use :meth:`call_json` to prove the
    wire form is byte-identical to the in-process form.
    """

    def __init__(self,
                 registry: Optional[object] = None) -> None:
        self.registry = registry if registry is not None \
            else SessionRegistry()

    def call(self, command: P.Command) -> P.Response:
        """Execute a command; typed response or raised error.

        Expected service failures raise :class:`ServiceError`;
        genuine bugs propagate with their original traceback (this
        is the library path, not a wire boundary).

        Raises:
            ServiceError: when the service answers with ``Error``.
        """
        response = run_command(self.registry, command)
        if isinstance(response, P.ErrorInfo):
            raise P.ServiceError(response.code, response.message)
        return response

    def call_json(self, raw: bytes) -> bytes:
        """Bytes-in/bytes-out variant (the wire path minus HTTP).

        Parses ``raw`` as a command, executes it, and returns the
        response's canonical JSON — errors included, exactly as the
        server would put them on the wire.
        """
        try:
            command = P.command_from_json(raw)
        except P.ProtocolError as error:
            return P.ErrorInfo(code="protocol",
                               message=str(error)).to_json()
        return run_command_safely(self.registry,
                                  command).to_json()
