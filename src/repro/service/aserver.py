"""The asyncio trajectory server: the default HTTP front-end.

The threaded server (:mod:`repro.service.server`) spends most of a
request's wall clock outside the actual work: a TCP handshake and a
fresh handler thread per connection, a line-buffered header parse,
and one ``write``/``read`` syscall pair per phase.  This front-end
replaces all of that with a single-threaded asyncio event loop:

* **keep-alive first** — connections are long-lived; a request costs
  a buffered parse, not a handshake plus a thread;
* **pipelined handling** — each connection runs a reader task that
  parses and dispatches requests back-to-back and a writer task that
  streams the responses out strictly in order, so a client may have
  many requests in flight on one socket and back-to-back requests
  are parsed out of a single ``recv``;
* **a bounded sync bridge** — command execution stays the exact
  synchronous :func:`~repro.service.wire.execute_json` path (byte
  identity with the threaded server and
  :class:`~repro.service.executor.LocalBinding` is by construction),
  run on a bounded ``ThreadPoolExecutor`` so slow commands (mining, a
  cold build) never stall the loop;
* **back-pressure, not collapse** — at most ``max_inflight``
  requests may be executing or queued for the bridge; past that the
  server answers ``503`` with a ``Retry-After`` hint instead of
  growing an unbounded backlog (the counters are visible in
  ``GET /v1/health``);
* **response cache on the loop** — hits on the versioned
  :class:`~repro.service.wire.ResponseCache` are answered inline
  without touching the bridge at all;
* **graceful drain** — ``stop()`` stops accepting, lets in-flight
  requests finish (bounded by ``drain_timeout``), flushes their
  responses, then closes the remaining connections.

Usage mirrors :class:`~repro.service.server.ServiceServer`::

    server = AsyncServiceServer(registry, port=0).start()
    print(server.url)
    ...
    server.stop()

or from the command line: ``repro serve`` (the default backend).
"""

from __future__ import annotations

import asyncio
import json
import socket
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Tuple

from repro.service import protocol as P
from repro.service.registry import SessionRegistry
from repro.service.wire import (
    ResponseCache,
    execute_json,
    health_payload,
    ready_payload,
)

#: Request bodies above this are rejected (a command is small).
MAX_BODY_BYTES = 4 * 1024 * 1024

#: StreamReader buffer bound — also caps the request head size.
READER_LIMIT = 256 * 1024

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 431: "Request Header Fields Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _response_bytes(status: int, payload: bytes,
                    retry_after: Optional[int] = None) -> bytes:
    head = "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\n" \
           "Content-Length: {}\r\n".format(
               status, _REASONS.get(status, "Unknown"), len(payload))
    if retry_after is not None:
        head += "Retry-After: {}\r\n".format(retry_after)
    return head.encode("ascii") + b"\r\n" + payload


def _error_bytes(status: int, code: str, message: str,
                 retry_after: Optional[int] = None) -> bytes:
    return _response_bytes(
        status, P.ErrorInfo(code=code, message=message).to_json(),
        retry_after=retry_after)


def _parse_head(head: bytes) -> Tuple[bytes, bytes, int, bool, bool]:
    """``(method, target, content_length, keep_alive, ok)`` of one
    request head (the bytes up to and including the blank line)."""
    lines = head[:-4].split(b"\r\n")
    request = lines[0].split(b" ")
    if len(request) != 3:
        return b"", b"", 0, False, False
    method, target, version = request
    length = 0
    connection = b""
    for line in lines[1:]:
        name, sep, value = line.partition(b":")
        if not sep:
            continue
        lowered = name.strip().lower()
        if lowered == b"content-length":
            try:
                length = int(value.strip())
            except ValueError:
                return method, target, 0, False, False
        elif lowered == b"connection":
            connection = value.strip().lower()
    keep_alive = version == b"HTTP/1.1" and connection != b"close"
    return method, target, length, keep_alive, True


class AsyncServiceServer:
    """The asyncio HTTP/JSON trajectory server.

    Args:
        registry: the session registry to serve; a fresh one by
            default.
        host: bind address (loopback by default).
        port: TCP port; ``0`` picks an ephemeral free port.  The
            socket is bound in the constructor, so a port conflict
            fails fast and :attr:`url` is valid before :meth:`start`.
        verbose: log each request line to stderr.
        sync_workers: threads in the bounded bridge that runs the
            synchronous command path.
        max_inflight: requests allowed to be executing or queued for
            the bridge before the server sheds load with ``503``.
        response_cache: serve repeated read commands from the
            versioned :class:`~repro.service.wire.ResponseCache`.
        drain_timeout: seconds :meth:`stop` waits for in-flight
            requests to finish before closing connections.
    """

    def __init__(self, registry: Optional[SessionRegistry] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 verbose: bool = False, sync_workers: int = 4,
                 max_inflight: int = 64,
                 response_cache: bool = True,
                 drain_timeout: float = 5.0) -> None:
        self.registry = registry if registry is not None \
            else SessionRegistry()
        self.verbose = verbose
        self.sync_workers = max(1, int(sync_workers))
        self.max_inflight = max(1, int(max_inflight))
        self.drain_timeout = drain_timeout
        self.cache = ResponseCache() if response_cache else None

        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            sock.bind((host, port))
            sock.listen(128)
            sock.setblocking(False)
        except OSError:
            sock.close()
            raise
        self._socket = sock

        # Loop-confined counters (mutated only on the event loop) —
        # except _deadline_rejected, bumped by bridge workers (a bare
        # int increment; the GIL keeps the counter coherent).
        self._inflight = 0   # executing or queued on the bridge
        self._pending = 0    # responses dispatched but not yet written
        self._rejected = 0
        self._deadline_rejected = 0
        self._served = 0

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._stop_requested: Optional[asyncio.Event] = None
        self._conn_writers: set = set()
        self._conn_tasks: set = set()
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._finished = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- addresses ------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (port resolved at bind)."""
        return self._socket.getsockname()[:2]

    @property
    def url(self) -> str:
        """Base URL, e.g. ``http://127.0.0.1:8731``."""
        host, port = self.address
        return "http://{}:{}".format(host, port)

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "AsyncServiceServer":
        """Run the event loop on a daemon thread; returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run_loop, name="repro-aservice",
                daemon=True)
            self._thread.start()
            self._ready.wait()
            if self._startup_error is not None:
                self._thread.join()
                self._thread = None
                raise self._startup_error
        return self

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # surfaced by start()
            if not self._ready.is_set():
                self._startup_error = error
        finally:
            self._ready.set()
            self._finished.set()

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI foreground mode)."""
        asyncio.run(self._main())

    def stop(self) -> None:
        """Drain in-flight requests, then shut the server down.

        Safe on a never-started server (just closes the socket).
        """
        if self._thread is not None:
            loop = self._loop
            if loop is not None and loop.is_running():
                loop.call_soon_threadsafe(self._request_stop)
            self._thread.join()
            self._thread = None
        else:
            self._socket.close()

    def _request_stop(self) -> None:
        if self._stop_requested is not None:
            self._stop_requested.set()

    def __enter__(self) -> "AsyncServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- the loop -------------------------------------------------------
    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_requested = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.sync_workers,
            thread_name_prefix="repro-sync")
        server = await asyncio.start_server(
            self._serve_connection, sock=self._socket,
            limit=READER_LIMIT)
        self._ready.set()
        try:
            await self._stop_requested.wait()
        finally:
            await self._drain(server)

    async def _drain(self, server: "asyncio.AbstractServer") -> None:
        server.close()
        try:
            await server.wait_closed()
        except (OSError, RuntimeError):  # pragma: no cover
            pass
        # Let everything already accepted finish and flush.
        deadline = self._loop.time() + self.drain_timeout
        while ((self._inflight or self._pending)
               and self._loop.time() < deadline):
            await asyncio.sleep(0.01)
        for writer in list(self._conn_writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=1.0)
        for task in list(self._conn_tasks):  # pragma: no cover
            task.cancel()
        self._executor.shutdown(wait=False, cancel_futures=True)

    # -- per-connection reader/writer pair ------------------------------
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._conn_writers.add(writer)
        # In-order response lane: the queue bounds how far one
        # connection may pipeline ahead of its unwritten responses.
        queue: "asyncio.Queue" = asyncio.Queue(32)
        writer_task = self._loop.create_task(
            self._write_responses(queue, writer))
        try:
            await self._read_requests(reader, queue)
        finally:
            await queue.put(None)
            await writer_task
            self._conn_writers.discard(writer)
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    async def _read_requests(self, reader: asyncio.StreamReader,
                             queue: "asyncio.Queue") -> None:
        while True:
            try:
                head = await reader.readuntil(b"\r\n\r\n")
            except asyncio.IncompleteReadError:
                return  # clean close (or mid-head disconnect)
            except asyncio.LimitOverrunError:
                await self._enqueue(queue, _error_bytes(
                    431, "bad_request", "request head too large"))
                return
            except (ConnectionError, OSError):
                return
            method, target, length, keep_alive, ok = _parse_head(head)
            if self.verbose:  # pragma: no cover
                print("aserver: {} {}".format(
                    method.decode("latin-1"),
                    target.decode("latin-1")), file=sys.stderr)
            if not ok:
                await self._enqueue(queue, _error_bytes(
                    400, "bad_request", "malformed request head"))
                return
            path = target.rstrip(b"/")
            if method == b"GET":
                if path == b"/v1/ready":
                    status, payload = ready_payload(self.registry)
                    await self._enqueue(queue, _response_bytes(
                        status, P.canonical_json(payload)))
                    continue
                if path not in (b"/v1/health", b""):
                    await self._enqueue(queue, _error_bytes(
                        404, "not_found", "unknown path {!r}".format(
                            target.decode("latin-1"))))
                    continue
                await self._enqueue(queue, _response_bytes(
                    200, P.canonical_json(health_payload(
                        self.registry, load=self._load_report()))))
            elif method == b"POST":
                if path != b"/v1/call":
                    # Swallow the (bounded) body so the stream stays
                    # aligned for the next pipelined request.
                    if 0 < length <= MAX_BODY_BYTES:
                        try:
                            await reader.readexactly(length)
                        except (asyncio.IncompleteReadError,
                                ConnectionError, OSError):
                            return
                    await self._enqueue(queue, _error_bytes(
                        404, "not_found", "unknown path {!r}".format(
                            target.decode("latin-1"))))
                    if length > MAX_BODY_BYTES:
                        return
                    continue
                if length < 0 or length > MAX_BODY_BYTES:
                    await self._enqueue(queue, _error_bytes(
                        400, "bad_request",
                        "bad or oversized request body"))
                    return  # cannot resync the stream past the body
                try:
                    body = await reader.readexactly(length)
                except (asyncio.IncompleteReadError,
                        ConnectionError, OSError):
                    return
                await self._dispatch(queue, body)
            else:
                # Unknown method: the body framing is unknowable, so
                # answer and close rather than risk a desynced stream.
                await self._enqueue(queue, _error_bytes(
                    405, "bad_request",
                    "method {!r} not allowed".format(
                        method.decode("latin-1"))))
                return
            if not keep_alive:
                return

    async def _dispatch(self, queue: "asyncio.Queue",
                        body: bytes) -> None:
        """Answer one ``/v1/call`` body: cache hit inline, otherwise
        through the bounded bridge — or shed load."""
        if self.cache is not None:
            held = self.cache.get(self.registry, body)
            if held is not None:
                status, payload = held
                await self._enqueue(
                    queue, _response_bytes(status, payload))
                return
        if self._inflight >= self.max_inflight:
            self._rejected += 1
            await self._enqueue(queue, _error_bytes(
                503, "saturated",
                "server saturated ({} requests in flight)".format(
                    self._inflight), retry_after=1))
            return
        self._inflight += 1
        if b'"deadline_ms"' in body:
            # Deadline-aware shedding: remember when the request hit
            # the bridge queue; the worker answers 504 without doing
            # any work if the budget expired while it waited.
            future = self._loop.run_in_executor(
                self._executor, self._execute_deadlined, body,
                time.monotonic())
        else:
            future = self._loop.run_in_executor(
                self._executor, execute_json, self.registry, body,
                self.cache)
        await self._enqueue(queue, future)

    def _execute_deadlined(self, body: bytes,
                           enqueued_at: float) -> Tuple[int, bytes]:
        """Bridge-thread wrapper for deadline-carrying requests.

        A request whose ``deadline_ms`` budget was consumed by queue
        wait is shed with a typed ``deadline_exceeded`` 504 — the
        caller stopped waiting, so executing it would burn a bridge
        worker on an answer nobody reads.
        """
        try:
            ms = json.loads(body.decode("utf-8")).get("deadline_ms")
        except (UnicodeDecodeError, ValueError, AttributeError):
            ms = None  # let execute_json produce the protocol error
        if isinstance(ms, int) and not isinstance(ms, bool) \
                and ms >= 0:
            waited_ms = (time.monotonic() - enqueued_at) * 1000.0
            if waited_ms >= ms:
                self._deadline_rejected += 1
                return 504, P.ErrorInfo(
                    code="deadline_exceeded",
                    message="deadline_ms={} expired after {:.0f} ms "
                            "queued".format(ms, waited_ms)).to_json()
        return execute_json(self.registry, body, self.cache)

    async def _enqueue(self, queue: "asyncio.Queue", item) -> None:
        self._pending += 1
        await queue.put(item)

    async def _write_responses(self, queue: "asyncio.Queue",
                               writer: asyncio.StreamWriter) -> None:
        """Drain the response lane strictly in order."""
        while True:
            item = await queue.get()
            if item is None:
                return
            if isinstance(item, asyncio.Future):
                try:
                    status, payload = await item
                except BaseException:  # cancelled mid-drain
                    self._inflight -= 1
                    self._pending -= 1
                    continue
                self._inflight -= 1
                data = _response_bytes(status, payload)
            else:
                data = item
            self._pending -= 1
            self._served += 1
            try:
                writer.write(data)
                await writer.drain()
            except (ConnectionError, OSError):
                # Client went away: keep draining futures so the
                # inflight accounting stays truthful.
                continue

    # -- observability --------------------------------------------------
    def _load_report(self) -> dict:
        report = {
            "backend": "asyncio",
            "inflight": self._inflight,
            "queued": max(0, self._inflight - self.sync_workers),
            "pending_responses": self._pending,
            "max_inflight": self.max_inflight,
            "sync_workers": self.sync_workers,
            "rejected": self._rejected,
            "deadline_rejected": self._deadline_rejected,
            "served": self._served,
        }
        if self.cache is not None:
            report["cache"] = self.cache.stats()
        return report
