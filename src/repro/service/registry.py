"""Named, independently configured datasets with background builds.

A :class:`SessionRegistry` is the service's unit of multi-tenancy:
each :class:`Session` owns one :class:`~repro.api.Workbench` (space
model + store + last build metrics) under a caller-chosen name such
as ``louvre@0.1`` or ``museum-march-csv``.  Builds run as background
jobs on daemon threads through the PR 3 parallel pipeline engine; a
:class:`BuildJob` handle exposes the job's state and a live
:class:`~repro.pipeline.metrics.PipelineMetrics` snapshot while the
pipeline streams, which is what the ``JobStatus`` protocol command
reports.

Ingestion is safe against concurrent readers because
:class:`~repro.storage.store.TrajectoryStore` takes a read-write lock
around every index mutation; the registry additionally serializes
builds *per session* (single-writer), so two jobs never interleave
half-batches into one store.
"""

from __future__ import annotations

import enum
import itertools
import os
import shutil
import threading
from typing import Dict, Iterable, List, Optional

from repro.api import Workbench
from repro.pipeline.engine import PipelineError
from repro.pipeline.metrics import PipelineMetrics


class UnknownSessionError(KeyError):
    """Lookup of a session name the registry does not hold."""


class UnknownJobError(KeyError):
    """Lookup of a job id the registry does not hold."""


class JobState(enum.Enum):
    """Lifecycle of a background build job."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


class BuildJob:
    """Handle on one background build.

    Attributes:
        job_id: registry-assigned id (``job-N``).
        session: the target session's name.
    """

    def __init__(self, job_id: str, session: str,
                 target) -> None:
        self.job_id = job_id
        self.session = session
        self._state = JobState.PENDING
        self.error: Optional[str] = None
        self._pipeline = None
        self._finished = threading.Event()
        self._thread = threading.Thread(
            target=self._run, args=(target,),
            name="repro-build-{}".format(job_id), daemon=True)

    # -- lifecycle ------------------------------------------------------
    def _start(self) -> None:
        self._thread.start()

    def _run(self, target) -> None:
        self._state = JobState.RUNNING
        try:
            target(self)
            self._state = JobState.DONE
        except Exception as error:  # surfaced via the handle, not lost
            self.error = "{}: {}".format(type(error).__name__, error)
            self._state = JobState.FAILED
        finally:
            self._finished.set()

    # -- observation ----------------------------------------------------
    @property
    def state(self) -> JobState:
        """The job's current lifecycle state."""
        return self._state

    @property
    def metrics(self) -> Optional[PipelineMetrics]:
        """Live per-stage metrics of the running (or finished)
        pipeline; ``None`` before the pipeline starts."""
        pipeline = self._pipeline
        if pipeline is None:
            return None
        try:
            return pipeline.metrics
        except PipelineError:  # assembled but not yet running
            return None

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job finishes; True unless it timed out."""
        return self._finished.wait(timeout)

    def __repr__(self) -> str:
        return "BuildJob({}, session={!r}, state={})".format(
            self.job_id, self.session, self._state.value)


class Session:
    """One named dataset: a workbench plus build bookkeeping.

    ``durable`` is the session's on-disk home
    (:class:`~repro.persist.session.DurableSession`) when the
    registry has a ``persist_dir`` — builds journal to its log as
    they stream, and :meth:`checkpoint` folds the log into a fresh
    snapshot.
    """

    def __init__(self, name: str, workbench: Workbench,
                 durable=None) -> None:
        self.name = name
        self.workbench = workbench
        self.durable = durable
        #: Serializes builds into this session (single writer).
        self.build_lock = threading.Lock()
        self._building = 0
        self._failed = False
        #: Documents accepted / rejected by ``IngestDocuments`` —
        #: surfaced in ``/v1/health`` so a load replayer can assert
        #: delivery without scraping logs.
        self.ingest_accepted = 0
        self.ingest_rejected = 0

    def checkpoint(self):
        """Fold the session's log into a fresh snapshot.

        Caller must hold :attr:`build_lock` (checkpoint races a
        concurrent build's log appends otherwise).  Returns the
        :class:`~repro.persist.format.SnapshotInfo`.

        Raises:
            PersistError: when the session has no durable home or
                the disk write fails.
        """
        from repro.persist import PersistError
        from repro.persist.session import space_token

        if self.durable is None:
            raise PersistError(
                "session {!r} has no durable home (registry has no "
                "persist_dir)".format(self.name))
        return self.durable.checkpoint(
            self.workbench.store,
            space=space_token(self.workbench.space))

    @property
    def state(self) -> str:
        """``building`` / ``ready`` / ``failed`` / ``empty``."""
        if self._building:
            return "building"
        if self._failed:
            return "failed"
        return "ready" if len(self.workbench.store) else "empty"

    def __repr__(self) -> str:
        return "Session({!r}, {} trajectories, {})".format(
            self.name, len(self.workbench.store), self.state)


#: Finished jobs retained for ``JobStatus`` polling; older ones are
#: pruned so a long-lived server's job table stays bounded.
MAX_FINISHED_JOBS = 64


class SessionRegistry:
    """Thread-safe map of session name → :class:`Session` plus the
    build-job table (finished jobs pruned past
    :data:`MAX_FINISHED_JOBS`).

    With a ``persist_dir`` the registry is **durable**: every session
    lives in its own subdirectory (snapshot generations + append
    log), sessions found on disk are restored on construction
    (snapshot + log replay), new sessions journal their ingestion to
    the log as it streams, and finished builds auto-checkpoint — so a
    restarted registry serves the same sessions it held when it died.

    Args:
        persist_dir: root directory for durable sessions (created
            lazily); ``None`` keeps the registry process-local.
        fsync: fsync every log append (the durability default).
        autosave: checkpoint a session after each successful build
            (folds the build's log records into a fresh snapshot).
        standby: open ``persist_dir`` **read-only**: sessions restore
            from the snapshots + journal the primary wrote, but this
            registry never attaches the WAL, never checkpoints and
            never autosaves — a read replica sharing the primary's
            directory must not double-journal its writes.
        defer_restore: skip the synchronous restore-on-construction;
            the owner binds its listener first and then calls
            :meth:`finish_restore`, with :attr:`restoring` True in
            between so ``GET /v1/ready`` reports 503 while the corpus
            loads.
    """

    def __init__(self, persist_dir: Optional[str] = None,
                 fsync: bool = True, autosave: bool = True,
                 standby: bool = False,
                 defer_restore: bool = False) -> None:
        self._sessions: Dict[str, Session] = {}
        self._jobs: Dict[str, BuildJob] = {}
        self._job_ids = itertools.count(1)
        self._lock = threading.Lock()
        self.persist_dir = persist_dir
        self._fsync = fsync
        self.standby = standby
        self._autosave = autosave and not standby
        #: Session name → error message for persisted sessions that
        #: failed to restore at construction (corrupt snapshots);
        #: healthy sessions are served regardless.
        self.restore_errors: Dict[str, str] = {}
        self._restore_pending = (persist_dir is not None
                                 and defer_restore)
        #: True while persisted sessions are still being loaded — the
        #: readiness probe's drain signal.
        self.restoring = self._restore_pending
        if persist_dir is not None and not defer_restore:
            self._restore_all()

    # ------------------------------------------------------------------
    # durability plumbing
    # ------------------------------------------------------------------
    def _durable_for(self, name: str):
        """The on-disk home of session ``name`` (None when the
        registry is process-local)."""
        if self.persist_dir is None:
            return None
        from urllib.parse import quote

        from repro.persist import DurableSession

        return DurableSession(
            os.path.join(self.persist_dir, quote(name, safe="")),
            fsync=self._fsync)

    def _load_session(self, name: str) -> Session:
        """Recover one session from disk (no registry lock needed —
        the caller swaps the result into ``_sessions``).

        A standby registry replays the snapshot + journal like the
        primary would, then detaches the log and keeps no durable
        handle: the restored corpus is read-only state, and two
        processes appending to one journal would corrupt it.
        """
        from repro.persist.session import revive_space

        durable = self._durable_for(name)
        store, space_name = durable.open()
        if self.standby:
            store.detach_wal()
            durable.close()
        workbench = Workbench(space=revive_space(space_name),
                              store=store)
        return Session(name, workbench,
                       durable=None if self.standby else durable)

    def _restore_session(self, name: str) -> Session:
        """Recover one session from disk (caller holds the lock)."""
        session = self._load_session(name)
        self._sessions[name] = session
        return session

    def _restore_all(self) -> None:
        from urllib.parse import unquote

        from repro.persist import PersistError

        try:
            entries = sorted(os.listdir(self.persist_dir))
        except OSError:
            return  # nothing persisted yet
        for entry in entries:
            if not os.path.isdir(os.path.join(self.persist_dir,
                                              entry)):
                continue
            name = unquote(entry)
            durable = self._durable_for(name)
            if durable is None or not durable.exists():
                continue
            try:
                with self._lock:
                    self._restore_session(name)
            except PersistError as error:
                # One rotten session must not take the whole
                # registry down — record it and keep serving the
                # healthy ones (the CLI surfaces this map).
                self.restore_errors[name] = str(error)

    def finish_restore(self) -> None:
        """Run the restore a ``defer_restore=True`` construction
        postponed; clears :attr:`restoring` (the readiness gate) when
        the corpus is loaded.  No-op otherwise."""
        if not self._restore_pending:
            return
        try:
            self._restore_all()
        finally:
            self.restoring = False
            self._restore_pending = False

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def create(self, name: str,
               space: Optional[object] = None) -> Session:
        """The named session, created empty on first use.

        An existing session is returned as-is (``space`` ignored).
        In a durable registry a brand-new session gets its on-disk
        home immediately: the log is attached before the first
        ingest, so nothing needs to be rebuilt after a crash.
        """
        with self._lock:
            session = self._sessions.get(name)
            if session is None:
                # A standby tracks live writes in memory only — it
                # must not restore from (or journal to) the shared
                # directory here, or a fan-out ingest would apply
                # both the primary's journal *and* the in-memory
                # write, double-counting documents.
                durable = None if self.standby \
                    else self._durable_for(name)
                if durable is not None and durable.exists():
                    return self._restore_session(name)
                workbench = Workbench(space=space)
                if durable is not None:
                    workbench.store.attach_wal(durable.log())
                session = Session(name, workbench, durable=durable)
                self._sessions[name] = session
            return session

    def adopt(self, name: str, workbench: Workbench) -> Session:
        """Register an existing workbench under ``name`` (replacing
        any previous session of that name)."""
        with self._lock:
            session = Session(name, workbench,
                              durable=None if self.standby
                              else self._durable_for(name))
            self._sessions[name] = session
            return session

    def save(self, name: str):
        """Checkpoint a session to its durable home.

        Serializes against builds (takes the session's writer lock),
        so a snapshot never misses log records of an in-flight batch.
        Returns the :class:`~repro.persist.format.SnapshotInfo`.

        Raises:
            UnknownSessionError: for names never created.
            PersistError: without a ``persist_dir``, on a standby
                registry (the primary owns the journal), or on disk
                failure.
        """
        if self.standby:
            from repro.persist import PersistError

            raise PersistError(
                "standby registry does not checkpoint — the primary "
                "owns session {!r}'s journal".format(name))
        session = self.get(name)
        with session.build_lock:
            return session.checkpoint()

    def restore(self, name: str) -> Session:
        """(Re)load a session from disk, replacing the in-memory one.

        Raises:
            UnknownSessionError: when the name is neither held in
                memory nor persisted on disk.
            PersistError: without a ``persist_dir``, or for a session
                that exists in memory but has nothing persisted.
            CorruptSnapshotError: when the snapshot fails
                verification.
        """
        from repro.persist import PersistError

        durable = self._durable_for(name)
        if durable is None:
            raise PersistError("registry has no persist_dir")
        with self._lock:
            previous = self._sessions.get(name)
        if not durable.exists():
            if previous is None:
                raise UnknownSessionError(name)
            raise PersistError(
                "nothing persisted for session {!r}".format(name))
        if previous is not None:
            # Hold the writer lock across load *and* swap: a build
            # queued on the old session object stays blocked until
            # the new session is installed, so it cannot ingest into
            # the orphaned store in between.
            with previous.build_lock:
                previous.workbench.store.detach_wal()
                if previous.durable is not None:
                    previous.durable.close()
                session = self._load_session(name)
                with self._lock:
                    self._sessions[name] = session
                return session
        session = self._load_session(name)
        with self._lock:
            self._sessions[name] = session
        return session

    def get(self, name: str) -> Session:
        """Lookup by name.

        Raises:
            UnknownSessionError: for names never created.
        """
        with self._lock:
            try:
                return self._sessions[name]
            except KeyError:
                raise UnknownSessionError(name)

    def drop(self, name: str) -> None:
        """Forget a session (its store becomes garbage).

        Raises:
            UnknownSessionError: for names never created.
        """
        with self._lock:
            if name not in self._sessions:
                raise UnknownSessionError(name)
            session = self._sessions.pop(name)
        # Dropping a durable session removes its on-disk home too —
        # otherwise the next create() (or registry restart) would
        # silently resurrect the corpus and a follow-up build would
        # append onto it, doubling the dataset.
        session.workbench.store.detach_wal()
        if session.durable is not None:
            session.durable.close()
            shutil.rmtree(session.durable.directory,
                          ignore_errors=True)

    def names(self) -> List[str]:
        """Session names, insertion-ordered."""
        with self._lock:
            return list(self._sessions)

    def sessions(self) -> List[Session]:
        """Every session, insertion-ordered."""
        with self._lock:
            return list(self._sessions.values())

    # ------------------------------------------------------------------
    # build jobs
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> BuildJob:
        """Lookup a build job by id.

        Raises:
            UnknownJobError: for unknown ids.
        """
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(job_id)

    def build(self, name: str, source: str = "louvre",
              scale: float = 0.05, path: Optional[str] = None,
              workers: int = 0, executor: str = "thread",
              batch_size: int = 512, streaming: bool = True,
              cache: bool = False,
              wait: bool = False) -> BuildJob:
        """Start a (background) build into the named session.

        The session is created on first use with a
        :class:`~repro.louvre.space.LouvreSpace` model.  The job
        streams the source through clean → segment → trace → annotate
        → store on the parallel engine; its handle exposes live
        metrics while it runs.

        Args:
            name: target session.
            source: ``"louvre"`` or ``"csv"``.
            scale: louvre-source corpus scale.
            path: csv-source file path.
            workers / executor / batch_size / streaming / cache:
                engine knobs, as in :meth:`Workbench.build
                <repro.api.Workbench.build>`.
            wait: block until the job finishes before returning.

        Raises:
            ValueError: for an unknown source kind or a csv source
                without a path.
        """
        if source not in ("louvre", "csv"):
            raise ValueError(
                "unknown source {!r}; one of: louvre, csv".format(
                    source))
        if source == "csv" and not path:
            raise ValueError("csv source needs a path")

        initial = self.create(name)
        if initial.workbench.space is None:
            from repro.louvre.space import LouvreSpace
            initial.workbench.space = LouvreSpace()

        def records(session: Session) -> Iterable:
            if source == "louvre":
                from repro.pipeline.sources import louvre_source
                return louvre_source(session.workbench.space,
                                     scale=scale)
            from repro.pipeline.sources import csv_source
            return csv_source(path)

        def target(job: BuildJob) -> None:
            # Resolve by name at run time: a RestoreSession between
            # submit and start swaps the Session object, and building
            # into the stale one would ingest into an orphaned,
            # un-journaled store.
            session = self.get(name)
            with session.build_lock:  # single writer per session
                session._building += 1
                try:
                    stream = records(session)
                    pipeline = session.workbench.prepare_build(
                        batch_size=batch_size, streaming=streaming,
                        workers=workers, executor=executor,
                        cache=cache)
                    job._pipeline = pipeline
                    pipeline.run(stream, collect=False)
                    session.workbench.metrics = pipeline.metrics
                    session._failed = False
                    if self._autosave and session.durable is not None:
                        # Fold the batches this build journaled into
                        # a fresh snapshot while we still hold the
                        # writer lock.  A failure here fails the job
                        # (the corpus is built but NOT yet compacted
                        # — the log still has it, so nothing is
                        # lost).
                        session.checkpoint()
                except BaseException:
                    session._failed = True
                    raise
                finally:
                    session._building -= 1

        with self._lock:
            job = BuildJob("job-{}".format(next(self._job_ids)), name,
                           target)
            self._jobs[job.job_id] = job
            # Retention: drop the oldest finished handles (each pins
            # its pipeline and thread object) beyond the cap.
            finished = [job_id for job_id, held in self._jobs.items()
                        if held.state in (JobState.DONE,
                                          JobState.FAILED)]
            for job_id in finished[:max(0, len(finished)
                                        - MAX_FINISHED_JOBS)]:
                del self._jobs[job_id]
        job._start()
        if wait:
            job.wait()
        return job
