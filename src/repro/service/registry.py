"""Named, independently configured datasets with background builds.

A :class:`SessionRegistry` is the service's unit of multi-tenancy:
each :class:`Session` owns one :class:`~repro.api.Workbench` (space
model + store + last build metrics) under a caller-chosen name such
as ``louvre@0.1`` or ``museum-march-csv``.  Builds run as background
jobs on daemon threads through the PR 3 parallel pipeline engine; a
:class:`BuildJob` handle exposes the job's state and a live
:class:`~repro.pipeline.metrics.PipelineMetrics` snapshot while the
pipeline streams, which is what the ``JobStatus`` protocol command
reports.

Ingestion is safe against concurrent readers because
:class:`~repro.storage.store.TrajectoryStore` takes a read-write lock
around every index mutation; the registry additionally serializes
builds *per session* (single-writer), so two jobs never interleave
half-batches into one store.
"""

from __future__ import annotations

import enum
import itertools
import threading
from typing import Dict, Iterable, List, Optional

from repro.api import Workbench
from repro.pipeline.engine import PipelineError
from repro.pipeline.metrics import PipelineMetrics


class UnknownSessionError(KeyError):
    """Lookup of a session name the registry does not hold."""


class UnknownJobError(KeyError):
    """Lookup of a job id the registry does not hold."""


class JobState(enum.Enum):
    """Lifecycle of a background build job."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


class BuildJob:
    """Handle on one background build.

    Attributes:
        job_id: registry-assigned id (``job-N``).
        session: the target session's name.
    """

    def __init__(self, job_id: str, session: str,
                 target) -> None:
        self.job_id = job_id
        self.session = session
        self._state = JobState.PENDING
        self.error: Optional[str] = None
        self._pipeline = None
        self._finished = threading.Event()
        self._thread = threading.Thread(
            target=self._run, args=(target,),
            name="repro-build-{}".format(job_id), daemon=True)

    # -- lifecycle ------------------------------------------------------
    def _start(self) -> None:
        self._thread.start()

    def _run(self, target) -> None:
        self._state = JobState.RUNNING
        try:
            target(self)
            self._state = JobState.DONE
        except Exception as error:  # surfaced via the handle, not lost
            self.error = "{}: {}".format(type(error).__name__, error)
            self._state = JobState.FAILED
        finally:
            self._finished.set()

    # -- observation ----------------------------------------------------
    @property
    def state(self) -> JobState:
        """The job's current lifecycle state."""
        return self._state

    @property
    def metrics(self) -> Optional[PipelineMetrics]:
        """Live per-stage metrics of the running (or finished)
        pipeline; ``None`` before the pipeline starts."""
        pipeline = self._pipeline
        if pipeline is None:
            return None
        try:
            return pipeline.metrics
        except PipelineError:  # assembled but not yet running
            return None

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job finishes; True unless it timed out."""
        return self._finished.wait(timeout)

    def __repr__(self) -> str:
        return "BuildJob({}, session={!r}, state={})".format(
            self.job_id, self.session, self._state.value)


class Session:
    """One named dataset: a workbench plus build bookkeeping."""

    def __init__(self, name: str, workbench: Workbench) -> None:
        self.name = name
        self.workbench = workbench
        #: Serializes builds into this session (single writer).
        self.build_lock = threading.Lock()
        self._building = 0
        self._failed = False

    @property
    def state(self) -> str:
        """``building`` / ``ready`` / ``failed`` / ``empty``."""
        if self._building:
            return "building"
        if self._failed:
            return "failed"
        return "ready" if len(self.workbench.store) else "empty"

    def __repr__(self) -> str:
        return "Session({!r}, {} trajectories, {})".format(
            self.name, len(self.workbench.store), self.state)


#: Finished jobs retained for ``JobStatus`` polling; older ones are
#: pruned so a long-lived server's job table stays bounded.
MAX_FINISHED_JOBS = 64


class SessionRegistry:
    """Thread-safe map of session name → :class:`Session` plus the
    build-job table (finished jobs pruned past
    :data:`MAX_FINISHED_JOBS`)."""

    def __init__(self) -> None:
        self._sessions: Dict[str, Session] = {}
        self._jobs: Dict[str, BuildJob] = {}
        self._job_ids = itertools.count(1)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def create(self, name: str,
               space: Optional[object] = None) -> Session:
        """The named session, created empty on first use.

        An existing session is returned as-is (``space`` ignored).
        """
        with self._lock:
            session = self._sessions.get(name)
            if session is None:
                session = Session(name, Workbench(space=space))
                self._sessions[name] = session
            return session

    def adopt(self, name: str, workbench: Workbench) -> Session:
        """Register an existing workbench under ``name`` (replacing
        any previous session of that name)."""
        with self._lock:
            session = Session(name, workbench)
            self._sessions[name] = session
            return session

    def get(self, name: str) -> Session:
        """Lookup by name.

        Raises:
            UnknownSessionError: for names never created.
        """
        with self._lock:
            try:
                return self._sessions[name]
            except KeyError:
                raise UnknownSessionError(name)

    def drop(self, name: str) -> None:
        """Forget a session (its store becomes garbage).

        Raises:
            UnknownSessionError: for names never created.
        """
        with self._lock:
            if name not in self._sessions:
                raise UnknownSessionError(name)
            del self._sessions[name]

    def names(self) -> List[str]:
        """Session names, insertion-ordered."""
        with self._lock:
            return list(self._sessions)

    def sessions(self) -> List[Session]:
        """Every session, insertion-ordered."""
        with self._lock:
            return list(self._sessions.values())

    # ------------------------------------------------------------------
    # build jobs
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> BuildJob:
        """Lookup a build job by id.

        Raises:
            UnknownJobError: for unknown ids.
        """
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(job_id)

    def build(self, name: str, source: str = "louvre",
              scale: float = 0.05, path: Optional[str] = None,
              workers: int = 0, executor: str = "thread",
              batch_size: int = 512, streaming: bool = True,
              cache: bool = False,
              wait: bool = False) -> BuildJob:
        """Start a (background) build into the named session.

        The session is created on first use with a
        :class:`~repro.louvre.space.LouvreSpace` model.  The job
        streams the source through clean → segment → trace → annotate
        → store on the parallel engine; its handle exposes live
        metrics while it runs.

        Args:
            name: target session.
            source: ``"louvre"`` or ``"csv"``.
            scale: louvre-source corpus scale.
            path: csv-source file path.
            workers / executor / batch_size / streaming / cache:
                engine knobs, as in :meth:`Workbench.build
                <repro.api.Workbench.build>`.
            wait: block until the job finishes before returning.

        Raises:
            ValueError: for an unknown source kind or a csv source
                without a path.
        """
        if source not in ("louvre", "csv"):
            raise ValueError(
                "unknown source {!r}; one of: louvre, csv".format(
                    source))
        if source == "csv" and not path:
            raise ValueError("csv source needs a path")

        session = self.create(name)
        if session.workbench.space is None:
            from repro.louvre.space import LouvreSpace
            session.workbench.space = LouvreSpace()

        def records() -> Iterable:
            if source == "louvre":
                from repro.pipeline.sources import louvre_source
                return louvre_source(session.workbench.space,
                                     scale=scale)
            from repro.pipeline.sources import csv_source
            return csv_source(path)

        def target(job: BuildJob) -> None:
            with session.build_lock:  # single writer per session
                session._building += 1
                try:
                    stream = records()
                    pipeline = session.workbench.prepare_build(
                        batch_size=batch_size, streaming=streaming,
                        workers=workers, executor=executor,
                        cache=cache)
                    job._pipeline = pipeline
                    pipeline.run(stream, collect=False)
                    session.workbench.metrics = pipeline.metrics
                    session._failed = False
                except BaseException:
                    session._failed = True
                    raise
                finally:
                    session._building -= 1

        with self._lock:
            job = BuildJob("job-{}".format(next(self._job_ids)), name,
                           target)
            self._jobs[job.job_id] = job
            # Retention: drop the oldest finished handles (each pins
            # its pipeline and thread object) beyond the cap.
            finished = [job_id for job_id, held in self._jobs.items()
                        if held.state in (JobState.DONE,
                                          JobState.FAILED)]
            for job_id in finished[:max(0, len(finished)
                                        - MAX_FINISHED_JOBS)]:
                del self._jobs[job_id]
        job._start()
        if wait:
            job.wait()
        return job
