"""The embedded threaded trajectory server (the legacy front-end).

A thin, dependency-free wrapper around the standard library's
``http.server``: a :class:`ThreadingHTTPServer` whose handler parses
each ``POST /v1/call`` body as one protocol command and executes it
through :func:`~repro.service.wire.execute_json` — the same
bytes-in/bytes-out path the asyncio front-end
(:class:`~repro.service.aserver.AsyncServiceServer`) and
:class:`~repro.service.executor.LocalBinding` use, so all three
transports answer byte-identically.  Because the store takes a
read-write lock and builds run as background jobs, many requests are
served concurrently while a dataset is still ingesting.

This server spawns one thread per connection and re-handshakes
urllib-style clients per request; it remains as the
``--legacy-server`` fallback.  For throughput, use the asyncio
front-end (the default of ``repro serve`` and ``Workbench.serve``).

Endpoints::

    POST /v1/call     body = one command object   → response object
    GET  /v1/health   liveness + session roster   → plain JSON
    GET  /v1/ready    readiness (drain signal)    → 200/503 JSON

Error responses carry an ``Error`` protocol object and a matching
HTTP status (400 for bad requests, 404 for unknown sessions/jobs,
500 for internal failures).

Usage::

    server = ServiceServer(port=0)          # ephemeral port
    server.start()
    print(server.url)                       # http://127.0.0.1:PORT
    ...
    server.stop()

or from the command line: ``repro serve --legacy-server``.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro import __version__
from repro.service import protocol as P
from repro.service.registry import SessionRegistry
from repro.service.wire import (  # noqa: F401  (re-exported)
    STATUS_OF_CODE,
    ResponseCache,
    execute_json,
    health_payload,
    ready_payload,
)

#: Request bodies above this are rejected (a command is small).
MAX_BODY_BYTES = 4 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """One request = one protocol command (or a health probe)."""

    server_version = "repro-service/" + __version__
    protocol_version = "HTTP/1.1"
    # A response is several small writes; without these a keep-alive
    # client pays the Nagle x delayed-ACK stall (~40ms) per request.
    disable_nagle_algorithm = True
    wbufsize = -1  # buffered: one segment per response, not five

    # the ServiceServer injects this
    registry: SessionRegistry

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _reply(self, status: int, payload: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _reply_error(self, status: int, code: str,
                     message: str) -> None:
        self._reply(status, P.ErrorInfo(code=code,
                                        message=message).to_json())

    # -- endpoints ------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server convention)
        path = self.path.rstrip("/")
        if path == "/v1/ready":
            status, payload = ready_payload(self.registry)
            self._reply(status, P.canonical_json(payload))
            return
        if path not in ("/v1/health", ""):
            self._reply_error(404, "not_found",
                              "unknown path {!r}".format(self.path))
            return
        server = self.server
        cache = server.cache  # type: ignore[attr-defined]
        with server.stats_lock:  # type: ignore[attr-defined]
            load = {
                "backend": "threading",
                "inflight": server.inflight,  # type: ignore
                "queued": 0,  # one thread per request: nothing queues
                "max_inflight": None,  # never sheds load
                "rejected": 0,
                "served": server.served,  # type: ignore
            }
        if cache is not None:
            load["cache"] = cache.stats()
        self._reply(200, P.canonical_json(
            health_payload(self.registry, load=load)))

    def do_POST(self) -> None:  # noqa: N802 (http.server convention)
        if self.path.rstrip("/") != "/v1/call":
            self._reply_error(404, "not_found",
                              "unknown path {!r}".format(self.path))
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._reply_error(400, "bad_request",
                              "bad or oversized request body")
            return
        raw = self.rfile.read(length)
        server = self.server
        with server.stats_lock:  # type: ignore[attr-defined]
            server.inflight += 1  # type: ignore[attr-defined]
        try:
            status, payload = execute_json(
                self.registry, raw,
                cache=server.cache)  # type: ignore[attr-defined]
        finally:
            with server.stats_lock:  # type: ignore[attr-defined]
                server.inflight -= 1  # type: ignore[attr-defined]
                server.served += 1  # type: ignore[attr-defined]
        self._reply(status, payload)


class ServiceServer:
    """The embedded threaded HTTP/JSON trajectory server.

    Args:
        registry: the session registry to serve; a fresh one by
            default.
        host: bind address (loopback by default — put a real proxy in
            front for anything else).
        port: TCP port; ``0`` picks an ephemeral free port.
        verbose: log each request line to stderr.
        response_cache: serve repeated read commands from the
            versioned :class:`~repro.service.wire.ResponseCache`
            (pass ``False`` to recompute every request).
    """

    def __init__(self, registry: Optional[SessionRegistry] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 verbose: bool = False,
                 response_cache: bool = True) -> None:
        self.registry = registry if registry is not None \
            else SessionRegistry()
        handler = type("BoundHandler", (_Handler,),
                       {"registry": self.registry})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._httpd.cache = (  # type: ignore[attr-defined]
            ResponseCache() if response_cache else None)
        self._httpd.stats_lock = threading.Lock()  # type: ignore
        self._httpd.inflight = 0  # type: ignore[attr-defined]
        self._httpd.served = 0  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def cache(self) -> Optional[ResponseCache]:
        """The response cache (None when disabled)."""
        return self._httpd.cache  # type: ignore[attr-defined]

    # -- addresses ------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (port resolved when
        ephemeral)."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        """Base URL, e.g. ``http://127.0.0.1:8731``."""
        host, port = self.address
        return "http://{}:{}".format(host, port)

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ServiceServer":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-service", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down and join the serving thread.

        Safe on a never-started server (``shutdown()`` would block
        forever waiting on ``serve_forever``): the socket is closed
        either way.
        """
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join()
            self._thread = None
        self._httpd.server_close()

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI foreground mode)."""
        try:
            self._httpd.serve_forever()
        finally:
            self._httpd.server_close()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
