"""The embedded trajectory server: the protocol over HTTP/JSON.

A thin, dependency-free wrapper around the standard library's
``http.server``: a :class:`ThreadingHTTPServer` whose handler parses
each ``POST /v1/call`` body as one protocol command, executes it
through :func:`~repro.service.executor.execute_command` (the same
code path :class:`~repro.service.executor.LocalBinding` uses), and
writes the response's canonical JSON back.  Because the store takes a
read-write lock and builds run as background jobs, many requests are
served concurrently while a dataset is still ingesting.

Endpoints::

    POST /v1/call     body = one command object   → response object
    GET  /v1/health   liveness + session roster   → plain JSON

Error responses carry an ``Error`` protocol object and a matching
HTTP status (400 for bad requests, 404 for unknown sessions/jobs,
500 for internal failures).

Usage::

    server = ServiceServer(port=0)          # ephemeral port
    server.start()
    print(server.url)                       # http://127.0.0.1:PORT
    ...
    server.stop()

or from the command line: ``repro serve --scale 0.05``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro import __version__
from repro.service import protocol as P
from repro.service.executor import execute_command_safely
from repro.service.registry import SessionRegistry

#: Request bodies above this are rejected (a command is small).
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Error code → HTTP status of the reply carrying it.
STATUS_OF_CODE = {
    "bad_request": 400,
    "protocol": 400,
    "bad_cursor": 400,
    "unserializable": 400,
    "not_found": 404,
    "unknown_session": 404,
    "unknown_job": 404,
    "persistence": 500,
    "internal": 500,
}


class _Handler(BaseHTTPRequestHandler):
    """One request = one protocol command (or a health probe)."""

    server_version = "repro-service/" + __version__
    protocol_version = "HTTP/1.1"

    # the ServiceServer injects this
    registry: SessionRegistry

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _reply(self, status: int, payload: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _reply_error(self, status: int, code: str,
                     message: str) -> None:
        self._reply(status, P.ErrorInfo(code=code,
                                        message=message).to_json())

    # -- endpoints ------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server convention)
        if self.path.rstrip("/") not in ("/v1/health", ""):
            self._reply_error(404, "not_found",
                              "unknown path {!r}".format(self.path))
            return
        roster = [{"name": session.name, "state": session.state,
                   "trajectories": len(session.workbench.store)}
                  for session in self.registry.sessions()]
        self._reply(200, P.canonical_json({
            "ok": True, "version": __version__,
            "protocol": P.PROTOCOL_VERSION, "sessions": roster}))

    def do_POST(self) -> None:  # noqa: N802 (http.server convention)
        if self.path.rstrip("/") != "/v1/call":
            self._reply_error(404, "not_found",
                              "unknown path {!r}".format(self.path))
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._reply_error(400, "bad_request",
                              "bad or oversized request body")
            return
        raw = self.rfile.read(length)
        try:
            command = P.command_from_json(raw)
        except P.ProtocolError as error:
            self._reply_error(400, "protocol", str(error))
            return
        response = execute_command_safely(self.registry, command)
        status = 200
        if isinstance(response, P.ErrorInfo):
            status = STATUS_OF_CODE.get(response.code, 500)
        self._reply(status, response.to_json())


class ServiceServer:
    """The embedded threaded HTTP/JSON trajectory server.

    Args:
        registry: the session registry to serve; a fresh one by
            default.
        host: bind address (loopback by default — put a real proxy in
            front for anything else).
        port: TCP port; ``0`` picks an ephemeral free port.
        verbose: log each request line to stderr.
    """

    def __init__(self, registry: Optional[SessionRegistry] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 verbose: bool = False) -> None:
        self.registry = registry if registry is not None \
            else SessionRegistry()
        handler = type("BoundHandler", (_Handler,),
                       {"registry": self.registry})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    # -- addresses ------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (port resolved when
        ephemeral)."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        """Base URL, e.g. ``http://127.0.0.1:8731``."""
        host, port = self.address
        return "http://{}:{}".format(host, port)

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ServiceServer":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-service", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down and join the serving thread.

        Safe on a never-started server (``shutdown()`` would block
        forever waiting on ``serve_forever``): the socket is closed
        either way.
        """
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join()
            self._thread = None
        self._httpd.server_close()

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI foreground mode)."""
        try:
            self._httpd.serve_forever()
        finally:
            self._httpd.server_close()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
