"""A thin typed client for the trajectory service.

:class:`ServiceClient` speaks the wire protocol over one
**persistent** ``http.client.HTTPConnection`` per thread (no
dependencies): commands go out as canonical JSON on
``POST /v1/call``, replies come back as typed
:mod:`~repro.service.protocol` response objects.  Keeping the
connection alive between calls skips the TCP handshake per request —
against the asyncio front-end one client thread sustains thousands of
calls per second where the old one-connection-per-request transport
topped out near four hundred.  Error replies raise
:class:`~repro.service.protocol.ServiceError` with the same
code/message the in-process :class:`~repro.service.executor
.LocalBinding` raises, so code written against one transport runs
unchanged on the other::

    client = ServiceClient("http://127.0.0.1:8731")
    client.build("louvre", scale=0.05, wait=True)
    page = client.run_query("louvre", query, limit=100)
    for page in client.iter_pages("louvre", query):
        ...
    patterns = client.mine_patterns("louvre", query).patterns
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.parse
from typing import Dict, Iterator, Optional, Tuple

from repro.resilience.policy import Deadline, RetryPolicy
from repro.service import protocol as P

#: Transport failures a dropped/half-closed connection produces.
_RETRYABLE_ERRORS = (ConnectionResetError, BrokenPipeError,
                     http.client.RemoteDisconnected)


def _is_retryable(error: BaseException) -> bool:
    """A transport failure worth one blind retry.

    Raw socket/``http.client`` shapes arrive directly; urllib-style
    wrappers carry the original in ``.reason`` — both are checked so
    callers can classify errors from either transport generation.
    """
    if isinstance(error, _RETRYABLE_ERRORS):
        return True
    reason = getattr(error, "reason", None)
    return isinstance(reason, _RETRYABLE_ERRORS)


class _Transport(threading.local):
    """Per-thread connection state (HTTPConnection is not
    thread-safe; one cached connection per thread keeps the client
    shareable)."""

    connection: Optional[http.client.HTTPConnection] = None
    #: The cached connection has served at least one request — a
    #: failure on it is a stale keep-alive, not a server verdict.
    reused: bool = False


class ServiceClient:
    """Typed HTTP access to one service endpoint.

    Idempotent commands (reads, ``SaveSession``/``RestoreSession`` —
    see :attr:`Command.idempotent
    <repro.service.protocol.Command.idempotent>`) are retried on
    connection resets / server disconnects with **capped exponential
    backoff and full jitter** up to ``retry_attempts`` total
    attempts; exhausting the budget raises
    :class:`~repro.service.protocol.ServiceUnavailable` (an
    ``OSError`` subclass, so legacy transport handling still works)
    carrying the attempt count.  Mutating commands are never blindly
    retried (the first attempt may have been applied).

    The connection is persistent (HTTP/1.1 keep-alive, one per
    calling thread) and transparently reopened when the server has
    idled it out: a retryable failure on a connection that already
    served a request is a *stale keep-alive*, so the request is
    replayed once on a fresh connection — for any command, because
    the stale close predates this request reaching the server.
    Failures on a fresh connection mean the server itself misbehaved
    and fall through to the idempotent-only retry above.

    A command carrying ``deadline_ms`` bounds the whole call: each
    attempt's socket timeout shrinks to the remaining budget and no
    retry sleeps past the deadline.

    Args:
        url: base URL, e.g. ``http://127.0.0.1:8731``.
        timeout: per-request socket timeout in seconds.
        retry_backoff: base backoff in seconds before the first retry
            of an idempotent command; the jittered ceiling doubles
            per attempt (0 disables retries entirely).
        retry_attempts: total attempt budget for idempotent commands
            (1 = no retries).
        retry_cap: upper bound on any single backoff sleep.
        retry_seed: seeds the jitter RNG (deterministic tests).
    """

    def __init__(self, url: str, timeout: float = 30.0,
                 retry_backoff: float = 0.1,
                 retry_attempts: int = 3, retry_cap: float = 2.0,
                 retry_seed: Optional[int] = None) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.retry_backoff = retry_backoff
        self.retry_attempts = max(1, int(retry_attempts))
        self._retry = RetryPolicy(
            attempts=self.retry_attempts,
            base=retry_backoff, cap=retry_cap, seed=retry_seed)
        parts = urllib.parse.urlsplit(self.url)
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(
                "expected an http://host[:port] URL, got {!r}"
                .format(url))
        self._host = parts.hostname
        self._port = parts.port if parts.port is not None else 80
        self._local = _Transport()

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        connection = self._local.connection
        if connection is None:
            connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout)
            self._local.connection = connection
            self._local.reused = False
        return connection

    def _drop_connection(self) -> None:
        connection = self._local.connection
        self._local.connection = None
        self._local.reused = False
        if connection is not None:
            try:
                connection.close()
            except OSError:  # pragma: no cover
                pass

    def close(self) -> None:
        """Drop this thread's cached connection (reopened on
        demand)."""
        self._drop_connection()

    def _once(self, method: str, path: str,
              payload: Optional[bytes],
              timeout: Optional[float] = None) -> Tuple[int, bytes]:
        """One request on the cached connection; drops it on any
        transport failure so the next attempt reconnects."""
        connection = self._connection()
        if timeout is not None and timeout != connection.timeout:
            connection.timeout = timeout
            if connection.sock is not None:
                connection.sock.settimeout(timeout)
        headers = {}
        if payload is not None:
            headers["Content-Type"] = "application/json"
        try:
            connection.request(method, path, body=payload,
                               headers=headers)
            reply = connection.getresponse()
            body = reply.read()
        except (OSError, http.client.HTTPException):
            self._drop_connection()
            raise
        if reply.will_close:
            self._drop_connection()
        else:
            self._local.reused = True
        return reply.status, body

    def _roundtrip(self, method: str, path: str,
                   payload: Optional[bytes] = None,
                   timeout: Optional[float] = None
                   ) -> Tuple[int, bytes]:
        """``_once`` plus the stale-keep-alive replay (see class
        docs)."""
        was_reused = (self._local.connection is not None
                      and self._local.reused)
        try:
            return self._once(method, path, payload, timeout=timeout)
        except OSError as error:
            if was_reused and _is_retryable(error):
                return self._once(method, path, payload,
                                  timeout=timeout)
            raise

    def _post(self, payload: bytes,
              deadline: Optional[Deadline] = None) -> tuple:
        """One ``POST /v1/call``; returns ``(status, body)``."""
        timeout = self.timeout if deadline is None \
            else deadline.clamp(self.timeout)
        return self._roundtrip("POST", "/v1/call", payload,
                               timeout=timeout)

    def call(self, command: P.Command) -> P.Response:
        """POST one command; typed response or raised error.

        Raises:
            ServiceUnavailable: when an idempotent command's retry
                budget is exhausted by retryable transport failures
                (carries the attempt count; also an ``OSError``).
            ServiceError: when the service answers with ``Error`` (any
                HTTP status — the payload decides); the exception
                carries the service code *and* the HTTP status.
            ProtocolError: when the reply is not a protocol object.
            OSError: on transport failures (connection refused, a
                reset on a non-idempotent command, ...).
        """
        payload = command.to_json()
        deadline = Deadline.of(command)
        budget = self.retry_attempts \
            if (command.idempotent and self.retry_backoff > 0) else 1
        attempts = 0
        while True:
            attempts += 1
            try:
                status, raw = self._post(payload, deadline=deadline)
                break
            except OSError as error:
                exhausted = (attempts >= budget
                             or not _is_retryable(error)
                             or (deadline is not None
                                 and deadline.expired))
                if exhausted:
                    if attempts > 1:
                        raise P.ServiceUnavailable(
                            "unavailable",
                            "{} gave no answer: {}".format(
                                self.url, error),
                            attempts=attempts) from error
                    raise
                self._retry.sleep(attempts, deadline)
        response = P.response_from_json(raw)
        if isinstance(response, P.ErrorInfo):
            raise P.ServiceError(response.code, response.message,
                                 http_status=status)
        return response

    def health(self) -> Dict:
        """``GET /v1/health`` — liveness plus the session roster."""
        status, body = self._roundtrip("GET", "/v1/health")
        if status != 200:
            raise P.ServiceError("health", body.decode(
                "utf-8", "replace"), http_status=status)
        return json.loads(body.decode("utf-8"))

    # ------------------------------------------------------------------
    # command sugar (one method per protocol command)
    # ------------------------------------------------------------------
    def build(self, session: str, source: str = "louvre",
              scale: float = 0.05, path: Optional[str] = None,
              workers: int = 0, executor: str = "thread",
              batch_size: int = 512, streaming: bool = True,
              cache: bool = False, wait: bool = False) -> P.JobInfo:
        """Start (or await) a dataset build; returns the job info."""
        return self.call(P.BuildDataset(
            session=session, source=source, scale=scale, path=path,
            workers=workers, executor=executor,
            batch_size=batch_size, streaming=streaming, cache=cache,
            wait=wait))

    def job_status(self, job_id: str) -> P.JobInfo:
        """Poll a build job."""
        return self.call(P.JobStatus(job_id=job_id))

    def wait_for_job(self, job_id: str, timeout: float = 120.0,
                     poll: float = 0.1) -> P.JobInfo:
        """Poll until the job leaves pending/running.

        Raises:
            TimeoutError: when it does not finish within ``timeout``.
        """
        deadline = time.monotonic() + timeout
        while True:
            info = self.job_status(job_id)
            if info.state not in ("pending", "running"):
                return info
            if time.monotonic() > deadline:
                raise TimeoutError(
                    "job {} still {} after {}s".format(
                        job_id, info.state, timeout))
            time.sleep(poll)

    def sessions(self) -> P.SessionList:
        """The session roster."""
        return self.call(P.ListSessions())

    def drop_session(self, session: str) -> P.Dropped:
        """Remove a session."""
        return self.call(P.DropSession(session=session))

    def save_session(self, session: str) -> P.SessionSaved:
        """Checkpoint a session to the server's persist directory."""
        return self.call(P.SaveSession(session=session))

    def restore_session(self, session: str) -> P.SessionInfo:
        """(Re)load a session from the server's persist directory."""
        return self.call(P.RestoreSession(session=session))

    def ingest_documents(self, session: str, docs: list,
                         space: Optional[str] = None) -> P.Ingested:
        """Append pre-built trajectory dicts to a session's store.

        ``space`` is a revivable space token (e.g. ``"LouvreSpace"``
        or a ``SyntheticVenue:...`` token) applied when the session
        has no space model yet.
        """
        return self.call(P.IngestDocuments(
            session=session, docs=list(docs), space=space))

    def run_query(self, session: str, query: Optional[Dict] = None,
                  limit: int = 50, cursor: Optional[str] = None,
                  offset: int = 0, order_by: Optional[str] = None,
                  descending: bool = False,
                  include_total: bool = True,
                  allow_partial: bool = False) -> P.QueryPage:
        """One page of planned-query hits."""
        return self.call(P.RunQuery(
            session=session, query=query, limit=limit, cursor=cursor,
            offset=offset, order_by=order_by, descending=descending,
            include_total=include_total, allow_partial=allow_partial))

    def iter_pages(self, session: str, query: Optional[Dict] = None,
                   limit: int = 200, order_by: Optional[str] = None,
                   descending: bool = False
                   ) -> Iterator[P.QueryPage]:
        """Follow ``next_cursor`` until the result is exhausted."""
        cursor: Optional[str] = None
        while True:
            page = self.run_query(session, query, limit=limit,
                                  cursor=cursor, order_by=order_by,
                                  descending=descending,
                                  include_total=False)
            yield page
            if page.next_cursor is None:
                return
            cursor = page.next_cursor

    def explain(self, session: str,
                query: Optional[Dict] = None) -> P.Explanation:
        """The plan a query compiles to."""
        return self.call(P.Explain(session=session, query=query))

    def mine_patterns(self, session: str,
                      query: Optional[Dict] = None,
                      min_support: float = 0.05,
                      max_length: int = 4) -> P.PatternList:
        """Sequential patterns over a (queried) corpus."""
        return self.call(P.MinePatterns(
            session=session, query=query, min_support=min_support,
            max_length=max_length))

    def similarity(self, session: str,
                   query: Optional[Dict] = None) -> P.SimilarityMatrix:
        """Pairwise similarity matrix over a (queried) corpus."""
        return self.call(P.Similarity(session=session, query=query))

    def flow(self, session: str,
             query: Optional[Dict] = None) -> P.FlowList:
        """Per-cell flow balances over a (queried) corpus."""
        return self.call(P.Flow(session=session, query=query))

    def sequences(self, session: str,
                  query: Optional[Dict] = None) -> P.SequenceList:
        """Distinct state sequences of a (queried) corpus."""
        return self.call(P.Sequences(session=session, query=query))

    def summary(self, session: str,
                query: Optional[Dict] = None) -> P.SummaryStats:
        """Corpus headline numbers."""
        return self.call(P.Summary(session=session, query=query))

    # -- live streams ---------------------------------------------------
    def open_stream(self, session: str, stream: str,
                    gap_seconds: Optional[float] = None,
                    checkpoint_every: int = 64,
                    max_open_events: int = 100_000) -> P.StreamInfo:
        """Open (or re-attach to) a live ingestion stream."""
        return self.call(P.OpenStream(
            session=session, stream=stream, gap_seconds=gap_seconds,
            checkpoint_every=checkpoint_every,
            max_open_events=max_open_events))

    def append_events(self, session: str, stream: str,
                      events: Optional[list] = None,
                      watermark: Optional[float] = None
                      ) -> P.EventsAppended:
        """Append detection events (the reply is the durability
        ack); an empty batch with a watermark is a heartbeat."""
        return self.call(P.AppendEvents(
            session=session, stream=stream,
            events=list(events) if events else [],
            watermark=watermark))

    def stream_status(self, session: str,
                      stream: str) -> P.StreamInfo:
        """Poll a stream's watermark and counters."""
        return self.call(P.StreamStatus(session=session,
                                        stream=stream))

    def close_stream(self, session: str,
                     stream: str) -> P.StreamClosed:
        """Flush and retire a stream."""
        return self.call(P.CloseStream(session=session,
                                       stream=stream))


#: Re-exported here so client users need one import.
ServiceError = P.ServiceError
