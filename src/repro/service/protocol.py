"""The typed wire protocol: dataclass commands and responses.

Every interaction with the service is one *command* — a frozen
dataclass that serializes to a JSON object via :meth:`to_dict` and
back via :func:`command_from_dict` — answered by one *response*
dataclass with the same symmetry.  The protocol reuses the
serializations the lower layers already define
(:meth:`Query.to_dict <repro.storage.query.Query.to_dict>` for query
expressions, :meth:`SemanticTrajectory.to_dict
<repro.core.trajectory.SemanticTrajectory.to_dict>` for hits,
:meth:`SequentialPattern.to_dict
<repro.mining.prefixspan.SequentialPattern.to_dict>` /
:meth:`FlowBalance.to_dict <repro.mining.flow.FlowBalance.to_dict>`
for mining results), so the wire form of a result is byte-identical
to serializing the in-process object.

Pagination is cursor-based and *stable*: a cursor for the natural
document-id order encodes the last id seen, so resuming never skips
or repeats hits even while a background build appends matching
trajectories (new documents only ever sort past the boundary).
Explicitly ordered pages use **keyset cursors** — the boundary is the
``(order-key value, doc id)`` pair of the last hit, and a page is
"everything strictly past the boundary in sort order" — so ordered
walks neither skip nor repeat a document under concurrent ingestion
either.  Cursors carry a fingerprint of ``(query, order)`` and are
rejected when replayed against a different query.

Wire framing (the HTTP server POSTs one JSON object per call)::

    {"v": 1, "command": "RunQuery", "session": "louvre", ...}
    {"v": 1, "response": "QueryPage", "hits": [...], ...}

See ``docs/service.md`` for the full reference with curl examples.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Mapping, Optional, Tuple, Type

from repro.core.trajectory import SemanticTrajectory
from repro.mining.flow import FlowBalance
from repro.mining.prefixspan import SequentialPattern
from repro.pipeline.metrics import PipelineMetrics

#: Protocol revision; bump on incompatible message changes.
PROTOCOL_VERSION = 1


class ProtocolError(ValueError):
    """A message that does not parse as a protocol object."""


class ServiceError(RuntimeError):
    """A call that the service answered with an ``Error`` response.

    Raised identically by the in-process :class:`~repro.service
    .executor.LocalBinding` and the HTTP
    :class:`~repro.service.client.ServiceClient`, so callers handle
    failures the same way on both transports.

    Attributes:
        code: the machine-matchable error code.
        message: the human-readable detail.
        http_status: the HTTP status that carried the error, when it
            travelled over the wire (``None`` in-process) — surfaced
            in the exception text so a log line alone identifies
            both the service code and the transport status.
        attempts: how many transport attempts the client made before
            giving up (``None`` when the call did not involve a
            retrying client) — also surfaced in the text.
    """

    def __init__(self, code: str, message: str,
                 http_status: Optional[int] = None,
                 attempts: Optional[int] = None) -> None:
        if http_status is None:
            text = "{}: {}".format(code, message)
        else:
            text = "{} [HTTP {}]: {}".format(code, http_status,
                                             message)
        if attempts is not None:
            text += " (after {} attempt{})".format(
                attempts, "" if attempts == 1 else "s")
        super().__init__(text)
        self.code = code
        self.message = message
        self.http_status = http_status
        self.attempts = attempts


class ServiceUnavailable(ServiceError, ConnectionError):
    """The transport failed and every retry was exhausted.

    Subclasses both :class:`ServiceError` (it is a typed service
    failure, code ``unavailable``) and :class:`ConnectionError` (so
    pre-existing ``except OSError`` transport handling still catches
    it).  Raised by the retrying HTTP client, never by a server.
    """


def canonical_json(data: object) -> bytes:
    """The protocol's one JSON encoding: sorted keys, no whitespace.

    Both endpoints encode with this, which is what makes "byte
    identical results over the wire and in process" a meaningful
    guarantee (and cursors/fingerprints deterministic).
    """
    return json.dumps(data, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


# ----------------------------------------------------------------------
# message plumbing
# ----------------------------------------------------------------------
COMMANDS: Dict[str, Type["Command"]] = {}
RESPONSES: Dict[str, Type["Response"]] = {}


class _Message:
    """Shared to_dict/from_dict over the subclass's dataclass fields.

    Field values must be JSON-native; messages holding richer objects
    (trajectories, patterns) override ``to_dict``/``_from_fields``.
    """

    kind: str = ""
    _tag: str = ""  # "command" or "response"

    def to_dict(self) -> Dict:
        """JSON-safe plain-data form, tagged with kind and version."""
        data: Dict = {"v": PROTOCOL_VERSION, self._tag: self.kind}
        for spec in fields(self):  # type: ignore[arg-type]
            data[spec.name] = getattr(self, spec.name)
        return data

    def to_json(self) -> bytes:
        """Canonical JSON bytes of :meth:`to_dict`."""
        return canonical_json(self.to_dict())

    @classmethod
    def _from_fields(cls, data: Mapping) -> "_Message":
        known = {spec.name for spec in fields(cls)}  # type: ignore[arg-type]
        kwargs = {key: value for key, value in data.items()
                  if key in known}
        try:
            return cls(**kwargs)  # type: ignore[call-arg]
        except TypeError as error:
            raise ProtocolError(
                "bad {} payload for {}: {}".format(cls._tag, cls.kind,
                                                   error))


def _parse(data: Mapping, tag: str,
           registry: Dict[str, Type["_Message"]]) -> "_Message":
    if not isinstance(data, Mapping):
        raise ProtocolError("a protocol message must be a JSON object")
    version = data.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "unsupported protocol version {!r} (this build speaks "
            "{})".format(version, PROTOCOL_VERSION))
    kind = data.get(tag)
    if kind not in registry:
        raise ProtocolError("unknown {} {!r}; one of: {}".format(
            tag, kind, ", ".join(sorted(registry))))
    return registry[kind]._from_fields(data)


def command_from_dict(data: Mapping) -> "Command":
    """Parse a command object from plain data.

    The ``deadline_ms`` envelope key — the remaining time budget, not
    a dataclass field — is re-applied after parsing so the budget
    survives the wire.

    Raises:
        ProtocolError: on version/kind/payload mismatch.
    """
    command = _parse(data, "command", COMMANDS)
    ms = data.get("deadline_ms")
    if ms is not None:
        if not isinstance(ms, int) or isinstance(ms, bool) or ms < 0:
            raise ProtocolError(
                "deadline_ms must be a non-negative integer, got "
                "{!r}".format(ms))
        object.__setattr__(command, "deadline_ms", ms)
    return command  # type: ignore[return-value]


def response_from_dict(data: Mapping) -> "Response":
    """Parse a response object from plain data.

    Raises:
        ProtocolError: on version/kind/payload mismatch.
    """
    return _parse(data, "response", RESPONSES)  # type: ignore[return-value]


def _from_json(raw: bytes, parse) -> "_Message":
    try:
        data = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError("undecodable message: {}".format(error))
    return parse(data)


def command_from_json(raw: bytes) -> "Command":
    """Bytes → command (inverse of :meth:`Command.to_json`)."""
    return _from_json(raw, command_from_dict)  # type: ignore[return-value]


def response_from_json(raw: bytes) -> "Response":
    """Bytes → response (inverse of :meth:`Response.to_json`)."""
    return _from_json(raw, response_from_dict)  # type: ignore[return-value]


class Command(_Message):
    """Base class of every request message.

    ``idempotent`` marks commands that are safe to retry blindly on a
    dropped connection (reads, and persistence operations that
    converge): the HTTP client retries exactly those, within its
    attempt budget.  Mutating commands (``BuildDataset``,
    ``DropSession``) stay ``False`` — a retry could double-ingest or
    mask a real state change.

    ``deadline_ms`` is the command's remaining time budget in
    milliseconds — an *envelope* attribute, not a dataclass field, so
    ``dataclasses.replace`` derivatives (cursor follow-ups) do not
    inherit a stale budget; whoever forwards a command re-stamps the
    remaining time via :meth:`with_deadline`.  ``None`` (the default)
    means unbounded, and is not serialized, keeping deadline-less
    wire bytes identical to protocol revision 1 clients.
    """

    _tag = "command"
    idempotent: bool = False
    deadline_ms: Optional[int] = None

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        COMMANDS[cls.kind] = cls

    def to_dict(self) -> Dict:
        data = super().to_dict()
        if self.deadline_ms is not None:
            data["deadline_ms"] = self.deadline_ms
        return data

    def with_deadline(self, deadline_ms: Optional[int]) -> "Command":
        """A copy of this command carrying ``deadline_ms`` budget."""
        clone = replace(self)  # type: ignore[type-var]
        object.__setattr__(clone, "deadline_ms", deadline_ms)
        return clone


class Response(_Message):
    """Base class of every reply message."""

    _tag = "response"

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        RESPONSES[cls.kind] = cls


# ----------------------------------------------------------------------
# cursors
# ----------------------------------------------------------------------
def page_fingerprint(query: Optional[Mapping], order_by: Optional[str],
                     descending: bool) -> str:
    """Digest identifying one (query, ordering) pagination stream."""
    raw = canonical_json({"q": query, "ob": order_by,
                          "d": bool(descending)})
    return hashlib.sha256(raw).hexdigest()[:12]


def encode_cursor(payload: Mapping) -> str:
    """Opaque, URL-safe cursor token from plain data."""
    return base64.urlsafe_b64encode(
        canonical_json(payload)).decode("ascii").rstrip("=")


def decode_cursor(token: str) -> Dict:
    """Inverse of :func:`encode_cursor`.

    Raises:
        ProtocolError: for a token that is not one of ours.
    """
    padded = token + "=" * (-len(token) % 4)
    try:
        data = json.loads(base64.urlsafe_b64decode(
            padded.encode("ascii")).decode("utf-8"))
    except (binascii.Error, UnicodeError, ValueError):
        raise ProtocolError("malformed cursor {!r}".format(token))
    if not isinstance(data, dict) or "f" not in data:
        raise ProtocolError("malformed cursor {!r}".format(token))
    return data


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BuildDataset(Command):
    """Create (or extend) a named session by running the build
    pipeline over a record source.

    Attributes:
        session: session name, e.g. ``louvre@0.1``.
        source: ``"louvre"`` (synthetic corpus) or ``"csv"``.
        scale: corpus scale for the louvre source.
        path: detection-CSV path for the csv source.
        workers / executor / batch_size / streaming / cache: forwarded
            to the parallel pipeline engine (PR 3 semantics).
        wait: block until the build finishes instead of returning a
            job handle immediately.
    """

    kind = "BuildDataset"

    session: str
    source: str = "louvre"
    scale: float = 0.05
    path: Optional[str] = None
    workers: int = 0
    executor: str = "thread"
    batch_size: int = 512
    streaming: bool = True
    cache: bool = False
    wait: bool = False


@dataclass(frozen=True)
class JobStatus(Command):
    """Poll a background build job by id."""

    kind = "JobStatus"
    idempotent = True

    job_id: str


@dataclass(frozen=True)
class ListSessions(Command):
    """Enumerate the registry's sessions."""

    kind = "ListSessions"
    idempotent = True


@dataclass(frozen=True)
class DropSession(Command):
    """Remove a session (and its store) from the registry.

    In a durable registry the session's on-disk home is removed as
    well — dropping means *gone*, not "resurrected on the next
    restart with a rebuild appended on top".
    """

    kind = "DropSession"

    session: str


@dataclass(frozen=True)
class RunQuery(Command):
    """Execute a planned query and return one page of hits.

    Attributes:
        session: the session to query.
        query: a serialized expression tree
            (:meth:`Query.to_dict <repro.storage.query.Query.to_dict>`
            payload, i.e. ``{"expr": {...}}``); ``None`` matches the
            whole corpus.
        limit: page size (server caps apply).
        cursor: resume token from a previous page's ``next_cursor``.
        offset: hits to skip (first page only; cursors already carry
            their position).
        order_by / descending: explicit ordering by a
            :data:`~repro.storage.results.ORDER_KEYS` field name;
            default is natural document-id order.  Both orderings
            paginate with ingestion-stable cursors: natural order
            resumes past the last doc id, explicit orderings resume
            past the last ``(order-key, doc id)`` keyset boundary.
        include_total: also count the full result (index-only when
            the plan allows).  Computed on the cursor-less first
            page only — follow-up pages always report ``total:
            null`` so paginating never re-executes the plan per
            page.
        allow_partial: on a sharded engine, opt into degraded
            results: when some shards are unreachable the reply
            merges the live shards and carries a ``degraded``
            annotation instead of failing (see
            ``docs/resilience.md``).  Ignored by a single-process
            executor, which has no shards to lose.
    """

    kind = "RunQuery"
    idempotent = True

    session: str
    query: Optional[Dict] = None
    limit: int = 50
    cursor: Optional[str] = None
    offset: int = 0
    order_by: Optional[str] = None
    descending: bool = False
    include_total: bool = True
    allow_partial: bool = False


@dataclass(frozen=True)
class Explain(Command):
    """The selectivity-ordered physical plan a query compiles to."""

    kind = "Explain"
    idempotent = True

    session: str
    query: Optional[Dict] = None


@dataclass(frozen=True)
class MinePatterns(Command):
    """PrefixSpan sequential patterns over a (queried) corpus."""

    kind = "MinePatterns"
    idempotent = True

    session: str
    query: Optional[Dict] = None
    min_support: float = 0.05
    max_length: int = 4


@dataclass(frozen=True)
class Similarity(Command):
    """Pairwise trajectory similarity matrix over a (queried)
    corpus."""

    kind = "Similarity"
    idempotent = True

    session: str
    query: Optional[Dict] = None


@dataclass(frozen=True)
class Flow(Command):
    """Per-cell flow balances over a (queried) corpus."""

    kind = "Flow"
    idempotent = True

    session: str
    query: Optional[Dict] = None
    allow_partial: bool = False


@dataclass(frozen=True)
class Sequences(Command):
    """Distinct state sequences of a (queried) corpus."""

    kind = "Sequences"
    idempotent = True

    session: str
    query: Optional[Dict] = None
    allow_partial: bool = False


@dataclass(frozen=True)
class Summary(Command):
    """Section 4.1-style corpus headline numbers."""

    kind = "Summary"
    idempotent = True

    session: str
    query: Optional[Dict] = None
    allow_partial: bool = False


@dataclass(frozen=True)
class SaveSession(Command):
    """Checkpoint a session's corpus to the server's persist
    directory: write a fresh snapshot and fold the append log into it
    (``compact``).  Idempotent — re-saving an unchanged session just
    writes an equivalent snapshot.

    The server chooses the path (its ``persist_dir``); clients never
    supply filesystem locations over the wire.
    """

    kind = "SaveSession"
    idempotent = True

    session: str


@dataclass(frozen=True)
class RestoreSession(Command):
    """(Re)load a session from the server's persist directory —
    snapshot plus append-log replay — replacing whatever the registry
    holds in memory under that name."""

    kind = "RestoreSession"
    idempotent = True

    session: str


@dataclass(frozen=True)
class IngestDocuments(Command):
    """Append already-built trajectories to a session's store.

    The shard coordinator's fan-out primitive: the coordinator runs
    the build pipeline once, routes each document by global id, and
    ships each shard its subset as serialized trajectories
    (:meth:`SemanticTrajectory.to_dict
    <repro.core.trajectory.SemanticTrajectory.to_dict>` payloads).
    An empty ``docs`` list is valid and creates the session (with
    ``space``, when given) without ingesting anything.

    Not idempotent: replaying an ingest duplicates documents.
    """

    kind = "IngestDocuments"

    session: str
    docs: List[Dict] = field(default_factory=list)
    space: Optional[str] = None


@dataclass(frozen=True)
class CountPatterns(Command):
    """Exact support counts for explicit patterns over a (queried)
    corpus.

    The combine half of distributed PrefixSpan: the coordinator mines
    per-shard candidates with a lowered local threshold, unions them,
    and recounts every candidate on every shard with this command so
    global supports are exact.  With ``patterns == []`` it degrades
    to a sequence-count probe (the denominator for fractional
    ``min_support``).
    """

    kind = "CountPatterns"
    idempotent = True

    session: str
    query: Optional[Dict] = None
    patterns: List[List[str]] = field(default_factory=list)


@dataclass(frozen=True)
class SimilarityBlock(Command):
    """Rows ``[row_start, row_end)`` of the similarity matrix over an
    explicit sequence list.

    The partition unit of the sharded ``Similarity`` command: each
    pair's score depends only on the two sequences and the session's
    zone hierarchy, so a row block computed against the full column
    set is exactly the corresponding rows of the full matrix.
    """

    kind = "SimilarityBlock"
    idempotent = True

    session: str
    sequences: List[List[str]] = field(default_factory=list)
    row_start: int = 0
    row_end: int = 0


@dataclass(frozen=True)
class SummaryParts(Command):
    """The combinable pieces of ``Summary`` over a (queried) corpus.

    Unlike ``Summary`` itself, the reply carries the distinct
    moving-object ids, so a coordinator can union visitor sets across
    shards instead of incorrectly summing per-shard distinct counts.
    """

    kind = "SummaryParts"
    idempotent = True

    session: str
    query: Optional[Dict] = None


@dataclass(frozen=True)
class OpenStream(Command):
    """Open (or re-attach to) a live ingestion stream on a session.

    The session is created on first use, exactly like a build.  On a
    durable registry the stream gets an event journal + checkpoint
    sidecar under the session's directory, so acked events survive
    ``kill -9`` (see ``docs/streaming.md``).  Re-opening an existing
    stream returns its current state unchanged — the shape arguments
    of the first open win — which is what makes the command
    idempotent.

    Attributes:
        session: target session name.
        stream: stream name, unique within the session.
        gap_seconds: inactivity gap that closes an episode (default:
            the builder's 4-hour visit gap).
        checkpoint_every: fold the event journal into a state
            snapshot every N closed episodes.
        max_open_events: back-pressure bound — an append that would
            exceed this many buffered (not-yet-closed) events is
            rejected with ``overloaded``.
        relay: coordinator-internal mode — the stream segments and
            journals locally but hands closed episodes back in its
            acks (``EventsAppended.episodes``) instead of storing
            them, so a shard coordinator can route them by global id.
            Delivery is at-least-once; the harvester deduplicates by
            canonical content.
    """

    kind = "OpenStream"
    idempotent = True

    session: str
    stream: str
    gap_seconds: Optional[float] = None
    checkpoint_every: int = 64
    max_open_events: int = 100_000
    relay: bool = False


@dataclass(frozen=True)
class AppendEvents(Command):
    """Append detection events to an open stream.

    ``events`` are wire-form detection records (``mo_id``, ``state``,
    ``t_start``, ``t_end``, optional ``visit_id``/``attributes``);
    ``watermark`` asserts that no future event starts before it,
    letting the segmenter close episodes whose inactivity gap the
    watermark has passed.  An empty ``events`` list with a watermark
    is the heartbeat that drains a quiet stream.

    The reply is the durability ack: events are journaled before it
    is sent.  Not idempotent — replaying an append re-ingests the
    events.
    """

    kind = "AppendEvents"

    session: str
    stream: str
    events: List[Dict] = field(default_factory=list)
    watermark: Optional[float] = None


@dataclass(frozen=True)
class StreamStatus(Command):
    """Poll a stream's watermark, buffers and counters."""

    kind = "StreamStatus"
    idempotent = True

    session: str
    stream: str


@dataclass(frozen=True)
class CloseStream(Command):
    """Flush a stream's open episodes into the store and retire it.

    Not idempotent: a second close answers ``unknown_stream``."""

    kind = "CloseStream"

    session: str
    stream: str


@dataclass(frozen=True)
class StoreStats(Command):
    """A session store's planner statistics (cardinalities, span).

    Every field is additive over disjoint document sets, so a
    coordinator can sum per-shard replies into the statistics of the
    logical corpus and run the query planner — hence ``Explain`` —
    without fetching a single document.
    """

    kind = "StoreStats"
    idempotent = True

    session: str


# ----------------------------------------------------------------------
# responses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ErrorInfo(Response):
    """The failure reply; ``code`` is machine-matchable.

    Codes: ``bad_request``, ``protocol``, ``unknown_session``,
    ``unknown_job``, ``unknown_stream`` (stream never opened or
    already closed), ``bad_cursor``, ``unserializable``,
    ``not_found`` (unknown HTTP path), ``persistence`` (durable
    storage failure: no persist dir, unwritable disk, corrupt
    snapshot), ``deadline_exceeded`` (the command's propagated
    ``deadline_ms`` budget ran out), ``overloaded`` (a stream append
    was shed by back-pressure — retry after the watermark advances),
    ``unavailable`` (every replica of a required shard failed or the
    transport exhausted its retries), ``internal``.
    """

    kind = "Error"

    code: str
    message: str


@dataclass(frozen=True)
class JobInfo(Response):
    """A build job's state (reply to ``BuildDataset`` and
    ``JobStatus``).

    Attributes:
        job_id: registry-assigned id, stable across polls.
        session: the session the job builds into.
        state: ``pending`` / ``running`` / ``done`` / ``failed``.
        error: failure message when ``state == "failed"``.
        metrics: live :meth:`PipelineMetrics.as_dict
            <repro.pipeline.metrics.PipelineMetrics.as_dict>` snapshot
            (per-stage items in/out, drops, seconds) — progress while
            running, totals once done.
    """

    kind = "JobInfo"

    job_id: str
    session: str
    state: str
    error: Optional[str] = None
    metrics: Optional[Dict] = None

    @staticmethod
    def metrics_dict(metrics: Optional[PipelineMetrics]
                     ) -> Optional[Dict]:
        """A JSON-safe snapshot of live pipeline metrics."""
        return None if metrics is None else metrics.as_dict()


@dataclass(frozen=True)
class SessionInfo(Response):
    """One session's headline state (also nested in
    ``SessionList``)."""

    kind = "SessionInfo"

    name: str
    trajectories: int
    state: str
    space: Optional[str] = None


@dataclass(frozen=True)
class SessionList(Response):
    """Reply to ``ListSessions``."""

    kind = "SessionList"

    sessions: List[SessionInfo] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {"v": PROTOCOL_VERSION, self._tag: self.kind,
                "sessions": [s.to_dict() for s in self.sessions]}

    @classmethod
    def _from_fields(cls, data: Mapping) -> "SessionList":
        try:
            sessions = [SessionInfo._from_fields(item)
                        for item in data.get("sessions", ())]
        except (TypeError, AttributeError):
            raise ProtocolError("bad SessionList payload")
        return cls(sessions=sessions)


@dataclass(frozen=True)
class Dropped(Response):
    """Reply to ``DropSession``."""

    kind = "Dropped"

    session: str


@dataclass(frozen=True)
class SessionSaved(Response):
    """Reply to ``SaveSession``: what the checkpoint wrote.

    Attributes:
        session: the session that was saved.
        snapshot: the snapshot generation name (``snapshot-N``).
        trajectories: documents the snapshot holds.
        total_bytes: sum of the snapshot's segment sizes.
    """

    kind = "SessionSaved"

    session: str
    snapshot: str
    trajectories: int
    total_bytes: int


@dataclass(frozen=True)
class Hit(Response):
    """One query hit: a stored trajectory with its document id."""

    kind = "Hit"

    doc_id: int
    trajectory: SemanticTrajectory

    def to_dict(self) -> Dict:
        return {"v": PROTOCOL_VERSION, self._tag: self.kind,
                "doc_id": self.doc_id,
                "trajectory": self.trajectory.to_dict()}

    @classmethod
    def _from_fields(cls, data: Mapping) -> "Hit":
        try:
            return cls(doc_id=int(data["doc_id"]),
                       trajectory=SemanticTrajectory.from_dict(
                           data["trajectory"]))
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError("bad Hit payload: {}".format(error))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hit):
            return NotImplemented
        return (self.doc_id == other.doc_id
                and self.trajectory.to_dict()
                == other.trajectory.to_dict())

    def __hash__(self) -> int:
        # Consistent with __eq__ (the dataclass-generated hash would
        # diverge on equal-but-distinct trajectory instances).
        return hash((self.doc_id,
                     canonical_json(self.trajectory.to_dict())))


@dataclass(frozen=True)
class QueryPage(Response):
    """One page of query hits plus the cursor to the next.

    ``next_cursor`` is ``None`` on the last page.  ``total`` is the
    full (un-paginated) match count, reported on the cursor-less
    first page only (see ``RunQuery.include_total``).

    ``degraded`` is only present (and only serialized) when the page
    was assembled under ``allow_partial`` with shards missing:
    ``{"missing_shards": [...]}``.  A page without it is complete —
    byte-identical to the unsharded executor's answer.
    """

    kind = "QueryPage"

    hits: List[Hit] = field(default_factory=list)
    total: Optional[int] = None
    next_cursor: Optional[str] = None
    degraded: Optional[Dict] = None

    def to_dict(self) -> Dict:
        data = {"v": PROTOCOL_VERSION, self._tag: self.kind,
                "hits": [h.to_dict() for h in self.hits],
                "total": self.total,
                "next_cursor": self.next_cursor}
        if self.degraded is not None:
            data["degraded"] = self.degraded
        return data

    @classmethod
    def _from_fields(cls, data: Mapping) -> "QueryPage":
        try:
            hits = [Hit._from_fields(item)
                    for item in data.get("hits", ())]
        except (TypeError, AttributeError):
            raise ProtocolError("bad QueryPage payload")
        total = data.get("total")
        return cls(hits=hits,
                   total=None if total is None else int(total),
                   next_cursor=data.get("next_cursor"),
                   degraded=data.get("degraded"))


@dataclass(frozen=True)
class Explanation(Response):
    """Reply to ``Explain``: the rendered physical plan."""

    kind = "Explanation"

    plan: str


@dataclass(frozen=True)
class PatternList(Response):
    """Reply to ``MinePatterns``."""

    kind = "PatternList"

    patterns: List[SequentialPattern] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {"v": PROTOCOL_VERSION, self._tag: self.kind,
                "patterns": [p.to_dict() for p in self.patterns]}

    @classmethod
    def _from_fields(cls, data: Mapping) -> "PatternList":
        try:
            patterns = [SequentialPattern.from_dict(item)
                        for item in data.get("patterns", ())]
        except (KeyError, TypeError, AttributeError):
            raise ProtocolError("bad PatternList payload")
        return cls(patterns=patterns)


@dataclass(frozen=True)
class SimilarityMatrix(Response):
    """Reply to ``Similarity``: the symmetric pairwise matrix."""

    kind = "SimilarityMatrix"

    matrix: List[List[float]] = field(default_factory=list)


@dataclass(frozen=True)
class FlowList(Response):
    """Reply to ``Flow``."""

    kind = "FlowList"

    balances: List[FlowBalance] = field(default_factory=list)
    degraded: Optional[Dict] = None

    def to_dict(self) -> Dict:
        data = {"v": PROTOCOL_VERSION, self._tag: self.kind,
                "balances": [b.to_dict() for b in self.balances]}
        if self.degraded is not None:
            data["degraded"] = self.degraded
        return data

    @classmethod
    def _from_fields(cls, data: Mapping) -> "FlowList":
        try:
            balances = [FlowBalance.from_dict(item)
                        for item in data.get("balances", ())]
        except (KeyError, TypeError, AttributeError):
            raise ProtocolError("bad FlowList payload")
        return cls(balances=balances, degraded=data.get("degraded"))


@dataclass(frozen=True)
class SequenceList(Response):
    """Reply to ``Sequences``."""

    kind = "SequenceList"

    sequences: List[List[str]] = field(default_factory=list)
    degraded: Optional[Dict] = None

    def to_dict(self) -> Dict:
        data = {"v": PROTOCOL_VERSION, self._tag: self.kind,
                "sequences": self.sequences}
        if self.degraded is not None:
            data["degraded"] = self.degraded
        return data


@dataclass(frozen=True)
class SummaryStats(Response):
    """Reply to ``Summary``."""

    kind = "SummaryStats"

    stats: Dict[str, float] = field(default_factory=dict)
    degraded: Optional[Dict] = None

    def to_dict(self) -> Dict:
        data = {"v": PROTOCOL_VERSION, self._tag: self.kind,
                "stats": self.stats}
        if self.degraded is not None:
            data["degraded"] = self.degraded
        return data


@dataclass(frozen=True)
class Ingested(Response):
    """Reply to ``IngestDocuments``.

    Attributes:
        session: the session ingested into.
        count: documents appended by this command.
        total: documents the store holds afterwards.
    """

    kind = "Ingested"

    session: str
    count: int
    total: int


@dataclass(frozen=True)
class PatternSupports(Response):
    """Reply to ``CountPatterns``.

    ``supports[i]`` is the exact support of ``patterns[i]`` from the
    command; ``sequences`` is the corpus sequence count (the
    fractional-support denominator).
    """

    kind = "PatternSupports"

    supports: List[int] = field(default_factory=list)
    sequences: int = 0


@dataclass(frozen=True)
class SimilarityRows(Response):
    """Reply to ``SimilarityBlock``: the requested row block."""

    kind = "SimilarityRows"

    rows: List[List[float]] = field(default_factory=list)


@dataclass(frozen=True)
class SummaryPartsInfo(Response):
    """Reply to ``SummaryParts``: combinable summary pieces.

    ``mo_ids`` lists the distinct moving-object ids (sorted);
    durations are ``None`` when the corpus slice is empty.
    """

    kind = "SummaryPartsInfo"

    visits: int = 0
    mo_ids: List[str] = field(default_factory=list)
    detections: int = 0
    transitions: int = 0
    max_visit_duration: Optional[float] = None
    min_visit_duration: Optional[float] = None


@dataclass(frozen=True)
class StreamInfo(Response):
    """Reply to ``OpenStream`` and ``StreamStatus``.

    ``status`` is the stream's JSON-native state snapshot: watermark
    (``null`` until first advanced), ``open_buffers`` /
    ``open_events`` (live segmenter buffers), the segmenter's
    accept/drop metrics, the durability counters (``events_acked``,
    ``episodes_stored``, ``checkpoints``) and the back-pressure bound
    ``max_open_events``.
    """

    kind = "StreamInfo"

    session: str
    stream: str
    status: Dict = field(default_factory=dict)


@dataclass(frozen=True)
class EventsAppended(Response):
    """Reply to ``AppendEvents`` — the durability acknowledgement.

    Attributes:
        session / stream: where the events landed.
        appended: events accepted by this call (all-or-nothing).
        episodes_closed: episodes this batch (or its watermark)
            completed and stored.
        watermark: the stream's watermark after the append.
        open_events: events still buffered in open episodes — the
            client-visible back-pressure signal.
        seq: the journal sequence that made the batch durable (0 on
            a memory-only registry).
        episodes: relay streams only — every closed episode not yet
            handed to the harvester, as wire-form trajectory dicts
            (empty on normal streams, which store episodes locally).
    """

    kind = "EventsAppended"

    session: str
    stream: str
    appended: int = 0
    episodes_closed: int = 0
    watermark: Optional[float] = None
    open_events: int = 0
    seq: int = 0
    episodes: List[Dict] = field(default_factory=list)


@dataclass(frozen=True)
class StreamClosed(Response):
    """Reply to ``CloseStream``.

    Attributes:
        episodes_closed: episodes the final flush completed.
        episodes_total: episodes the stream stored over its life.
        events_acked: events the stream acknowledged over its life.
        episodes: relay streams only — the final flush's undelivered
            episodes for the harvester (see ``EventsAppended``).
    """

    kind = "StreamClosed"

    session: str
    stream: str
    episodes_closed: int = 0
    episodes_total: int = 0
    events_acked: int = 0
    episodes: List[Dict] = field(default_factory=list)


@dataclass(frozen=True)
class StoreStatsInfo(Response):
    """Reply to ``StoreStats``: additive planner statistics.

    ``annotations`` is a list of ``[kind, value, count]`` triples
    (enum kinds carried by value); ``time_span`` is ``[t_min,
    t_max]`` or ``None`` for an empty store.
    """

    kind = "StoreStatsInfo"

    doc_count: int = 0
    states: Dict[str, int] = field(default_factory=dict)
    annotations: List[List] = field(default_factory=list)
    mos: Dict[str, int] = field(default_factory=dict)
    time_span: Optional[List[float]] = None
