"""The service layer: the reproduction as an addressable system.

Everything PR 1–3 made fast and composable — the streaming pipeline
engine, the cost-based planned queries, the mining layer — is exposed
here as a *service*: named multi-dataset sessions, a typed JSON wire
protocol, and an embedded threaded HTTP server, all on the standard
library only.

* :mod:`repro.service.protocol` — dataclass commands and responses
  (``BuildDataset``, ``RunQuery``, ``Explain``, ``MinePatterns``,
  ``Similarity``, ``Flow``, ``Sequences``, …) that round-trip through
  JSON, plus stable cursor-based pagination;
* :mod:`repro.service.registry` — :class:`SessionRegistry`, named
  independently-configured datasets with background build jobs over
  the parallel pipeline engine and live
  :class:`~repro.pipeline.metrics.PipelineMetrics` progress; give it
  a ``persist_dir`` and sessions become durable (journaled builds,
  auto-checkpoints, restore-on-restart — ``repro.persist``);
* :mod:`repro.service.executor` — the one implementation of every
  command; :class:`LocalBinding` runs it in-process (this is what
  :class:`~repro.api.Workbench` is sugar over), the server runs the
  same functions behind HTTP;
* :mod:`repro.service.wire` — the shared bytes-in/bytes-out request
  path (:func:`~repro.service.wire.execute_json`) plus the versioned
  :class:`~repro.service.wire.ResponseCache`, which is what keeps
  every front-end byte-identical;
* :mod:`repro.service.aserver` — the asyncio front-end
  (:class:`AsyncServiceServer`): keep-alive + pipelined HTTP/1.1 on
  one event loop bridging into a bounded worker pool, with 503
  load-shedding when saturated — the default server;
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  legacy threaded ``http.server`` endpoint and the thin persistent
  keep-alive client.

See ``docs/service.md`` for the protocol reference and curl examples.
"""

from repro.service.aserver import AsyncServiceServer
from repro.service.client import ServiceClient, ServiceError
from repro.service.executor import (
    LocalBinding,
    execute_command,
    execute_command_safely,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    command_from_dict,
    command_from_json,
    response_from_dict,
    response_from_json,
)
from repro.service.registry import BuildJob, JobState, Session, SessionRegistry
from repro.service.server import ServiceServer
from repro.service.wire import ResponseCache, execute_json

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "command_from_dict",
    "command_from_json",
    "response_from_dict",
    "response_from_json",
    "BuildJob",
    "JobState",
    "Session",
    "SessionRegistry",
    "LocalBinding",
    "execute_command",
    "execute_command_safely",
    "ServiceServer",
    "AsyncServiceServer",
    "ResponseCache",
    "execute_json",
    "ServiceClient",
    "ServiceError",
]
