"""The wire boundary shared by every HTTP front-end.

:func:`execute_json` is the one bytes-in/``(status, bytes)``-out
implementation of ``POST /v1/call``: parse the body as a protocol
command, execute it through :func:`~repro.service.executor
.execute_command_safely`, map the error code to an HTTP status, and
serialize the response to canonical JSON.  The threaded server
(:mod:`repro.service.server`), the asyncio server
(:mod:`repro.service.aserver`) and :meth:`LocalBinding.call_json
<repro.service.executor.LocalBinding.call_json>` all call it, which
is what keeps the three transports byte-identical by construction.

It optionally consults a :class:`ResponseCache`: a bounded LRU of
full response payloads for *read* commands, keyed on the raw request
bytes and stamped with the target store's ``(serial, version)``
identity (:attr:`~repro.storage.store.TrajectoryStore.version`).
Because the store is insert-only and bumps its version on every
write, a stamp match proves the cached bytes are exactly what
re-executing the command would produce — the cache can never serve a
stale page, only skip redundant work.  On this service's hot path
(repeated dashboard/pagination queries against a corpus that changes
far less often than it is read) a hit turns ~1 ms of plan + execute +
serialize into a dictionary lookup.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro import __version__
from repro.service import protocol as P
from repro.service.executor import run_command_safely
from repro.service.registry import SessionRegistry, UnknownSessionError

#: Error code → HTTP status of the reply carrying it.
STATUS_OF_CODE = {
    "bad_request": 400,
    "protocol": 400,
    "bad_cursor": 400,
    "unserializable": 400,
    "not_found": 404,
    "unknown_session": 404,
    "unknown_job": 404,
    "unknown_stream": 404,
    "persistence": 500,
    "internal": 500,
    # Front-end-generated (never by the executor): load shedding.
    "saturated": 503,
    # Stream back-pressure: an append exceeded the stream's
    # open-event bound; retry after the watermark advances.
    "overloaded": 503,
    # Resilience layer: every replica of a shard failed / the
    # propagated deadline ran out.
    "unavailable": 503,
    "deadline_exceeded": 504,
}

#: Commands whose responses are pure functions of one session's store
#: state — the only ones the response cache may hold.  Job/session
#: lifecycle commands (and anything mutating) are never cached.
CACHEABLE_KINDS = frozenset({
    "RunQuery", "Explain", "MinePatterns", "Similarity", "Flow",
    "Sequences", "Summary",
})


class ResponseCache:
    """Versioned LRU over serialized read-command responses.

    Entries are keyed on the **raw request bytes** (no parse needed on
    a hit) and carry the validity stamp captured *before* the command
    executed: the target session's name plus its store's
    ``(serial, version)`` and the identity of its space model.  A hit
    is served only while the live session still matches the stamp;
    any ingestion (version bump), session swap (new store serial) or
    space assignment invalidates transparently.

    Thread-safe; bounded by entry count and total payload bytes
    (oldest entries evicted first).
    """

    def __init__(self, max_entries: int = 256,
                 max_bytes: int = 64 * 1024 * 1024) -> None:
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[bytes, Tuple]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # -- stamping -------------------------------------------------------
    @staticmethod
    def stamp(registry: SessionRegistry,
              session: Optional[str]) -> Optional[Tuple]:
        """The validity stamp of ``session`` right now (None when the
        session does not resolve — such commands are not cached).

        The space component is the workbench's monotonic
        ``space_generation`` counter, not ``id(space)``: id values
        are reused after garbage collection, so a dropped session
        whose replacement space landed at the same address could
        otherwise revalidate stale bytes.  An engine carrying its own
        ``cache_stamp`` (the shard coordinator) stamps itself.
        """
        if not isinstance(session, str):
            return None
        stamper = getattr(registry, "cache_stamp", None)
        if stamper is not None:
            return stamper(session)
        try:
            held = registry.get(session)
        except UnknownSessionError:
            return None
        workbench = held.workbench
        store = workbench.store
        return (session, store.serial, store.version,
                getattr(workbench, "space_generation", 0))

    # -- lookup/insert --------------------------------------------------
    def get(self, registry: SessionRegistry,
            raw: bytes) -> Optional[Tuple[int, bytes]]:
        """``(status, body)`` when ``raw`` is cached *and* still
        valid; ``None`` otherwise (stale entries are dropped)."""
        with self._lock:
            entry = self._entries.get(raw)
            if entry is not None:
                self._entries.move_to_end(raw)
        if entry is None:
            with self._lock:
                self.misses += 1
            return None
        stamp, status, body = entry
        if self.stamp(registry, stamp[0]) != stamp:
            with self._lock:
                held = self._entries.get(raw)
                if held is entry:
                    del self._entries[raw]
                    self._bytes -= len(raw) + len(held[2])
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return status, body

    def put(self, raw: bytes, stamp: Tuple, status: int,
            body: bytes) -> None:
        """Insert one response; evicts LRU entries past the bounds."""
        size = len(raw) + len(body)
        if size > self.max_bytes:
            return
        with self._lock:
            previous = self._entries.pop(raw, None)
            if previous is not None:
                self._bytes -= len(raw) + len(previous[2])
            self._entries[raw] = (stamp, status, body)
            self._bytes += size
            while (len(self._entries) > self.max_entries
                   or self._bytes > self.max_bytes):
                evicted_raw, evicted = self._entries.popitem(last=False)
                self._bytes -= len(evicted_raw) + len(evicted[2])

    def clear(self) -> None:
        """Drop every entry (counters kept)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Occupancy and hit counters for ``/v1/health``."""
        with self._lock:
            return {"entries": len(self._entries),
                    "bytes": self._bytes, "hits": self.hits,
                    "misses": self.misses}


def execute_json(registry: SessionRegistry, raw: bytes,
                 cache: Optional[ResponseCache] = None
                 ) -> Tuple[int, bytes]:
    """One ``POST /v1/call`` body → ``(HTTP status, response bytes)``.

    Exactly the server semantics: protocol failures come back as a
    400 ``ErrorInfo``, expected command failures with their mapped
    status, unexpected exceptions as a 500 ``internal`` — the
    function never raises.  With a ``cache``, read commands are
    served from (and inserted into) it under the versioned-stamp
    rules above; error responses are never cached.
    """
    if cache is not None:
        held = cache.get(registry, raw)
        if held is not None:
            return held
    try:
        command = P.command_from_json(raw)
    except P.ProtocolError as error:
        return 400, P.ErrorInfo(code="protocol",
                                message=str(error)).to_json()
    stamp = None
    if cache is not None and command.kind in CACHEABLE_KINDS:
        # Captured *before* executing: a write racing the execution
        # leaves the entry stamped with the pre-write version, which
        # can only fail validation — never serve mixed-state bytes.
        stamp = cache.stamp(registry, getattr(command, "session",
                                              None))
    response = run_command_safely(registry, command)
    status = 200
    if isinstance(response, P.ErrorInfo):
        status = STATUS_OF_CODE.get(response.code, 500)
    body = response.to_json()
    if stamp is not None and status == 200:
        cache.put(raw, stamp, status, body)
    return status, body


def wal_report(wal) -> Dict:
    """Group-commit counters of one write-ahead log.

    ``coalescing`` is appends per physical flush — the fan-in the
    group-commit leader achieved (1.0 means every append paid its own
    fsync; ``None`` before the first flush).
    """
    appends = wal.appends
    flushes = wal.group_flushes
    return {"appends": appends, "group_flushes": flushes,
            "coalescing": (round(appends / flushes, 3)
                           if flushes else None)}


def health_payload(registry: SessionRegistry,
                   load: Optional[Dict] = None) -> Dict:
    """The ``GET /v1/health`` document both servers serve.

    ``load`` is the front-end's saturation report (in-flight count,
    queue depth, rejection counter, cache stats) — keyed in only when
    given so the threaded and asyncio servers stay shape-compatible.
    Durable sessions additionally report their WAL group-commit
    counters, and a shard coordinator engine contributes a per-shard
    fan-out/saturation section under ``"shards"``.
    """
    roster_fn = getattr(registry, "health_roster", None)
    if roster_fn is not None:
        roster = roster_fn()
    else:
        roster = []
        for session in registry.sessions():
            entry = {"name": session.name, "state": session.state,
                     "trajectories": len(session.workbench.store),
                     "ingest": {
                         "accepted": session.ingest_accepted,
                         "rejected": session.ingest_rejected}}
            wal = session.workbench.store.wal
            if wal is not None:
                entry["wal"] = wal_report(wal)
            roster.append(entry)
    payload = {"ok": True, "version": __version__,
               "protocol": P.PROTOCOL_VERSION, "sessions": roster}
    shards_fn = getattr(registry, "shard_report", None)
    if shards_fn is not None:
        payload["shards"] = shards_fn()
    # Live-stream lag/watermark counters: present once the engine has
    # opened a stream (the manager attaches itself lazily), duck-typed
    # so the wire layer needs no stream import.
    streams = getattr(registry, "_stream_manager", None)
    if streams is not None:
        payload["streams"] = streams.report()
    if load is not None:
        payload["load"] = load
    return payload


def ready_payload(registry: SessionRegistry
                  ) -> Tuple[int, Dict]:
    """The ``GET /v1/ready`` document: ``(status, payload)``.

    Liveness (``/v1/health``) answers 200 whenever the process can
    answer at all; *readiness* is the load-balancer drain signal and
    goes 503 while the engine should not receive traffic:

    - sessions are still restoring from disk (``registry.restoring``,
      duck-typed — a registry serving before its corpus is loaded
      would answer reads with wrong/empty results), or
    - more than half of a shard coordinator's replica targets have
      open circuit breakers (``registry.breaker_report``) — the
      coordinator can no longer mask failures and this instance
      should be drained rather than trusted with traffic.
    """
    reasons = []
    if getattr(registry, "restoring", False):
        reasons.append("sessions restoring from disk")
    breakers_fn = getattr(registry, "breaker_report", None)
    breakers = breakers_fn() if breakers_fn is not None else None
    if breakers:
        open_count = sum(1 for entry in breakers
                         if entry.get("state") == "open")
        if open_count * 2 > len(breakers):
            reasons.append(
                "{} of {} shard targets have open circuit "
                "breakers".format(open_count, len(breakers)))
    payload: Dict = {"ready": not reasons, "reasons": reasons}
    if breakers is not None:
        payload["breakers"] = breakers
    return (200 if not reasons else 503), payload
