"""Figure 6 — inferring undetected presence in Zone 60888.

Section 4.2: "at time t1 the visitor was detected in Zone60887 (i.e. E)
for a duration of δt1, and at time t2 he was detected in Zone60890
(i.e. S) ... From the zone layer NRG we can infer that although never
detected there, the visitor must have passed from Zone60888 (i.e. P).
In our SITM, this would be captured with the addition of an extra tuple
in the sequence, e.g.: (checkpoint002, zone60888, 17:30:21, 17:31:42,
{goals:['cloakroomPickup','souvenirBuy','museumExit']})"

This experiment reproduces exactly that: a trajectory detected in E
then S, repaired by :func:`repro.core.inference.infer_missing_presence`
over the 30-zone accessibility NRG, with the zone's semantics providing
the inferred tuple's goal annotations.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.annotations import AnnotationKind, AnnotationSet
from repro.core.inference import InferenceReport, infer_missing_presence
from repro.core.trajectory import SemanticTrajectory, Trace, TraceEntry
from repro.core.timeutil import clock, from_clock, from_date
from repro.experiments.textable import render_table
from repro.louvre.space import LouvreSpace
from repro.louvre.zones import ZONE_E, ZONE_P, ZONE_S


def build_sparse_trajectory() -> SemanticTrajectory:
    """The Figure 6 visitor: detected in E, then (gap), then S."""
    day = from_date("12-02-2017")

    def t(hms: str) -> float:
        return from_clock(day, hms)

    entries = [
        TraceEntry(None, ZONE_E, t("16:40:00"), t("17:30:21")),
        # No detection in P — the gap the topology explains.
        TraceEntry("unobserved:{}->{}".format(ZONE_E, ZONE_S), ZONE_S,
                   t("17:31:42"), t("17:52:00")),
    ]
    return SemanticTrajectory("figure6-visitor", Trace(entries),
                              AnnotationSet.goals("visit"))


def zone_goal_annotator(state: str) -> AnnotationSet:
    """Domain annotations for inferred stays (the paper's goal list)."""
    if state == ZONE_P:
        return AnnotationSet.goals("cloakroomPickup", "souvenirBuy",
                                   "museumExit")
    return AnnotationSet.empty()


def run(space: Optional[LouvreSpace] = None) -> Dict[str, object]:
    """Run the missing-presence inference on the Figure 6 scenario."""
    space = space or LouvreSpace()
    nrg = space.dataset_zone_nrg()
    sparse = build_sparse_trajectory()
    report = InferenceReport()
    repaired = infer_missing_presence(sparse, nrg,
                                      annotator=zone_goal_annotator,
                                      report=report)
    inferred = [entry for entry in repaired.trace
                if entry.annotations.has(AnnotationKind.PROVENANCE,
                                         "inferred")]
    inferred_entry = inferred[0] if inferred else None
    confidence = None
    if inferred_entry is not None:
        provenance = inferred_entry.annotations.of_kind(
            AnnotationKind.PROVENANCE)[0]
        confidence = provenance.confidence
    return {
        "sparse_states": sparse.distinct_state_sequence(),
        "repaired_states": repaired.distinct_state_sequence(),
        "tuples_inserted": report.tuples_inserted,
        "gaps_examined": report.gaps_examined,
        "ambiguous_gaps": report.ambiguous_gaps,
        "inferred_state": inferred_entry.state if inferred_entry else None,
        "inferred_transition":
            inferred_entry.transition if inferred_entry else None,
        "inferred_interval": (
            (clock(inferred_entry.t_start), clock(inferred_entry.t_end))
            if inferred_entry else None),
        "inferred_goals": sorted(
            str(v) for v in inferred_entry.annotations.goal_values())
        if inferred_entry else [],
        "confidence": confidence,
        "inferred_tuple": inferred_entry.describe()
        if inferred_entry else None,
        "zone_p_is_inferred":
            inferred_entry is not None and inferred_entry.state == ZONE_P,
    }


def render(result: Dict[str, object]) -> str:
    """Render the inference outcome."""
    rows = [
        ("detected sequence", "→".join(result["sparse_states"])),
        ("repaired sequence", "→".join(result["repaired_states"])),
        ("tuples inserted", result["tuples_inserted"]),
        ("inferred zone is 60888 (P)", result["zone_p_is_inferred"]),
        ("inferred transition", result["inferred_transition"]),
        ("inferred goals", ", ".join(result["inferred_goals"])),
        ("path confidence", result["confidence"]),
        ("inserted tuple", result["inferred_tuple"]),
    ]
    return render_table(("fact", "value"), rows)
