"""Run every experiment and assemble the full report.

``python -m repro.experiments.runner`` prints the complete
paper-vs-measured report (the source of EXPERIMENTS.md); ``run_all``
returns the structured results for programmatic use.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments import (
    ablations,
    dataset_stats,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    pipeline_metrics,
    table1,
    workbench_queries,
)
from repro.louvre.space import LouvreSpace

#: Experiment registry: id → (title, module).
EXPERIMENTS = (
    ("T1", "Table 1 — terminology correspondence", table1),
    ("F1", "Figure 1 — 2-level hierarchical graph (Denon)", fig1),
    ("F2", "Figure 2 — core layer hierarchy", fig2),
    ("F3", "Figure 3 — ground-floor detection choropleth", fig3),
    ("F4", "Figure 4 — RoI coverage hypothesis", fig4),
    ("F5", "Figure 5 — overlapping episodes", fig5),
    ("F6", "Figure 6 — Zone 60888 inference", fig6),
    ("S41", "Section 4.1 — dataset statistics", dataset_stats),
    ("ABL", "Ablations A1–A3", ablations),
    ("ENG", "Pipeline — per-stage streaming engine metrics",
     pipeline_metrics),
    ("QRY", "Workbench — planned queries + mining over results",
     workbench_queries),
)

#: Experiments whose run() accepts a shared LouvreSpace.
_TAKES_SPACE = {"F2", "F3", "F4", "F6", "S41", "ABL", "ENG", "QRY"}


def run_all(scale: float = 1.0) -> Dict[str, Dict[str, object]]:
    """Execute every experiment; returns id → result dict.

    Args:
        scale: corpus scale for the data-heavy experiments (1.0 is the
            full paper-sized corpus; tests use smaller values).
    """
    space = LouvreSpace()
    results: Dict[str, Dict[str, object]] = {}
    for exp_id, _, module in EXPERIMENTS:
        kwargs: Dict[str, object] = {}
        if exp_id in _TAKES_SPACE:
            kwargs["space"] = space
        if exp_id in ("F3", "S41", "ENG", "QRY"):
            kwargs["scale"] = scale
        results[exp_id] = module.run(**kwargs)
    return results


def render_report(results: Dict[str, Dict[str, object]]) -> str:
    """Render all experiment reports as one document."""
    sections = []
    for exp_id, title, module in EXPERIMENTS:
        if exp_id not in results:
            continue
        body = module.render(results[exp_id])
        sections.append("## {} — {}\n\n{}".format(exp_id, title, body))
    return "\n\n".join(sections)


def main() -> None:  # pragma: no cover - CLI entry point
    """CLI entry point: run everything at full scale and print."""
    results = run_all(scale=1.0)
    print(render_report(results))


if __name__ == "__main__":  # pragma: no cover
    main()
