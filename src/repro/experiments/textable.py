"""Tiny text-table renderer shared by the experiment modules."""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned, pipe-separated text table."""
    cells = [[str(h) for h in headers]]
    cells.extend([str(value) for value in row] for row in rows)
    widths = [max(len(row[col]) for row in cells)
              for col in range(len(headers))]

    def line(row: Sequence[str]) -> str:
        return " | ".join(value.ljust(width)
                          for value, width in zip(row, widths))

    out: List[str] = [line(cells[0])]
    out.append("-+-".join("-" * width for width in widths))
    out.extend(line(row) for row in cells[1:])
    return "\n".join(out)


def render_bar_chart(labels: Sequence[str], values: Sequence[float],
                     width: int = 40) -> str:
    """Render a horizontal ASCII bar chart (the choropleth analogue)."""
    peak = max(values) if values else 1.0
    label_width = max((len(label) for label in labels), default=0)
    lines: List[str] = []
    for label, value in zip(labels, values):
        bar = "█" * max(1, int(round(width * value / peak))) \
            if value > 0 else ""
        lines.append("{}  {} {}".format(
            label.ljust(label_width), bar, value))
    return "\n".join(lines)
