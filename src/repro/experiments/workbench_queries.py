"""QRY — planned queries and mining through the Workbench facade.

Exercises the PR-2 query stack end to end on the (scaled) Louvre
corpus: the corpus is built through the
:class:`~repro.api.Workbench`, a declarative expression (OR / NOT /
time window over indexed predicates) is compiled by the cost-based
planner, the chosen plan is captured via ``explain()``, the query is
round-tripped through its serialized form, and the mining layer
consumes the lazy result set directly (sequential patterns + flow
balances over the query's hits, not over the whole store).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.api import Workbench
from repro.louvre.space import LouvreSpace
from repro.louvre.zones import ZONE_C
from repro.storage import expr as E

ZONE_SALLE_DES_ETATS = "zone60853"  # Salle des États (Mona Lisa)

#: The showcase query: Salle des États visitors or long multi-zone
#: visits, in the corpus' first half, excluding Carrousel-exit passes.
_MIN_DURATION = 2.0 * 3600
_MIN_ENTRIES = 4


def _expression(span) -> E.Expr:
    """The showcase expression over the corpus time span."""
    start, end = span
    midday = start + (end - start) / 2.0
    return (E.state(ZONE_SALLE_DES_ETATS)
            | (E.min_duration(_MIN_DURATION)
               & E.min_entries(_MIN_ENTRIES))) \
        & E.time_window(start, midday) & E.goal("visit") \
        & ~E.state(ZONE_C)


def run(space: Optional[LouvreSpace] = None,
        scale: float = 1.0) -> Dict[str, object]:
    """Build the corpus via the Workbench and run the planned query."""
    workbench = Workbench.louvre(scale=scale, space=space)
    span = workbench.store.time_span() or (0.0, 0.0)
    query = workbench.query(_expression(span))

    plan_text = query.explain()
    # Materialize once; every downstream consumer reads this list
    # (re-consuming the lazy ResultSet would re-run the whole query).
    hits_list = query.execute().to_list()
    hits = len(hits_list)

    # Serialization round trip must return identical results.
    restored = workbench.load_query(query.to_dict())
    roundtrip_ok = restored.execute().ids() \
        == frozenset(h.doc_id for h in hits_list)

    # Mining directly over the query's hits.
    patterns = workbench.patterns(hits_list, min_support=0.1,
                                  max_length=3)
    balances = workbench.flow(hits_list)

    selective = workbench.query(E.state(ZONE_SALLE_DES_ETATS)
                                & E.goal("visit"))
    return {
        "scale": scale,
        "corpus": len(workbench.store),
        "plan": plan_text,
        "hits": hits,
        "first_mo": (hits_list[0].trajectory.mo_id
                     if hits else None),
        "roundtrip_ok": roundtrip_ok,
        "selective_count": selective.count(),
        "selective_plan": selective.explain(),
        "patterns": [p.describe() for p in patterns[:5]],
        "flow_rows": len(balances),
        "top_imbalance": (balances[0].state if balances else None),
    }


def render(result: Dict[str, object]) -> str:
    """Render the workbench query report."""
    lines: List[str] = [
        "corpus: {} trajectories (scale {})".format(
            result["corpus"], result["scale"]),
        "",
        "showcase plan (OR / NOT / window via the planner):",
    ]
    lines.extend("  " + line
                 for line in str(result["plan"]).splitlines())
    lines.append("")
    lines.append("hits: {} | serialization round-trip identical: "
                 "{}".format(result["hits"], result["roundtrip_ok"]))
    lines.append("selective Salle-des-États plan:")
    lines.extend("  " + line
                 for line in str(result["selective_plan"]).splitlines())
    lines.append("selective count (index-only): {}".format(
        result["selective_count"]))
    if result["patterns"]:
        lines.append("patterns over the result set: "
                     + "; ".join(result["patterns"]))
    lines.append("flow rows over the result set: {} (top imbalance: "
                 "{})".format(result["flow_rows"],
                              result["top_imbalance"]))
    return "\n".join(lines)
