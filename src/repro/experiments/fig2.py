"""Figure 2 — the required core layer hierarchy with both optional layers.

The figure depicts Building Complex → Building → Floor → Room → RoI.
This experiment instantiates it for the whole Louvre (Section 4.2's
layer correspondences), validates every Section 3.2 hierarchy rule,
and demonstrates the two inferences the paper derives from a *static*
hierarchy:

* location lifting — the Mona Lisa RoI lifts to its room, floor, wing
  and the museum;
* relation propagation up the hierarchy via the transitivity of
  parthood, checked with the RCC-8 composition table.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.textable import render_table
from repro.indoor.hierarchy import LayerRole
from repro.louvre.floorplan import MONA_LISA_ROI, SALLE_DES_ETATS_ROOM
from repro.louvre.space import LouvreSpace
from repro.spatial.qsr import RelationNetwork
from repro.spatial.topology import TopologicalRelation


def run(space: LouvreSpace = None) -> Dict[str, object]:
    """Build the Louvre hierarchy and verify the Figure 2 properties."""
    space = space or LouvreSpace()
    hierarchy = space.core_hierarchy

    # Lifting the Mona Lisa RoI through every level.
    chain = [MONA_LISA_ROI] + hierarchy.ancestors(MONA_LISA_ROI)
    lift_to_wing = hierarchy.lift(MONA_LISA_ROI, "wings")

    # Relation propagation: RoI inside room, room coveredBy floor
    # ⇒ the RoI must be a proper part of (or overlap) the floor; the
    # RCC-8 network confirms the composition is containment-only.
    network = RelationNetwork()
    network.constrain("roi", "room", [TopologicalRelation.INSIDE])
    network.constrain("room", "floor", [TopologicalRelation.COVERED_BY])
    consistent = network.propagate()
    propagated = sorted(r.value for r in network.get("roi", "floor"))

    layer_sizes = {name: len(space.graph.layer(name))
                   for name in hierarchy.layers}
    return {
        "layers": list(hierarchy.layers),
        "roles": [hierarchy.role_of_layer(layer).value
                  for layer in hierarchy.layers],
        "has_core_roles": hierarchy.has_core_roles(),
        "validation_problems": hierarchy.validate(),
        "layer_sizes": layer_sizes,
        "mona_lisa_chain": chain,
        "mona_lisa_wing": lift_to_wing,
        "roi_floor_relations": propagated,
        "qsr_consistent": consistent,
        "roi_orphans": len(hierarchy.orphans("rois")),
        "room_orphans": len(hierarchy.orphans("rooms")),
    }


def render(result: Dict[str, object]) -> str:
    """Render the hierarchy card."""
    rows: List = [
        ("layer stack (top→bottom)", " → ".join(result["layers"])),
        ("roles", " → ".join(result["roles"])),
        ("core roles present in order", result["has_core_roles"]),
        ("rule violations", len(result["validation_problems"])),
    ]
    for layer, size in result["layer_sizes"].items():
        rows.append(("|{}|".format(layer), size))
    rows.append(("Mona Lisa ancestor chain",
                 " ⊂ ".join(result["mona_lisa_chain"])))
    rows.append(("RoI-vs-floor relations (QSR-propagated)",
                 ", ".join(result["roi_floor_relations"])))
    return render_table(("fact", "value"), rows)
