"""Table 1 — terminology correspondence, verified executably.

The paper's Table 1 aligns four vocabularies: the n-intersection model,
the primal space, the dual space (NRG), and navigation.  This
experiment regenerates the table from the *implemented* ontology and,
for each row, executes a micro-scenario proving the implementation
realises the correspondence (a 2-cell space whose cells dualise to
nodes, whose shared boundary dualises to an edge, and whose overlap
across layers yields a joint edge).
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.textable import render_table
from repro.indoor.cells import BoundaryKind, Cell, CellBoundary, CellSpace
from repro.indoor.dual import derive_accessibility_nrg
from repro.indoor.multilayer import JointEdge, LayeredIndoorGraph
from repro.spatial.geometry import Polygon
from repro.spatial.topology import (
    JOINT_EDGE_RELATIONS,
    TopologicalRelation,
    relate,
)

#: The four columns of Table 1, regenerated from the implementation.
TABLE_ROWS = (
    ("(spatial) region", "cell/'cellspace'", "node", "state"),
    ("(region) boundary", "(cell) boundary", "(intra-layer) edge",
     "transition"),
    ("'overlap'/'coveredBy'/'inside'/'covers'/'contains'/'equal'",
     "binary topological relationship (between cells)",
     "(inter-layer) joint edge",
     "valid active state combination / valid overall state"),
)


def _build_verification_space() -> Dict[str, object]:
    """A 2-cell, 2-layer scenario exercising all three rows."""
    rooms = CellSpace("t1-rooms")
    room_a = rooms.add_cell(Cell(
        "room-a", geometry=Polygon.rectangle(0, 0, 10, 10), floor=0))
    room_b = rooms.add_cell(Cell(
        "room-b", geometry=Polygon.rectangle(10, 0, 20, 10), floor=0))
    rooms.add_boundary(CellBoundary("door-ab", "room-a", "room-b",
                                    BoundaryKind.DOOR))
    zones = CellSpace("t1-zones")
    zones.add_cell(Cell(
        "zone-ab", geometry=Polygon.rectangle(0, 0, 20, 10), floor=0))
    nrg = derive_accessibility_nrg(rooms)
    nrg.name = "t1-rooms"
    zone_nrg = derive_accessibility_nrg(zones)
    zone_nrg.name = "t1-zones"
    graph = LayeredIndoorGraph("table1")
    graph.add_layer(nrg, rooms)
    graph.add_layer(zone_nrg, zones)
    created = graph.derive_joint_edges_from_geometry("t1-zones",
                                                     "t1-rooms")
    return {"rooms": rooms, "zones": zones, "nrg": nrg, "graph": graph,
            "joint_edges": created, "room_a": room_a, "room_b": room_b}


def run() -> Dict[str, object]:
    """Regenerate Table 1 and execute the row verifications."""
    scenario = _build_verification_space()
    nrg = scenario["nrg"]
    graph = scenario["graph"]

    checks: List[Dict[str, object]] = []
    # Row 1: region → cell → node → state.
    checks.append({
        "row": "region/cell/node/state",
        "passed": "room-a" in nrg and "room-b" in nrg,
    })
    # Row 2: boundary → edge → transition.
    edges = nrg.edges_between("room-a", "room-b")
    checks.append({
        "row": "boundary/edge/transition",
        "passed": bool(edges) and edges[0].boundary_id == "door-ab",
    })
    # Row 3: topological relation → joint edge → valid overall state.
    joint_relations = {e.relation for e in scenario["joint_edges"]}
    valid_state = graph.is_valid_overall_state(
        {"t1-zones": "zone-ab", "t1-rooms": "room-a"})
    checks.append({
        "row": "relation/joint-edge/overall-state",
        "passed": joint_relations <= JOINT_EDGE_RELATIONS
        and bool(joint_relations) and valid_state,
    })
    # The six joint-edge relations exclude disjoint and meet, and the
    # geometric relations are consistent with the dual structure.
    geometric = relate(
        scenario["rooms"].cell("room-a").geometry,
        scenario["rooms"].cell("room-b").geometry)
    checks.append({
        "row": "adjacent rooms meet",
        "passed": geometric is TopologicalRelation.MEET,
    })
    return {
        "table_rows": [list(row) for row in TABLE_ROWS],
        "joint_edge_relations": sorted(
            r.value for r in JOINT_EDGE_RELATIONS),
        "checks": checks,
        "all_passed": all(c["passed"] for c in checks),
    }


def render(result: Dict[str, object]) -> str:
    """Render the regenerated table plus the verification outcomes."""
    headers = ("N-intersection", "Primal Space (2D)", "Dual Space (NRG)",
               "Dual Space (Navigation)")
    table = render_table(headers, result["table_rows"])
    check_lines = "\n".join(
        "  [{}] {}".format("ok" if c["passed"] else "FAIL", c["row"])
        for c in result["checks"])
    return "{}\n\nexecutable verifications:\n{}".format(table, check_lines)
