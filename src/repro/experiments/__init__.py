"""Executable reproductions of every table and figure in the paper.

One module per artefact (see the experiment index in DESIGN.md):

========  ==========================================================
module    paper artefact
========  ==========================================================
table1    Table 1 — terminology correspondence
fig1      Figure 1 — 2-level hierarchical graph (Denon wing)
fig2      Figure 2 — core layer hierarchy with optional layers
fig3      Figure 3 — ground-floor detection choropleth
fig4      Figure 4 — RoI coverage / full-coverage hypothesis
fig5      Figure 5 — overlapping episodes (exit museum / buy souvenir)
fig6      Figure 6 — missing-presence inference (Zone 60888)
dataset_stats  Section 4.1 — corpus statistics
ablations A1 directed vs undirected; A2 static hierarchy vs ad-hoc;
          A3 overlapping vs exclusive episodes
pipeline_metrics  per-stage metrics of the streaming pipeline engine
========  ==========================================================

Every module exposes ``run(...)`` returning a plain-data result dict
and ``render(result)`` producing the text table/figure analogue.
:mod:`repro.experiments.runner` executes everything and assembles the
EXPERIMENTS.md comparison.
"""

from repro.experiments import (  # noqa: F401
    ablations,
    dataset_stats,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    pipeline_metrics,
    table1,
)
from repro.experiments.runner import run_all

__all__ = [
    "ablations",
    "dataset_stats",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "pipeline_metrics",
    "table1",
    "run_all",
]
