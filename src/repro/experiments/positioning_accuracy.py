"""Positioning-stack accuracy comparison (pipeline ablation P2).

The paper's dataset provenance names three techniques — "RSSI-based
trilateration, extended Kalman and particle filtering" (Section 4.1) —
without evaluating them (the authors consumed the museum's output).
This experiment evaluates our simulated stack so the substitution's
quality is on record: mean/median position error of raw trilateration
vs EKF smoothing vs particle filtering on the same noisy walk, plus
the zone-detection accuracy each achieves after spatial aggregation.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.experiments.textable import render_table
from repro.movement.agents import GeometricAgent, WaypointPath
from repro.positioning.beacons import BeaconGrid, RssiModel
from repro.positioning.detection import PositionFix, ZoneDetector
from repro.positioning.kalman import ExtendedKalmanFilter2D
from repro.positioning.particle import ParticleFilter2D
from repro.positioning.trilateration import trilaterate
from repro.indoor.cells import Cell, CellSpace
from repro.spatial.geometry import BBox, Point, Polygon


def _walk_track(seed: int):
    """A zig-zag walk through a 3-zone corridor."""
    waypoints = [Point(5, 10), Point(35, 14), Point(65, 8),
                 Point(95, 12)]
    path = WaypointPath(waypoints, [20.0, 15.0, 15.0, 20.0], floor=0)
    agent = GeometricAgent(path, speed=0.9, rng=random.Random(seed))
    return agent.track(0.0, sample_interval=1.0)


def _corridor_space() -> CellSpace:
    space = CellSpace("corridor-zones", validate_geometry=False)
    for index in range(3):
        space.add_cell(Cell(
            "cz{}".format(index),
            geometry=Polygon.rectangle(index * 34.0, 0.0,
                                       (index + 1) * 34.0, 20.0),
            floor=0))
    return space


def run(seed: int = 20170119,
        sigma: float = 4.0) -> Dict[str, object]:
    """Run the three estimators on one noisy track and score them."""
    track = _walk_track(seed)
    grid = BeaconGrid(BBox(-5, -5, 107, 25), floor=0, spacing=12.0)
    registry = {b.beacon_id: b for b in grid.beacons}
    model = RssiModel(sigma=sigma, rng=random.Random(seed + 1))
    space = _corridor_space()

    ekf: Optional[ExtendedKalmanFilter2D] = None
    pf = ParticleFilter2D(particle_count=300, step_sigma=1.5,
                          seed=seed + 2)
    errors: Dict[str, List[float]] = {"raw": [], "ekf": [], "pf": []}
    fixes: Dict[str, List[PositionFix]] = {"raw": [], "ekf": [],
                                           "pf": []}
    truth_zone_time: Dict[str, float] = {}
    last_t: Optional[float] = None
    for sample in track:
        truth_cell = space.locate_point(sample.position, sample.floor)
        if truth_cell is not None and last_t is not None:
            truth_zone_time[truth_cell.cell_id] = \
                truth_zone_time.get(truth_cell.cell_id, 0.0) \
                + (sample.t - last_t)
        readings = model.scan(grid.beacons, sample.position,
                              sample.floor, sample.t)
        fix = trilaterate(readings, registry, model)
        if fix is None:
            last_t = sample.t
            continue
        if ekf is None:
            ekf = ExtendedKalmanFilter2D(initial_position=fix.position)
        elif last_t is not None and sample.t > last_t:
            ekf.predict(sample.t - last_t)
        ekf.update_position(fix.position)
        if last_t is not None and sample.t > last_t:
            pf.predict(sample.t - last_t)
        pf.update(fix.position)
        for name, estimate in (("raw", fix.position),
                               ("ekf", ekf.position),
                               ("pf", pf.position)):
            errors[name].append(
                estimate.distance_to(sample.position))
            fixes[name].append(PositionFix(sample.t, estimate,
                                           sample.floor))
        last_t = sample.t

    detector = ZoneDetector(space)
    zone_accuracy: Dict[str, float] = {}
    for name in ("raw", "ekf", "pf"):
        records = detector.detect("probe", fixes[name])
        correct = sum(
            min(r.duration, truth_zone_time.get(r.state, 0.0))
            for r in records)
        total = sum(r.duration for r in records) or 1.0
        zone_accuracy[name] = correct / total

    def stats(values: List[float]) -> Dict[str, float]:
        ordered = sorted(values)
        return {
            "mean": sum(values) / len(values),
            "median": ordered[len(ordered) // 2],
            "p90": ordered[int(len(ordered) * 0.9)],
        }

    return {
        "fix_count": len(errors["raw"]),
        "error_stats": {name: stats(values)
                        for name, values in errors.items()},
        "zone_accuracy": zone_accuracy,
        "ekf_beats_raw": (stats(errors["ekf"])["mean"]
                          < stats(errors["raw"])["mean"]),
        "filters_beat_raw_median": (
            min(stats(errors["ekf"])["median"],
                stats(errors["pf"])["median"])
            <= stats(errors["raw"])["median"]),
    }


def render(result: Dict[str, object]) -> str:
    """Render the estimator comparison table."""
    rows = []
    for name in ("raw", "ekf", "pf"):
        stats = result["error_stats"][name]
        rows.append((
            name,
            "{:.2f}".format(stats["mean"]),
            "{:.2f}".format(stats["median"]),
            "{:.2f}".format(stats["p90"]),
            "{:.1%}".format(result["zone_accuracy"][name]),
        ))
    return render_table(
        ("estimator", "mean err (m)", "median", "p90",
         "zone time correct"), rows)
