"""Figure 5 — overlapping "exit museum" and "buy souvenir" episodes.

Section 4.2: "if a given visitor has visited the temporary exhibition
(hosted in E) and wishes to leave the museum, he may take the path
E→P→S→C ... However, he may also want to first buy something from the
souvenir shops (hosted in S).  Hence ... we may tag the whole E→P→S→C
part with the 'exit museum' goal and its E→P→S subsequence with the
'buy souvenir' tag."

This experiment builds that visitor's trajectory, detects both
episodes with goal predicates, verifies they **overlap in time**
(which mutually-exclusive episode models cannot express), and measures
what forcing exclusivity loses.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.annotations import AnnotationSet
from repro.core.episodes import (
    EndsInStatePredicate,
    EpisodicSegmentation,
    StateSequencePredicate,
    VisitsStatePredicate,
    find_episodes,
    force_exclusive,
)
from repro.core.trajectory import SemanticTrajectory, Trace, TraceEntry
from repro.core.timeutil import from_clock, from_date
from repro.experiments.textable import render_table
from repro.louvre.zones import (
    ZONE_C,
    ZONE_E,
    ZONE_ENTRANCE,
    ZONE_P,
    ZONE_S,
)


def build_visitor_trajectory() -> SemanticTrajectory:
    """The Figure 5 visitor: temporary exhibition, shops, Carrousel exit."""
    day = from_date("15-02-2017")

    def t(hms: str) -> float:
        return from_clock(day, hms)

    entries = [
        # The visit starts in the Hall Napoléon; the E→P→S→C tail is
        # then a *proper* subsequence, as Definition 3.3 requires.
        TraceEntry(None, ZONE_ENTRANCE, t("15:30:00"), t("16:04:00")),
        TraceEntry("checkpoint001", ZONE_E, t("16:05:00"), t("17:30:00")),
        TraceEntry("checkpoint002", ZONE_P, t("17:30:21"), t("17:31:42")),
        TraceEntry("opening004", ZONE_S, t("17:32:10"), t("17:55:00")),
        TraceEntry("checkpoint005", ZONE_C, t("17:55:30"), t("17:58:00")),
    ]
    return SemanticTrajectory("figure5-visitor", Trace(entries),
                              AnnotationSet.goals("visit"))


def run() -> Dict[str, object]:
    """Detect the two overlapping goal episodes."""
    trajectory = build_visitor_trajectory()

    exit_predicate = (StateSequencePredicate(
        [ZONE_E, ZONE_P, ZONE_S, ZONE_C], exact=False)
        & EndsInStatePredicate(ZONE_C))
    exit_episodes = find_episodes(
        trajectory, exit_predicate,
        AnnotationSet.goals("exit museum"), label="exit museum")

    buy_predicate = (StateSequencePredicate(
        [ZONE_E, ZONE_P, ZONE_S], exact=True)
        & VisitsStatePredicate(ZONE_S))
    buy_episodes = find_episodes(
        trajectory, buy_predicate,
        AnnotationSet.goals("buy souvenir"), label="buy souvenir")

    segmentation = EpisodicSegmentation(
        trajectory, exit_episodes + buy_episodes)
    exclusive = force_exclusive(segmentation)

    overlap_pairs = segmentation.overlapping_pairs()
    mid_s = (buy_episodes[0].t_start + buy_episodes[0].t_end) / 2 \
        if buy_episodes else 0.0
    return {
        "trajectory_states": trajectory.distinct_state_sequence(),
        "exit_episode_states": [e.states() for e in exit_episodes],
        "buy_episode_states": [e.states() for e in buy_episodes],
        "episodes": len(segmentation),
        "episodes_overlap": segmentation.has_overlaps(),
        "overlapping_labels": [
            (a.label, b.label) for a, b in overlap_pairs],
        "labels_at_shop_time": sorted(
            e.label for e in segmentation.episodes_at(mid_s)),
        "overlapping_tagged_share": segmentation.tagged_share(),
        "exclusive_tagged_share": exclusive.tagged_share(),
        "exclusive_episodes": len(exclusive.episodes),
    }


def render(result: Dict[str, object]) -> str:
    """Render the episode comparison."""
    rows = [
        ("visitor path", "→".join(result["trajectory_states"])),
        ("'exit museum' episode",
         "; ".join("→".join(s) for s in result["exit_episode_states"])),
        ("'buy souvenir' episode",
         "; ".join("→".join(s) for s in result["buy_episode_states"])),
        ("episodes overlap in time", result["episodes_overlap"]),
        ("labels active while in the shops",
         ", ".join(result["labels_at_shop_time"])),
        ("tagged share (overlapping allowed)",
         "{:.2f}".format(result["overlapping_tagged_share"])),
        ("tagged share (forced exclusive)",
         "{:.2f}".format(result["exclusive_tagged_share"])),
    ]
    return render_table(("fact", "value"), rows)
