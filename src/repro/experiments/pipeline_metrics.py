"""ENG — the paper's full data pipeline on the streaming engine.

Runs the Section 4 workflow end to end — corpus generation → cleaning
→ visit segmentation → trace construction → annotation → store
indexing → sequential pattern mining — as one
:class:`~repro.pipeline.engine.Pipeline`, and reports the engine's
per-stage instrumentation: items in/out, drop reasons (including the
~10 % zero-duration detections of Section 4.1) and wall time.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core import TrajectoryBuilder
from repro.experiments.textable import render_table
from repro.louvre.space import LouvreSpace
from repro.pipeline import (
    Pipeline,
    PrefixSpanStage,
    StateSequenceStage,
    StoreSinkStage,
    louvre_source,
)

#: Engine batch size used by the experiment.
BATCH_SIZE = 512


def run(space: Optional[LouvreSpace] = None,
        scale: float = 1.0) -> Dict[str, object]:
    """Stream the (scaled) corpus through the full pipeline."""
    space = space or LouvreSpace()
    builder = TrajectoryBuilder(space.dataset_zone_nrg())
    store_sink = StoreSinkStage()
    miner = PrefixSpanStage(min_support=0.05, max_length=4)
    pipeline = Pipeline(
        builder.stages(streaming=True)
        + [store_sink, StateSequenceStage(), miner],
        batch_size=BATCH_SIZE)
    pipeline.run(louvre_source(space, scale=scale), collect=False)
    metrics = pipeline.metrics
    clean = metrics["clean"]
    return {
        "scale": scale,
        "batch_size": BATCH_SIZE,
        "stages": metrics.as_dict()["stages"],
        "total_seconds": metrics.total_seconds,
        "records_in": clean.items_in,
        "zero_duration_share": (
            clean.drops.get("zero_duration", 0) / clean.items_in
            if clean.items_in else 0.0),
        "trajectories_stored": len(store_sink.store),
        "patterns_mined": len(miner.patterns),
        "top_patterns": [p.describe() for p in miner.patterns[:5]],
    }


def render(result: Dict[str, object]) -> str:
    """Render the per-stage engine report."""
    rows: List[tuple] = []
    for stage in result["stages"]:
        notes = dict(stage["drops"])
        notes.update(stage["counters"])
        rows.append((
            stage["name"], stage["batches"], stage["items_in"],
            stage["items_out"], stage["dropped"],
            "{:.4f}".format(stage["seconds"]),
            ", ".join("{}={}".format(k, v)
                      for k, v in sorted(notes.items())) or "-",
        ))
    table = render_table(
        ("stage", "batches", "in", "out", "dropped", "seconds",
         "detail"), rows)
    lines = [
        table,
        "",
        "records in: {} | zero-duration share: {:.1%} "
        "(paper: ~10%)".format(result["records_in"],
                               result["zero_duration_share"]),
        "trajectories stored: {} | patterns mined: {} | "
        "engine time: {:.3f}s".format(result["trajectories_stored"],
                                      result["patterns_mined"],
                                      result["total_seconds"]),
    ]
    if result["top_patterns"]:
        lines.append("top patterns: " + "; ".join(result["top_patterns"]))
    return "\n".join(lines)
