"""Ablations of the paper's three headline modelling decisions.

The paper argues for (A1) *directed* accessibility NRGs, (A2) a
*static* layer hierarchy instead of ad-hoc subdivision, and (A3)
*overlapping* episodes.  Each ablation removes one decision and
measures what breaks:

* **A1** — symmetrise the zone NRG and count the movements it wrongly
  admits (one-way doors become two-way: re-entering through the
  Carrousel exit, entering the Salle des États against the flow);
* **A2** — drop the static hierarchy for a Figure 1-style ad-hoc
  subdivision (only some nodes split) and measure how many trajectory
  entries can still be lifted to the floor level;
* **A3** — force mutually exclusive episodes on the Figure 5 scenario
  and measure the lost semantics (multi-label time points disappear).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.inference import LiftReport, lift_trajectory
from repro.core import TrajectoryBuilder
from repro.experiments import fig5
from repro.experiments.textable import render_table
from repro.indoor.hierarchy import LayerHierarchy
from repro.louvre.dataset import DatasetParameters, LouvreDatasetGenerator
from repro.louvre.space import LouvreSpace


def ablate_directed(space: Optional[LouvreSpace] = None
                    ) -> Dict[str, object]:
    """A1 — directed vs symmetrised accessibility NRG."""
    space = space or LouvreSpace()
    directed = space.zone_nrg
    undirected = directed.to_undirected()
    one_way = directed.asymmetric_pairs()
    wrongly_admitted = [
        (target, source) for source, target in one_way
        if undirected.has_transition(target, source)
        and not directed.has_transition(target, source)]
    return {
        "directed_transitions": directed.transition_count(),
        "undirected_transitions": undirected.transition_count(),
        "one_way_restrictions": [list(p) for p in one_way],
        "wrongly_admitted_moves": [list(p) for p in wrongly_admitted],
        "wrongly_admitted_count": len(wrongly_admitted),
    }


def ablate_static_hierarchy(space: Optional[LouvreSpace] = None,
                            scale: float = 0.02) -> Dict[str, object]:
    """A2 — static hierarchy vs ad-hoc subdivision.

    With the static Floor→Zone hierarchy every zone lifts to its floor.
    The ad-hoc variant (Figure 1 style) only declares parents for the
    zones someone bothered to subdivide — here the Denon wing — so
    lifting silently loses every entry elsewhere.
    """
    space = space or LouvreSpace()
    generator = LouvreDatasetGenerator(
        space, DatasetParameters().scaled(scale))
    records = generator.detection_records()
    builder = TrajectoryBuilder(space.dataset_zone_nrg())
    trajectories, _ = builder.build_all(records)

    # Static hierarchy: the real floor→zone parenthood.
    static_report = LiftReport()
    static_lifted = 0
    for trajectory in trajectories:
        try:
            lift_trajectory(trajectory, space.zone_hierarchy, "floors",
                            report=static_report)
            static_lifted += 1
        except ValueError:
            pass

    # Ad-hoc: keep only the Denon zones' parent edges.
    adhoc = _AdHocHierarchy(space.zone_hierarchy, keep_wing="denon")
    adhoc_report = LiftReport()
    adhoc_lifted = 0
    for trajectory in trajectories:
        try:
            lift_trajectory(trajectory, adhoc, "floors",
                            report=adhoc_report)
            adhoc_lifted += 1
        except ValueError:
            pass
    return {
        "trajectories": len(trajectories),
        "static_liftable_trajectories": static_lifted,
        "static_dropped_entries": static_report.dropped_unliftable,
        "adhoc_liftable_trajectories": adhoc_lifted,
        "adhoc_dropped_entries": adhoc_report.dropped_unliftable,
        "static_entry_loss_share":
            static_report.dropped_unliftable
            / max(1, static_report.input_entries),
        "adhoc_entry_loss_share":
            adhoc_report.dropped_unliftable
            / max(1, adhoc_report.input_entries),
    }


class _AdHocHierarchy:
    """A lift-compatible view keeping only one wing's parent edges."""

    def __init__(self, base: LayerHierarchy, keep_wing: str) -> None:
        self._base = base
        self._keep = keep_wing
        self.graph = base.graph

    def lift(self, node: str, target_layer: str) -> Optional[str]:
        wing = self.graph.space("zones").cell(node).attribute("wing") \
            if node in self.graph.layer("zones") else None
        if wing != self._keep:
            return None
        return self._base.lift(node, target_layer)

    def level_of_layer(self, layer_name: str) -> int:
        return self._base.level_of_layer(layer_name)


def ablate_exclusive_episodes() -> Dict[str, object]:
    """A3 — overlapping vs mutually exclusive episodes (Figure 5)."""
    result = fig5.run()
    multi_label_lost = len(result["labels_at_shop_time"]) <= 1
    return {
        "overlapping_episodes": result["episodes"],
        "exclusive_episodes": result["exclusive_episodes"],
        "overlapping_tagged_share": result["overlapping_tagged_share"],
        "exclusive_tagged_share": result["exclusive_tagged_share"],
        "overlapping_labels_at_shop":
            result["labels_at_shop_time"],
        "exclusivity_loses_multilabel": not multi_label_lost,
    }


def run(space: Optional[LouvreSpace] = None) -> Dict[str, object]:
    """Run all three ablations."""
    space = space or LouvreSpace()
    return {
        "A1_directed": ablate_directed(space),
        "A2_static_hierarchy": ablate_static_hierarchy(space),
        "A3_overlapping_episodes": ablate_exclusive_episodes(),
    }


def render(result: Dict[str, object]) -> str:
    """Render the three ablation cards."""
    a1 = result["A1_directed"]
    a2 = result["A2_static_hierarchy"]
    a3 = result["A3_overlapping_episodes"]
    rows = [
        ("A1 one-way restrictions in the zone NRG",
         len(a1["one_way_restrictions"])),
        ("A1 moves wrongly admitted when undirected",
         a1["wrongly_admitted_count"]),
        ("A2 entry loss share (static hierarchy)",
         "{:.1%}".format(a2["static_entry_loss_share"])),
        ("A2 entry loss share (ad-hoc subdivision)",
         "{:.1%}".format(a2["adhoc_entry_loss_share"])),
        ("A3 tagged share (overlapping)",
         "{:.2f}".format(a3["overlapping_tagged_share"])),
        ("A3 tagged share (forced exclusive)",
         "{:.2f}".format(a3["exclusive_tagged_share"])),
        ("A3 exclusivity loses multi-label semantics",
         a3["exclusivity_loses_multilabel"]),
    ]
    return render_table(("ablation finding", "value"), rows)
