"""Figure 4 — RoIs within zones 60853/60854 and the coverage hypothesis.

Section 4.2: "is a floor fully covered by the rooms it contains
(Figure 2)? ... the IndoorGML standard and related works seem to adhere
to a full-coverage hypothesis ... However, it is often an unrealistic
assumption.  In Figure 4 for instance, the RoIs of the displayed
exhibits do not completely cover their room's surface."

This experiment quantifies coverage at two hierarchy steps:

* Floor → Room: full coverage (ratio 1.0) — rooms partition floors;
* Room → RoI: partial coverage — and specifically for the rooms of
  the figure's zones 60854 and 60853.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.textable import render_table
from repro.indoor.coverage import (
    coverage_summary,
    layer_coverage_report,
    node_coverage,
)
from repro.louvre.space import LouvreSpace
from repro.louvre.zones import ZONE_GRANDE_GALERIE, ZONE_SALLE_DES_ETATS


def run(space: Optional[LouvreSpace] = None) -> Dict[str, object]:
    """Compute coverage at both hierarchy steps."""
    space = space or LouvreSpace()
    hierarchy = space.core_hierarchy

    floor_reports = layer_coverage_report(hierarchy, "floors")
    floor_summary = coverage_summary(floor_reports)

    room_reports = layer_coverage_report(hierarchy, "rooms")
    rooms_with_rois = [r for r in room_reports if r.child_count > 0]
    room_summary = coverage_summary(rooms_with_rois)

    figure_rooms: List[Dict[str, object]] = []
    for zone_id in (ZONE_SALLE_DES_ETATS, ZONE_GRANDE_GALERIE):
        for room_id in space.floorplan.rooms_of_zone(zone_id):
            report = node_coverage(hierarchy, room_id)
            if report is None:
                continue
            figure_rooms.append({
                "zone": zone_id,
                "room": room_id,
                "rois": report.child_count,
                "ratio": report.ratio,
            })
    return {
        "floor_coverage": floor_summary,
        "floors_fully_covered":
            floor_summary["min_ratio"] >= 0.999,
        "roi_coverage": room_summary,
        "rois_fully_cover_rooms":
            room_summary["count"] > 0
            and room_summary["max_ratio"] >= 0.999,
        "figure_rooms": figure_rooms,
    }


def render(result: Dict[str, object]) -> str:
    """Render the coverage comparison."""
    rows = [
        ("Floor → Room: mean coverage",
         "{:.3f}".format(result["floor_coverage"]["mean_ratio"])),
        ("Floor → Room: min coverage",
         "{:.3f}".format(result["floor_coverage"]["min_ratio"])),
        ("full-coverage holds at Room level",
         result["floors_fully_covered"]),
        ("Room → RoI: mean coverage",
         "{:.3f}".format(result["roi_coverage"]["mean_ratio"])),
        ("Room → RoI: max coverage",
         "{:.3f}".format(result["roi_coverage"]["max_ratio"])),
        ("full-coverage holds at RoI level",
         result["rois_fully_cover_rooms"]),
    ]
    summary = render_table(("fact", "value"), rows)
    figure = render_table(
        ("zone", "room", "RoIs", "coverage"),
        [(r["zone"], r["room"], r["rois"],
          "{:.3f}".format(r["ratio"])) for r in result["figure_rooms"]])
    return "{}\n\nFigure 4 rooms (zones 60853/60854):\n{}".format(
        summary, figure)
