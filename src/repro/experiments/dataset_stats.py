"""Section 4.1 — the corpus statistics, paper vs measured.

The paper's only quantitative "evaluation" is the dataset description
of Section 4.1.  This experiment regenerates the synthetic corpus with
the default seed and recomputes every published number from the raw
records, so the comparison is an actual measurement, not an echo of
the generator's parameters.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from repro.core.timeutil import duration_hms
from repro.experiments.textable import render_table
from repro.louvre.dataset import (
    DatasetParameters,
    LouvreDatasetGenerator,
    PAPER_STATISTICS,
)
from repro.louvre.space import LouvreSpace


def run(space: Optional[LouvreSpace] = None,
        scale: float = 1.0) -> Dict[str, object]:
    """Generate the corpus and measure all Section 4.1 statistics."""
    space = space or LouvreSpace()
    parameters = DatasetParameters() if scale >= 1.0 \
        else DatasetParameters().scaled(scale)
    generator = LouvreDatasetGenerator(space, parameters)
    visits = generator.generate()

    per_visitor = Counter(v.visitor_id for v in visits)
    detections = [r for v in visits for r in v.records]
    visit_durations = [v.duration for v in visits]
    detection_durations = [r.duration for r in detections]
    zero = sum(1 for d in detection_durations if d == 0)

    measured = {
        "visits": len(visits),
        "visitors": len(per_visitor),
        "returning_visitors": sum(
            1 for c in per_visitor.values() if c >= 2),
        "repeat_visits": sum(c - 1 for c in per_visitor.values()),
        "zone_detections": len(detections),
        "zone_transitions": sum(
            len(v.records) - 1 for v in visits),
        "max_visit_duration_s": int(max(visit_durations)),
        "max_detection_duration_s": int(max(detection_durations)),
        "min_visit_duration_s": int(min(visit_durations)),
        "min_detection_duration_s": int(min(detection_durations)),
        "zero_duration_share": zero / len(detections),
        "dataset_zones": len({r.state for r in detections}),
    }
    comparison: List[Dict[str, object]] = []
    for key, paper_value in PAPER_STATISTICS.items():
        if key not in measured:
            continue
        measured_value = measured[key]
        if isinstance(paper_value, float):
            matches = abs(measured_value - paper_value) <= 0.02
        else:
            matches = (measured_value == paper_value) if scale >= 1.0 \
                else True
        comparison.append({
            "statistic": key,
            "paper": paper_value,
            "measured": measured_value,
            "matches": matches,
        })
    return {
        "scale": scale,
        "measured": measured,
        "comparison": comparison,
        "all_match": all(c["matches"] for c in comparison),
    }


def render(result: Dict[str, object]) -> str:
    """Render the paper-vs-measured table."""
    rows = []
    for item in result["comparison"]:
        paper = item["paper"]
        measured = item["measured"]
        if item["statistic"].endswith("duration_s"):
            paper = "{} ({})".format(paper, duration_hms(float(paper)))
            measured = "{} ({})".format(
                measured, duration_hms(float(measured)))
        elif isinstance(measured, float):
            measured = "{:.4f}".format(measured)
        rows.append((item["statistic"], paper, measured,
                     "ok" if item["matches"] else "DIFF"))
    return render_table(("statistic (Section 4.1)", "paper", "measured",
                         "match"), rows)
