"""Figure 1 — the 2-level hierarchical graph of the Denon wing.

The figure shows the central part of the Louvre's Denon wing first
floor as a two-layer MLSM graph: layer ``i+1`` holds rooms 1, 2, 3,
4 ("Salle des États", housing the Mona Lisa) and hall 5; layer ``i``
refines hall 5 into 5a, 5b, 5c (replicating the unsplit rooms).

Two modelled facts are checked against the paper's narrative:

* the joint edges mean a visitor in hall 5 "can only be in either 5a,
  5b, or 5c in layer i";
* "entering it [room 4] from room 2 is often prohibited by the museum
  personnel while exiting it that way is allowed" — so the directed
  accessibility NRG has a 4→2 edge but no 2→4 edge.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.textable import render_table
from repro.indoor.multilayer import JointEdge, LayeredIndoorGraph
from repro.indoor.nrg import EdgeKind, NodeRelationGraph
from repro.spatial.topology import TopologicalRelation


def build_graph() -> LayeredIndoorGraph:
    """Construct the Figure 1 graph."""
    upper = NodeRelationGraph("layer-i+1", EdgeKind.ACCESSIBILITY)
    for node in ("1", "2", "3", "4", "5"):
        upper.add_node(node)
    upper.connect("1", "2", bidirectional=True)
    upper.connect("2", "3", bidirectional=True)
    upper.connect("3", "5", bidirectional=True)
    upper.connect("1", "5", bidirectional=True)
    # Salle des États one-way rule: exit 4→2 allowed, entry 2→4 not.
    upper.connect("4", "2", bidirectional=False)
    upper.connect("5", "4", bidirectional=True)

    lower = NodeRelationGraph("layer-i", EdgeKind.ACCESSIBILITY)
    for node in ("1i", "2i", "3i", "4i", "5a", "5b", "5c"):
        lower.add_node(node)
    lower.connect("1i", "2i", bidirectional=True)
    lower.connect("2i", "3i", bidirectional=True)
    lower.connect("3i", "5c", bidirectional=True)
    lower.connect("1i", "5a", bidirectional=True)
    lower.connect("4i", "2i", bidirectional=False)
    lower.connect("5b", "4i", bidirectional=True)
    lower.connect("5a", "5b", bidirectional=True)
    lower.connect("5b", "5c", bidirectional=True)

    graph = LayeredIndoorGraph("figure1")
    graph.add_layer(upper)
    graph.add_layer(lower)
    # Hall 5 is subdivided; rooms 1-4 are replicated ('equal').
    for part in ("5a", "5b", "5c"):
        graph.add_joint_edge(JointEdge(
            "layer-i+1", "5", "layer-i", part,
            TopologicalRelation.CONTAINS))
    for original, replica in (("1", "1i"), ("2", "2i"), ("3", "3i"),
                              ("4", "4i")):
        graph.add_joint_edge(JointEdge(
            "layer-i+1", original, "layer-i", replica,
            TopologicalRelation.EQUAL))
    return graph


def run() -> Dict[str, object]:
    """Build the graph and verify the figure's two modelling claims."""
    graph = build_graph()
    upper = graph.layer("layer-i+1")

    hall_partners = sorted(graph.joint_partners("5", layer="layer-i"))
    one_way = sorted(upper.asymmetric_pairs())
    overall = graph.overall_states("5", ["layer-i"])
    return {
        "layers": list(graph.layer_names),
        "node_count": graph.node_count,
        "intra_edges": graph.intra_edge_count,
        "joint_edges": graph.joint_edge_count,
        "hall5_active_states": hall_partners,
        "hall5_claim_holds": hall_partners == ["5a", "5b", "5c"],
        "one_way_pairs": [list(p) for p in one_way],
        "salle_des_etats_rule_holds":
            upper.has_transition("4", "2")
            and not upper.has_transition("2", "4"),
        "overall_states_for_hall5": overall,
        "validation_problems": graph.validate(),
    }


def render(result: Dict[str, object]) -> str:
    """Render the figure's facts as a table."""
    rows = [
        ("layers", ", ".join(result["layers"])),
        ("nodes", result["node_count"]),
        ("intra-layer edges", result["intra_edges"]),
        ("joint edges (with converses)", result["joint_edges"]),
        ("active states for hall 5 in layer i",
         ", ".join(result["hall5_active_states"])),
        ("'5 → {5a, 5b, 5c}' claim", result["hall5_claim_holds"]),
        ("one-way pairs (exit-only)",
         "; ".join("→".join(p) for p in result["one_way_pairs"])),
        ("Salle des États rule (4→2 ok, 2→4 not)",
         result["salle_des_etats_rule_holds"]),
    ]
    return render_table(("fact", "value"), rows)
