"""Figure 3 — choropleth of detections over the 11 ground-floor zones.

The paper's Figure 3 is a choropleth map of visitor detection counts
across the Louvre's 11 ground-floor polygonal zones.  This experiment
regenerates the underlying data series from the synthetic corpus —
detections and distinct visitors per ground-floor zone — and renders
the ASCII analogue of the map (a ranked bar chart; the geometry is
available from the floorplan for anyone who wants to draw polygons).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core import TrajectoryBuilder
from repro.experiments.textable import render_bar_chart, render_table
from repro.louvre.dataset import DatasetParameters, LouvreDatasetGenerator
from repro.louvre.space import LouvreSpace
from repro.louvre.zones import GROUND_FLOOR_ZONE_IDS, ZONES_BY_ID
from repro.mining.sequences import detection_counts, visitor_counts


def run(space: Optional[LouvreSpace] = None,
        scale: float = 1.0) -> Dict[str, object]:
    """Generate the corpus and count ground-floor zone detections."""
    space = space or LouvreSpace()
    parameters = DatasetParameters() if scale >= 1.0 \
        else DatasetParameters().scaled(scale)
    generator = LouvreDatasetGenerator(space, parameters)
    records = generator.detection_records()
    builder = TrajectoryBuilder(space.dataset_zone_nrg())
    trajectories, report = builder.build_all(records)

    per_zone = detection_counts(trajectories, GROUND_FLOOR_ZONE_IDS)
    per_zone_visitors = visitor_counts(trajectories,
                                       GROUND_FLOOR_ZONE_IDS)
    total = sum(per_zone.values())
    series = []
    for zone_id in sorted(per_zone, key=per_zone.get, reverse=True):
        series.append({
            "zone": zone_id,
            "theme": ZONES_BY_ID[zone_id].theme,
            "detections": per_zone[zone_id],
            "visitors": per_zone_visitors[zone_id],
            "share": per_zone[zone_id] / total if total else 0.0,
        })
    return {
        "ground_floor_zones": len(GROUND_FLOOR_ZONE_IDS),
        "total_ground_floor_detections": total,
        "series": series,
        "corpus_trajectories": len(trajectories),
        "zero_duration_share": report.cleaning.zero_duration_share,
    }


def render(result: Dict[str, object]) -> str:
    """Render the choropleth data table and bar chart."""
    rows = [(item["zone"], item["theme"], item["detections"],
             item["visitors"], "{:.1%}".format(item["share"]))
            for item in result["series"]]
    table = render_table(
        ("zone", "theme", "detections", "visitors", "share"), rows)
    chart = render_bar_chart(
        [item["zone"] for item in result["series"]],
        [item["detections"] for item in result["series"]])
    return "{}\n\n{}".format(table, chart)
