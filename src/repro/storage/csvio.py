"""CSV / JSON-lines persistence.

Two formats cover the pipeline's two record shapes:

* **detection CSV** — the raw input shape (one zone detection per
  row), matching what a museum's app backend would export;
* **trajectory JSON-lines** — one serialised semantic trajectory per
  line, the SITM-native archive format (lossless round-trip via
  :meth:`SemanticTrajectory.to_dict`).
"""

from __future__ import annotations

import csv
import json
from typing import Iterable, Iterator, List

from repro.core.builder import DetectionRecord
from repro.core.trajectory import SemanticTrajectory

#: Column order of the detection CSV format.
DETECTION_COLUMNS = ("mo_id", "state", "t_start", "t_end", "visit_id")


def write_detections_csv(records: Iterable[DetectionRecord],
                         path: str) -> int:
    """Write detection records to CSV; returns the row count."""
    count = 0
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(DETECTION_COLUMNS)
        for record in records:
            writer.writerow([
                record.mo_id,
                record.state,
                repr(record.t_start),
                repr(record.t_end),
                record.visit_id or "",
            ])
            count += 1
    return count


def iter_detrecords_csv(path: str) -> Iterator[DetectionRecord]:
    """Stream detection records from CSV, one row at a time.

    The streaming counterpart of :func:`read_detrecords_csv` — used as
    a pipeline source, it keeps file-backed runs O(batch) in memory.

    Raises:
        ValueError: on a malformed header.
    """
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or tuple(header) != DETECTION_COLUMNS:
            raise ValueError(
                "unexpected detection CSV header: {!r}".format(header))
        for row in reader:
            mo_id, state, t_start, t_end, visit_id = row
            yield DetectionRecord(
                mo_id=mo_id,
                state=state,
                t_start=float(t_start),
                t_end=float(t_end),
                visit_id=visit_id or None,
            )


def read_detrecords_csv(path: str) -> List[DetectionRecord]:
    """Read detection records from CSV.

    Raises:
        ValueError: on a malformed header.
    """
    return list(iter_detrecords_csv(path))


def write_trajectories_jsonl(trajectories: Iterable[SemanticTrajectory],
                             path: str) -> int:
    """Write trajectories as JSON-lines; returns the line count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for trajectory in trajectories:
            handle.write(json.dumps(trajectory.to_dict()))
            handle.write("\n")
            count += 1
    return count


def read_trajectories_jsonl(path: str) -> List[SemanticTrajectory]:
    """Read trajectories from a JSON-lines archive."""
    trajectories: List[SemanticTrajectory] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            trajectories.append(
                SemanticTrajectory.from_dict(json.loads(line)))
    return trajectories
