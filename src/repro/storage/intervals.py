"""A static interval index for presence-time queries.

Presence intervals are the SITM's temporal primitive, so "who was in
zone X between t1 and t2" is the store's hottest query shape.  The
index is a classic centered interval tree built once over the corpus
(the store rebuilds it lazily after inserts), giving
O(log n + k) stabbing and overlap queries instead of a corpus scan.

Payloads are opaque to the tree; the store attaches ``(doc_id,
state)`` pairs so a stab proves containment *and* answers "in which
state" in one step — consumers never rescan a trace the index already
searched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class Interval(Generic[T]):
    """A closed interval ``[start, end]`` with a payload."""

    start: float
    end: float
    payload: T

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("interval end precedes start")

    def contains(self, t: float) -> bool:
        """True when ``t`` lies in the closed interval."""
        return self.start <= t <= self.end

    def overlaps(self, start: float, end: float) -> bool:
        """True when the closed intervals intersect."""
        return self.start <= end and start <= self.end


class _Node(Generic[T]):
    """One node of the centered interval tree."""

    __slots__ = ("center", "by_start", "by_end", "left", "right")

    def __init__(self, center: float,
                 spanning: List[Interval[T]]) -> None:
        self.center = center
        self.by_start = sorted(spanning, key=lambda iv: iv.start)
        self.by_end = sorted(spanning, key=lambda iv: -iv.end)
        self.left: Optional["_Node[T]"] = None
        self.right: Optional["_Node[T]"] = None


class IntervalIndex(Generic[T]):
    """Centered interval tree over a fixed set of intervals."""

    def __init__(self, intervals: Sequence[Interval[T]]) -> None:
        self._size = len(intervals)
        self._root = self._build(list(intervals))

    def __len__(self) -> int:
        return self._size

    def _build(self, intervals: List[Interval[T]]
               ) -> Optional[_Node[T]]:
        if not intervals:
            return None
        points: List[float] = []
        for interval in intervals:
            points.append(interval.start)
            points.append(interval.end)
        points.sort()
        center = points[len(points) // 2]
        left: List[Interval[T]] = []
        right: List[Interval[T]] = []
        spanning: List[Interval[T]] = []
        for interval in intervals:
            if interval.end < center:
                left.append(interval)
            elif interval.start > center:
                right.append(interval)
            else:
                spanning.append(interval)
        node = _Node(center, spanning)
        node.left = self._build(left)
        node.right = self._build(right)
        return node

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def stab(self, t: float) -> List[Interval[T]]:
        """All intervals containing time ``t``."""
        results: List[Interval[T]] = []
        node = self._root
        while node is not None:
            if t < node.center:
                for interval in node.by_start:
                    if interval.start > t:
                        break
                    results.append(interval)
                node = node.left
            elif t > node.center:
                for interval in node.by_end:
                    if interval.end < t:
                        break
                    results.append(interval)
                node = node.right
            else:
                results.extend(node.by_start)
                node = None
        return results

    def overlapping(self, start: float, end: float) -> List[Interval[T]]:
        """All intervals intersecting ``[start, end]``.

        Raises:
            ValueError: when ``end < start``.
        """
        if end < start:
            raise ValueError("query end precedes start")
        results: List[Interval[T]] = []
        self._collect_overlaps(self._root, start, end, results)
        return results

    def _collect_overlaps(self, node: Optional[_Node[T]], start: float,
                          end: float,
                          results: List[Interval[T]]) -> None:
        if node is None:
            return
        for interval in node.by_start:
            if interval.start > end:
                break
            if interval.overlaps(start, end):
                results.append(interval)
        if start < node.center:
            self._collect_overlaps(node.left, start, end, results)
        if end > node.center:
            self._collect_overlaps(node.right, start, end, results)

    def all_intervals(self) -> List[Interval[T]]:
        """Every stored interval (no particular order)."""
        results: List[Interval[T]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            results.extend(node.by_start)
            stack.append(node.left)
            stack.append(node.right)
        return results
