"""A static interval index for presence-time queries.

Presence intervals are the SITM's temporal primitive, so "who was in
zone X between t1 and t2" is the store's hottest query shape.  The
index is a classic centered interval tree built once over the corpus
(the store rebuilds it lazily after inserts), giving
O(log n + k) stabbing and overlap queries instead of a corpus scan.

Payloads are opaque to the tree; the store attaches ``(doc_id,
state)`` pairs so a stab proves containment *and* answers "in which
state" in one step — consumers never rescan a trace the index already
searched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class Interval(Generic[T]):
    """A closed interval ``[start, end]`` with a payload."""

    start: float
    end: float
    payload: T

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("interval end precedes start")

    def contains(self, t: float) -> bool:
        """True when ``t`` lies in the closed interval."""
        return self.start <= t <= self.end

    def overlaps(self, start: float, end: float) -> bool:
        """True when the closed intervals intersect."""
        return self.start <= end and start <= self.end


class _Node(Generic[T]):
    """One node of the centered interval tree."""

    __slots__ = ("center", "by_start", "by_end", "left", "right")

    def __init__(self, center: float, by_start: List[Interval[T]],
                 by_end: List[Interval[T]]) -> None:
        self.center = center
        self.by_start = by_start
        self.by_end = by_end
        self.left: Optional["_Node[T]"] = None
        self.right: Optional["_Node[T]"] = None


class IntervalIndex(Generic[T]):
    """Centered interval tree over a fixed set of intervals.

    The build sorts the intervals (and their endpoints) exactly once
    and *partitions* the sorted lists down the recursion — a stable
    partition of a sorted list stays sorted — so construction is
    O(n log n) instead of the classic O(n log² n) re-sort per node.
    The resulting tree is identical to the re-sorting build's.
    """

    def __init__(self, intervals: Sequence[Interval[T]]) -> None:
        self._size = len(intervals)
        items = list(intervals)
        by_start = sorted(items, key=lambda iv: iv.start)
        by_end = sorted(items, key=lambda iv: -iv.end)
        endpoints: List[Tuple[float, Interval[T]]] = sorted(
            [(iv.start, iv) for iv in items]
            + [(iv.end, iv) for iv in items],
            key=lambda pair: pair[0])
        self._root = self._build(by_start, by_end, endpoints)

    def __len__(self) -> int:
        return self._size

    def _build(self, by_start: List[Interval[T]],
               by_end: List[Interval[T]],
               endpoints: List[Tuple[float, Interval[T]]]
               ) -> Optional[_Node[T]]:
        if not by_start:
            return None
        center = endpoints[len(endpoints) // 2][0]
        left_start: List[Interval[T]] = []
        right_start: List[Interval[T]] = []
        span_start: List[Interval[T]] = []
        for interval in by_start:
            if interval.end < center:
                left_start.append(interval)
            elif interval.start > center:
                right_start.append(interval)
            else:
                span_start.append(interval)
        left_end: List[Interval[T]] = []
        right_end: List[Interval[T]] = []
        span_end: List[Interval[T]] = []
        for interval in by_end:
            if interval.end < center:
                left_end.append(interval)
            elif interval.start > center:
                right_end.append(interval)
            else:
                span_end.append(interval)
        left_points: List[Tuple[float, Interval[T]]] = []
        right_points: List[Tuple[float, Interval[T]]] = []
        for pair in endpoints:
            interval = pair[1]
            if interval.end < center:
                left_points.append(pair)
            elif interval.start > center:
                right_points.append(pair)
        node = _Node(center, span_start, span_end)
        node.left = self._build(left_start, left_end, left_points)
        node.right = self._build(right_start, right_end, right_points)
        return node

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def stab(self, t: float) -> List[Interval[T]]:
        """All intervals containing time ``t``."""
        results: List[Interval[T]] = []
        node = self._root
        while node is not None:
            if t < node.center:
                for interval in node.by_start:
                    if interval.start > t:
                        break
                    results.append(interval)
                node = node.left
            elif t > node.center:
                for interval in node.by_end:
                    if interval.end < t:
                        break
                    results.append(interval)
                node = node.right
            else:
                results.extend(node.by_start)
                node = None
        return results

    def overlapping(self, start: float, end: float) -> List[Interval[T]]:
        """All intervals intersecting ``[start, end]``.

        Raises:
            ValueError: when ``end < start``.
        """
        if end < start:
            raise ValueError("query end precedes start")
        results: List[Interval[T]] = []
        self._collect_overlaps(self._root, start, end, results)
        return results

    def _collect_overlaps(self, node: Optional[_Node[T]], start: float,
                          end: float,
                          results: List[Interval[T]]) -> None:
        """Iterative pre-order walk (left before right), no recursion."""
        stack: List[_Node[T]] = []
        if node is not None:
            stack.append(node)
        while stack:
            node = stack.pop()
            for interval in node.by_start:
                if interval.start > end:
                    break
                if interval.overlaps(start, end):
                    results.append(interval)
            # Push right first so the left subtree is visited first,
            # preserving the recursive version's result order.
            if end > node.center and node.right is not None:
                stack.append(node.right)
            if start < node.center and node.left is not None:
                stack.append(node.left)

    def all_intervals(self) -> List[Interval[T]]:
        """Every stored interval (no particular order)."""
        results: List[Interval[T]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            results.extend(node.by_start)
            stack.append(node.left)
            stack.append(node.right)
        return results
