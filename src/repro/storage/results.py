"""Lazy, re-iterable query results.

:meth:`Query.execute <repro.storage.query.Query.execute>` returns a
:class:`ResultSet` — an iterator-backed view over matching
:class:`~repro.storage.store.StoredTrajectory` items instead of a
materialized list.  Nothing is fetched until the set is consumed;
``limit``/``offset``/``order_by`` derive new lazy views; ``count()``
short-circuits to an index-only count when the underlying plan has no
residual predicates; ``to_list()`` materializes for compatibility
with the old eager API.

A result set is *re-iterable*: each iteration re-runs its source, so
results always reflect the store at consumption time.  It also
compares equal to a list of the same hits, which keeps pre-redesign
call sites (``hits == []``, ``len(hits)``) working unchanged.
"""

from __future__ import annotations

from itertools import islice
from typing import (
    Callable,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Union,
)

from repro.core.trajectory import SemanticTrajectory
from repro.storage.store import StoredTrajectory

#: ``order_by`` accepts a key callable or one of these field names.
ORDER_KEYS = {
    "doc_id": lambda hit: hit.doc_id,
    "mo_id": lambda hit: hit.trajectory.mo_id,
    "t_start": lambda hit: hit.trajectory.t_start,
    "t_end": lambda hit: hit.trajectory.t_end,
    "duration": lambda hit: hit.trajectory.duration,
    "entries": lambda hit: len(hit.trajectory.trace),
}

OrderKey = Union[str, Callable[[StoredTrajectory], object]]


class ResultSet:
    """A lazy stream of query hits with list-like conveniences.

    Args:
        source: zero-argument callable producing a fresh iterator of
            hits; called once per consumption.
        fast_count: optional zero-argument callable returning the
            exact result count without iterating (the planner provides
            one when no residual predicates remain).
    """

    def __init__(self, source: Callable[[], Iterator[StoredTrajectory]],
                 fast_count: Optional[Callable[[], int]] = None) -> None:
        self._source = source
        self._fast_count = fast_count

    # ------------------------------------------------------------------
    # consumption
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[StoredTrajectory]:
        return self._source()

    def trajectories(self) -> Iterator[SemanticTrajectory]:
        """The hits' trajectories (ids stripped), lazily."""
        return (hit.trajectory for hit in self)

    def ids(self) -> FrozenSet[int]:
        """The matching document ids."""
        return frozenset(hit.doc_id for hit in self)

    def first(self) -> Optional[StoredTrajectory]:
        """The first hit, or ``None``; stops at the first match."""
        return next(iter(self), None)

    def count(self) -> int:
        """Number of hits; index-only when the plan allows it."""
        if self._fast_count is not None:
            return self._fast_count()
        return sum(1 for _ in self)

    def to_list(self) -> List[StoredTrajectory]:
        """Materialize every hit (the old eager ``execute()``)."""
        return list(self)

    # ------------------------------------------------------------------
    # derived lazy views
    # ------------------------------------------------------------------
    def limit(self, count: int) -> "ResultSet":
        """At most the first ``count`` hits.

        Raises:
            ValueError: for a negative count.
        """
        if count < 0:
            raise ValueError("limit must be non-negative")
        fast = None
        if self._fast_count is not None:
            base = self._fast_count
            fast = lambda: min(count, base())  # noqa: E731
        return ResultSet(lambda: islice(self._source(), count), fast)

    def offset(self, count: int) -> "ResultSet":
        """Skip the first ``count`` hits.

        Raises:
            ValueError: for a negative count.
        """
        if count < 0:
            raise ValueError("offset must be non-negative")
        fast = None
        if self._fast_count is not None:
            base = self._fast_count
            fast = lambda: max(0, base() - count)  # noqa: E731
        return ResultSet(lambda: islice(self._source(), count, None),
                         fast)

    def since(self, doc_id: int) -> "ResultSet":
        """Hits with ``doc_id`` strictly greater than the given id.

        The resume primitive behind the service layer's stable
        cursors: query execution yields hits in document-id order and
        the store is insert-only, so "everything after the last id I
        saw" identifies the same boundary on every consumption — even
        when new matching trajectories were ingested meanwhile (they
        only ever append past the boundary).
        """
        return ResultSet(lambda: (hit for hit in self._source()
                                  if hit.doc_id > doc_id))

    def order_by(self, key: OrderKey,
                 reverse: bool = False) -> "ResultSet":
        """Hits sorted by a field name or key callable.

        Sorting materializes internally at consumption time; the view
        itself stays lazy and re-iterable.

        Raises:
            KeyError: for an unknown field name.
        """
        key_fn = ORDER_KEYS[key] if isinstance(key, str) else key
        return ResultSet(
            lambda: iter(sorted(self._source(), key=key_fn,
                                reverse=reverse)),
            self._fast_count)

    # ------------------------------------------------------------------
    # list-compatibility dunders
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.count()

    def __bool__(self) -> bool:
        return self.first() is not None

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ResultSet):
            return self.to_list() == other.to_list()
        if isinstance(other, (list, tuple)):
            return self.to_list() == list(other)
        return NotImplemented

    __hash__ = None  # mutable-store view; not hashable

    def __repr__(self) -> str:
        preview = self.limit(4).to_list()
        suffix = ", ..." if len(preview) == 4 else ""
        return "ResultSet([{}{}])".format(
            ", ".join("#{}".format(h.doc_id) for h in preview[:3]),
            suffix)
