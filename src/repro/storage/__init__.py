"""Trajectory data management layer.

The SITM is a *data model*; this package is the corresponding data
management substrate: a typed in-memory trajectory store with the
secondary indexes symbolic trajectory workloads need (inverted state /
annotation / moving-object indexes, an interval index over presence
times) and a composable query API over them.  CSV / JSON-lines
persistence rounds it out.
"""

from repro.storage.intervals import Interval, IntervalIndex
from repro.storage.index import InvertedIndex
from repro.storage.store import StoredTrajectory, TrajectoryStore
from repro.storage.query import Query
from repro.storage.csvio import (
    iter_detrecords_csv,
    read_detrecords_csv,
    read_trajectories_jsonl,
    write_detections_csv,
    write_trajectories_jsonl,
)

__all__ = [
    "Interval",
    "IntervalIndex",
    "InvertedIndex",
    "StoredTrajectory",
    "TrajectoryStore",
    "Query",
    "iter_detrecords_csv",
    "read_detrecords_csv",
    "read_trajectories_jsonl",
    "write_detections_csv",
    "write_trajectories_jsonl",
]
