"""Trajectory data management layer.

The SITM is a *data model*; this package is the corresponding data
management substrate: a typed in-memory trajectory store with the
secondary indexes symbolic trajectory workloads need (inverted state /
annotation / moving-object indexes, an interval index over presence
times) and a declarative query API over them — logical expression
trees (:mod:`repro.storage.expr`) compiled by a cost-based planner
(:mod:`repro.storage.planner`) into lazy, streaming result sets
(:mod:`repro.storage.results`).  CSV / JSON-lines persistence rounds
it out.  See ``docs/query.md`` for the query model.
"""

from repro.storage.intervals import Interval, IntervalIndex
from repro.storage.index import InvertedIndex
from repro.storage.store import StoredTrajectory, TrajectoryStore
from repro.storage.expr import Expr, ExprSerializationError, expr_from_dict
from repro.storage.planner import Plan, plan_expression
from repro.storage.results import ResultSet
from repro.storage.query import Query
from repro.storage.csvio import (
    iter_detrecords_csv,
    read_detrecords_csv,
    read_trajectories_jsonl,
    write_detections_csv,
    write_trajectories_jsonl,
)

__all__ = [
    "Interval",
    "IntervalIndex",
    "InvertedIndex",
    "StoredTrajectory",
    "TrajectoryStore",
    "Expr",
    "ExprSerializationError",
    "expr_from_dict",
    "Plan",
    "plan_expression",
    "ResultSet",
    "Query",
    "iter_detrecords_csv",
    "read_detrecords_csv",
    "read_trajectories_jsonl",
    "write_detections_csv",
    "write_trajectories_jsonl",
]
