"""Inverted indexes for symbolic trajectory attributes.

A thin, typed wrapper over ``dict[key, set[doc_id]]`` with the boolean
operations trajectory queries compose from.  Kept deliberately simple:
the store's document ids are small integers, so Python sets are the
right data structure.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Set


class InvertedIndex:
    """Maps keys to sets of integer document ids."""

    def __init__(self) -> None:
        self._postings: Dict[Hashable, Set[int]] = {}

    def add(self, key: Hashable, doc_id: int) -> None:
        """Register ``doc_id`` under ``key``."""
        self._postings.setdefault(key, set()).add(doc_id)

    def add_all(self, keys: Iterable[Hashable], doc_id: int) -> None:
        """Register ``doc_id`` under every key."""
        for key in keys:
            self.add(key, doc_id)

    def lookup(self, key: Hashable) -> FrozenSet[int]:
        """Document ids posted under ``key`` (empty when absent)."""
        return frozenset(self._postings.get(key, ()))

    def lookup_any(self, keys: Iterable[Hashable]) -> FrozenSet[int]:
        """Union of postings (documents matching *any* key)."""
        result: Set[int] = set()
        for key in keys:
            result |= self._postings.get(key, set())
        return frozenset(result)

    def lookup_all(self, keys: Iterable[Hashable]) -> FrozenSet[int]:
        """Intersection of postings (documents matching *every* key)."""
        keys = list(keys)
        if not keys:
            return frozenset()
        result: Set[int] = set(self._postings.get(keys[0], set()))
        for key in keys[1:]:
            result &= self._postings.get(key, set())
            if not result:
                break
        return frozenset(result)

    def keys(self) -> List[Hashable]:
        """All indexed keys."""
        return list(self._postings)

    def __len__(self) -> int:
        return len(self._postings)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._postings

    def posting_sizes(self) -> Dict[Hashable, int]:
        """Key → posting-list length (selectivity statistics)."""
        return {key: len(postings)
                for key, postings in self._postings.items()}

    def postings(self) -> Dict[Hashable, Set[int]]:
        """Key → copy of its posting set (for serialization)."""
        return {key: set(postings)
                for key, postings in self._postings.items()}

    def install(self, postings: Dict[Hashable, Iterable[int]]) -> None:
        """Replace the contents wholesale (deserialization path)."""
        self._postings = {key: set(ids)
                          for key, ids in postings.items()}
