"""A composable query API over the trajectory store.

Queries are built fluently and executed against a
:class:`~repro.storage.store.TrajectoryStore`:

    Query(store).visiting_state("zone60853") \\
                .with_annotation(AnnotationKind.GOAL, "visit") \\
                .active_between(t1, t2) \\
                .execute()

Index-backed predicates (state, annotation, moving object, time
window) are intersected as id sets first; residual Python predicates
are applied to the survivors only — a straightforward
index-intersection planner.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, List, Optional

from repro.core.annotations import AnnotationKind
from repro.core.trajectory import SemanticTrajectory
from repro.storage.store import StoredTrajectory, TrajectoryStore

#: A residual filter applied after index intersection.
ResidualPredicate = Callable[[SemanticTrajectory], bool]


class Query:
    """A fluent, immutable-result query builder."""

    def __init__(self, store: TrajectoryStore) -> None:
        self._store = store
        self._id_sets: List[FrozenSet[int]] = []
        self._residuals: List[ResidualPredicate] = []

    # ------------------------------------------------------------------
    # index-backed predicates
    # ------------------------------------------------------------------
    def visiting_state(self, state: str) -> "Query":
        """Keep trajectories visiting ``state``."""
        self._id_sets.append(self._store.ids_visiting_state(state))
        return self

    def visiting_any(self, states: Iterable[str]) -> "Query":
        """Keep trajectories visiting any of ``states``."""
        self._id_sets.append(self._store.ids_visiting_any(states))
        return self

    def visiting_all(self, states: Iterable[str]) -> "Query":
        """Keep trajectories visiting all of ``states``."""
        self._id_sets.append(self._store.ids_visiting_all(states))
        return self

    def with_annotation(self, kind: AnnotationKind,
                        value: object) -> "Query":
        """Keep trajectories carrying the annotation anywhere."""
        self._id_sets.append(self._store.ids_with_annotation(kind, value))
        return self

    def of_moving_object(self, mo_id: str) -> "Query":
        """Keep one moving object's trajectories."""
        self._id_sets.append(self._store.ids_of_mo(mo_id))
        return self

    def active_between(self, start: float, end: float) -> "Query":
        """Keep trajectories with a stay intersecting the window."""
        self._id_sets.append(self._store.ids_active_between(start, end))
        return self

    # ------------------------------------------------------------------
    # residual predicates
    # ------------------------------------------------------------------
    def where(self, predicate: ResidualPredicate) -> "Query":
        """Add an arbitrary Python predicate (applied post-index)."""
        self._residuals.append(predicate)
        return self

    def min_duration(self, seconds: float) -> "Query":
        """Keep trajectories lasting at least ``seconds``."""
        return self.where(lambda t: t.duration >= seconds)

    def min_entries(self, count: int) -> "Query":
        """Keep trajectories with at least ``count`` presence intervals."""
        return self.where(lambda t: len(t.trace) >= count)

    def follows_sequence(self, pattern: Iterable[str]) -> "Query":
        """Keep trajectories whose states contain the contiguous pattern."""
        pattern = tuple(pattern)

        def matches(trajectory: SemanticTrajectory) -> bool:
            sequence = tuple(trajectory.distinct_state_sequence())
            window = len(pattern)
            return any(sequence[i:i + window] == pattern
                       for i in range(len(sequence) - window + 1))

        return self.where(matches)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def candidate_ids(self) -> FrozenSet[int]:
        """The id set after index intersection (before residuals).

        Sets are intersected smallest-first, an old query-planner trick
        that keeps intermediate results minimal.
        """
        if not self._id_sets:
            return self._store.all_ids()
        ordered = sorted(self._id_sets, key=len)
        result = set(ordered[0])
        for id_set in ordered[1:]:
            result &= id_set
            if not result:
                break
        return frozenset(result)

    def execute(self) -> List[StoredTrajectory]:
        """Run the query; results are ordered by document id."""
        hits: List[StoredTrajectory] = []
        for doc_id in sorted(self.candidate_ids()):
            trajectory = self._store.get(doc_id)
            if all(predicate(trajectory)
                   for predicate in self._residuals):
                hits.append(StoredTrajectory(doc_id, trajectory))
        return hits

    def count(self) -> int:
        """Number of matching trajectories."""
        return len(self.execute())
