"""A declarative, planned, streaming query API over the store.

Queries are logical expression trees (:mod:`repro.storage.expr`)
compiled by a cost-based planner (:mod:`repro.storage.planner`) and
executed lazily (:mod:`repro.storage.results`).  The fluent builder
survives as sugar — each call appends one conjunct to the tree::

    Query(store).visiting_state("zone60853") \\
                .with_annotation(AnnotationKind.GOAL, "visit") \\
                .active_between(t1, t2) \\
                .execute()                      # a lazy ResultSet

while the expression vocabulary unlocks full boolean composition::

    from repro.storage import expr as E
    Query(store).matching(
        (E.state("zone60853") | E.goal("buy")) & ~E.state("zone60886"))

``explain()`` renders the selectivity-ordered plan, ``count()`` stays
index-only whenever no residual predicates remain, and
``to_dict()``/``from_dict()`` round-trip a query as plain data so
plans are serializable for a service layer.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional

from repro.core.annotations import AnnotationKind, AnnotationValue
from repro.core.trajectory import SemanticTrajectory
from repro.storage import expr as E
from repro.storage.expr import And, Expr, expr_from_dict
from repro.storage.planner import Plan, plan_expression
from repro.storage.results import OrderKey, ResultSet
from repro.storage.store import StoredTrajectory, TrajectoryStore

#: A residual filter applied after index intersection.
ResidualPredicate = Callable[[SemanticTrajectory], bool]


class Query:
    """A fluent builder over the declarative expression tree."""

    def __init__(self, store: TrajectoryStore,
                 expression: Optional[Expr] = None) -> None:
        self._store = store
        self._terms: List[Expr] = [] if expression is None \
            else [expression]

    # ------------------------------------------------------------------
    # declarative entry point
    # ------------------------------------------------------------------
    def matching(self, expression: Expr) -> "Query":
        """AND an arbitrary expression tree into the query."""
        self._terms.append(expression)
        return self

    def expression(self) -> Expr:
        """The query's logical expression (an ``And`` of all terms)."""
        return And.of(*self._terms) if self._terms else And(())

    # ------------------------------------------------------------------
    # index-backed predicates (fluent sugar)
    # ------------------------------------------------------------------
    def visiting_state(self, state: str) -> "Query":
        """Keep trajectories visiting ``state``."""
        return self.matching(E.state(state))

    def visiting_any(self, states: Iterable[str]) -> "Query":
        """Keep trajectories visiting any of ``states``."""
        return self.matching(E.any_state(*states))

    def visiting_all(self, states: Iterable[str]) -> "Query":
        """Keep trajectories visiting all of ``states``."""
        return self.matching(E.all_states(*states))

    def with_annotation(self, kind: AnnotationKind,
                        value: AnnotationValue) -> "Query":
        """Keep trajectories carrying the annotation anywhere."""
        return self.matching(E.annotation(kind, value))

    def of_moving_object(self, mo_id: str) -> "Query":
        """Keep one moving object's trajectories."""
        return self.matching(E.moving_object(mo_id))

    def active_between(self, start: float, end: float) -> "Query":
        """Keep trajectories with a stay intersecting the window."""
        return self.matching(E.time_window(start, end))

    def excluding(self, expression: Expr) -> "Query":
        """Keep trajectories NOT matching ``expression``."""
        return self.matching(~expression)

    # ------------------------------------------------------------------
    # residual predicates (fluent sugar)
    # ------------------------------------------------------------------
    def where(self, predicate: ResidualPredicate,
              label: str = "custom") -> "Query":
        """Add an arbitrary Python predicate (applied post-index)."""
        return self.matching(E.where(predicate, label))

    def min_duration(self, seconds: float) -> "Query":
        """Keep trajectories lasting at least ``seconds``."""
        return self.matching(E.min_duration(seconds))

    def min_entries(self, count: int) -> "Query":
        """Keep trajectories with at least ``count`` presence
        intervals."""
        return self.matching(E.min_entries(count))

    def follows_sequence(self, pattern: Iterable[str]) -> "Query":
        """Keep trajectories whose states contain the contiguous
        pattern."""
        return self.matching(E.follows(*pattern))

    # ------------------------------------------------------------------
    # planning & execution
    # ------------------------------------------------------------------
    def plan(self) -> Plan:
        """Compile the expression with the cost-based planner."""
        return plan_expression(self._store, self.expression())

    def explain(self) -> str:
        """Render the selectivity-ordered physical plan."""
        return self.plan().explain()

    def candidate_ids(self) -> FrozenSet[int]:
        """The id set after index evaluation (before lazy
        residuals)."""
        return self.plan().candidate_ids()

    def execute(self) -> ResultSet:
        """Run the query; a lazy, re-iterable result stream.

        Hits come out in document-id order; each consumption re-plans,
        so results reflect the store at that moment.
        """
        def source() -> Iterator[StoredTrajectory]:
            return self.plan().iter_results()

        # One probe plan here; the closures re-plan per consumption
        # so the view stays live against store updates.
        if self.plan().exact_count_available:
            return ResultSet(source, lambda: self.plan().count())
        return ResultSet(source)

    def count(self) -> int:
        """Matching-trajectory count.

        Index-only (no trajectory is fetched) when the query has no
        residual predicates.
        """
        return self.plan().count()

    def first(self) -> Optional[StoredTrajectory]:
        """The first hit in document-id order, or ``None``."""
        return self.execute().first()

    # -- result-shaping conveniences (delegate to the ResultSet) -------
    def limit(self, count: int) -> ResultSet:
        """Execute and keep at most ``count`` hits."""
        return self.execute().limit(count)

    def offset(self, count: int) -> ResultSet:
        """Execute and skip the first ``count`` hits."""
        return self.execute().offset(count)

    def order_by(self, key: OrderKey,
                 reverse: bool = False) -> ResultSet:
        """Execute and sort by a field name or key callable."""
        return self.execute().order_by(key, reverse=reverse)

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """Plain-data form of the query (its expression tree).

        Raises:
            ExprSerializationError: when the tree holds a ``where()``
                callable.
        """
        return {"expr": self.expression().to_dict()}

    @staticmethod
    def from_dict(store: TrajectoryStore, data: Mapping) -> "Query":
        """Rebuild a query against ``store`` from :meth:`to_dict`
        data."""
        return Query(store, expr_from_dict(data["expr"]))
