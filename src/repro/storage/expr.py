"""Logical expression trees for trajectory queries.

A query is a boolean expression over typed predicates:

* **index-backed leaves** — :class:`VisitsState`,
  :class:`HasAnnotation`, :class:`OfMovingObject`,
  :class:`ActiveBetween` — answerable from the store's secondary
  indexes as id sets;
* **residual leaves** — :class:`MinDuration`, :class:`MinEntries`,
  :class:`FollowsSequence`, :class:`Where` — Python predicates over
  the fetched trajectory;
* **combinators** — :class:`And`, :class:`Or`, :class:`Not`.

Expressions compose with the ``&``, ``|`` and ``~`` operators::

    (state("zone60853") | state("zone60886")) & goal("visit")

Every node supports three evaluations:

* :meth:`Expr.matches` — brute-force semantics over one trajectory
  (the planner-free ground truth used by the property tests);
* planning — :func:`repro.storage.planner.plan_expression` compiles
  the tree into an index plan;
* :meth:`Expr.to_dict` / :func:`expr_from_dict` — a JSON-safe wire
  form so plans are serializable for a service layer.  Only
  :class:`Where` (an arbitrary callable) refuses to serialize.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Mapping, Optional, Tuple

from repro.core.annotations import AnnotationKind, AnnotationValue
from repro.core.trajectory import SemanticTrajectory


class ExprSerializationError(ValueError):
    """Raised when an expression cannot be rendered as plain data."""


class Expr:
    """Base class of all query-expression nodes."""

    #: True for leaves that need the fetched trajectory (no index).
    residual = False

    # -- boolean algebra ------------------------------------------------
    def __and__(self, other: "Expr") -> "Expr":
        return And.of(self, other)

    def __or__(self, other: "Expr") -> "Expr":
        return Or.of(self, other)

    def __invert__(self) -> "Expr":
        if isinstance(self, Not):
            return self.child
        return Not(self)

    # -- evaluation -----------------------------------------------------
    def matches(self, trajectory: SemanticTrajectory) -> bool:
        """Brute-force evaluation against one trajectory."""
        raise NotImplementedError

    def describe(self) -> str:
        """Compact human-readable form (used by ``explain()``)."""
        raise NotImplementedError

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-safe plain-data form.

        Raises:
            ExprSerializationError: for :class:`Where` nodes.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return "{}<{}>".format(type(self).__name__, self.describe())


# ----------------------------------------------------------------------
# index-backed leaves
# ----------------------------------------------------------------------
@dataclass(frozen=True, repr=False)
class VisitsState(Expr):
    """The trajectory has at least one stay in ``state``."""

    state: str

    def matches(self, trajectory: SemanticTrajectory) -> bool:
        return trajectory.trace.visits_state(self.state)

    def describe(self) -> str:
        return "state={!r}".format(self.state)

    def to_dict(self) -> Dict:
        return {"op": "state", "state": self.state}


@dataclass(frozen=True, repr=False)
class HasAnnotation(Expr):
    """The trajectory carries ``(kind, value)`` anywhere — as a
    whole-trajectory annotation or on any stay."""

    kind: AnnotationKind
    value: AnnotationValue

    def matches(self, trajectory: SemanticTrajectory) -> bool:
        if trajectory.annotations.has(self.kind, self.value):
            return True
        return any(entry.annotations.has(self.kind, self.value)
                   for entry in trajectory.trace)

    def describe(self) -> str:
        return "annotation={}:{}".format(self.kind.value, self.value)

    def to_dict(self) -> Dict:
        return {"op": "annotation", "kind": self.kind.value,
                "value": self.value}


@dataclass(frozen=True, repr=False)
class OfMovingObject(Expr):
    """The trajectory belongs to one moving object."""

    mo_id: str

    def matches(self, trajectory: SemanticTrajectory) -> bool:
        return trajectory.mo_id == self.mo_id

    def describe(self) -> str:
        return "mo={!r}".format(self.mo_id)

    def to_dict(self) -> Dict:
        return {"op": "mo", "mo_id": self.mo_id}


@dataclass(frozen=True, repr=False)
class ActiveBetween(Expr):
    """Some stay intersects the closed window ``[start, end]``."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("window end precedes start")

    def matches(self, trajectory: SemanticTrajectory) -> bool:
        return any(entry.overlaps_time(self.start, self.end)
                   for entry in trajectory.trace)

    def describe(self) -> str:
        return "window=[{:g}, {:g}]".format(self.start, self.end)

    def to_dict(self) -> Dict:
        return {"op": "window", "start": self.start, "end": self.end}


# ----------------------------------------------------------------------
# residual leaves
# ----------------------------------------------------------------------
@dataclass(frozen=True, repr=False)
class MinDuration(Expr):
    """The trajectory lasts at least ``seconds``."""

    seconds: float
    residual = True

    def matches(self, trajectory: SemanticTrajectory) -> bool:
        return trajectory.duration >= self.seconds

    def describe(self) -> str:
        return "min_duration({:g}s)".format(self.seconds)

    def to_dict(self) -> Dict:
        return {"op": "min-duration", "seconds": self.seconds}


@dataclass(frozen=True, repr=False)
class MinEntries(Expr):
    """The trace holds at least ``count`` presence intervals."""

    count: int
    residual = True

    def matches(self, trajectory: SemanticTrajectory) -> bool:
        return len(trajectory.trace) >= self.count

    def describe(self) -> str:
        return "min_entries({})".format(self.count)

    def to_dict(self) -> Dict:
        return {"op": "min-entries", "count": self.count}


@dataclass(frozen=True, repr=False)
class FollowsSequence(Expr):
    """The distinct state sequence contains the contiguous pattern."""

    pattern: Tuple[str, ...]
    residual = True

    def __init__(self, pattern: Iterable[str]) -> None:
        object.__setattr__(self, "pattern", tuple(pattern))

    def matches(self, trajectory: SemanticTrajectory) -> bool:
        sequence = tuple(trajectory.distinct_state_sequence())
        window = len(self.pattern)
        if window == 0:
            return True
        return any(sequence[i:i + window] == self.pattern
                   for i in range(len(sequence) - window + 1))

    def describe(self) -> str:
        return "follows({})".format("→".join(self.pattern))

    def to_dict(self) -> Dict:
        return {"op": "follows", "pattern": list(self.pattern)}


@dataclass(frozen=True, repr=False)
class Where(Expr):
    """An arbitrary Python predicate (not serializable)."""

    fn: Callable[[SemanticTrajectory], bool] = field(compare=False)
    label: str = "custom"
    residual = True

    def matches(self, trajectory: SemanticTrajectory) -> bool:
        return bool(self.fn(trajectory))

    def describe(self) -> str:
        return "where({})".format(self.label)

    def to_dict(self) -> Dict:
        raise ExprSerializationError(
            "where({}) wraps an arbitrary callable and cannot be "
            "serialized; use the typed residual predicates "
            "(min_duration, min_entries, follows) instead".format(
                self.label))


# ----------------------------------------------------------------------
# combinators
# ----------------------------------------------------------------------
@dataclass(frozen=True, repr=False)
class And(Expr):
    """Every child matches.  ``And(())`` matches everything."""

    children: Tuple[Expr, ...]

    def __init__(self, children: Iterable[Expr]) -> None:
        object.__setattr__(self, "children", tuple(children))

    @staticmethod
    def of(*children: Expr) -> "Expr":
        # Flatten recursively so the result is canonical (no nested
        # And, no single-child And) and therefore idempotent — a
        # serialization round trip must not change what another
        # application of ``of`` produces.
        flat: list = []
        for child in children:
            if isinstance(child, And):
                collapsed = And.of(*child.children)
                if isinstance(collapsed, And):
                    flat.extend(collapsed.children)
                else:
                    flat.append(collapsed)
            else:
                flat.append(child)
        if len(flat) == 1:
            return flat[0]
        return And(flat)

    def matches(self, trajectory: SemanticTrajectory) -> bool:
        return all(child.matches(trajectory)
                   for child in self.children)

    def describe(self) -> str:
        if not self.children:
            return "all"
        return "(" + " AND ".join(c.describe()
                                  for c in self.children) + ")"

    def to_dict(self) -> Dict:
        return {"op": "and",
                "children": [c.to_dict() for c in self.children]}


@dataclass(frozen=True, repr=False)
class Or(Expr):
    """At least one child matches.  ``Or(())`` matches nothing."""

    children: Tuple[Expr, ...]

    def __init__(self, children: Iterable[Expr]) -> None:
        object.__setattr__(self, "children", tuple(children))

    @staticmethod
    def of(*children: Expr) -> "Expr":
        # Recursive flattening, mirroring And.of (idempotence).
        flat: list = []
        for child in children:
            if isinstance(child, Or):
                collapsed = Or.of(*child.children)
                if isinstance(collapsed, Or):
                    flat.extend(collapsed.children)
                else:
                    flat.append(collapsed)
            else:
                flat.append(child)
        if len(flat) == 1:
            return flat[0]
        return Or(flat)

    def matches(self, trajectory: SemanticTrajectory) -> bool:
        return any(child.matches(trajectory)
                   for child in self.children)

    def describe(self) -> str:
        if not self.children:
            return "none"
        return "(" + " OR ".join(c.describe()
                                 for c in self.children) + ")"

    def to_dict(self) -> Dict:
        return {"op": "or",
                "children": [c.to_dict() for c in self.children]}


@dataclass(frozen=True, repr=False)
class Not(Expr):
    """The child does not match."""

    child: Expr

    def matches(self, trajectory: SemanticTrajectory) -> bool:
        return not self.child.matches(trajectory)

    def describe(self) -> str:
        return "NOT " + self.child.describe()

    def to_dict(self) -> Dict:
        return {"op": "not", "child": self.child.to_dict()}


# ----------------------------------------------------------------------
# construction helpers (the declarative vocabulary)
# ----------------------------------------------------------------------
def state(name: str) -> VisitsState:
    """Trajectories visiting ``name``."""
    return VisitsState(name)


def any_state(*names: str) -> Expr:
    """Trajectories visiting any of the states (an index union)."""
    return Or.of(*[VisitsState(n) for n in names])


def all_states(*names: str) -> Expr:
    """Trajectories visiting every one of the states."""
    return And.of(*[VisitsState(n) for n in names])


def annotation(kind: AnnotationKind,
               value: AnnotationValue) -> HasAnnotation:
    """Trajectories carrying the annotation anywhere."""
    return HasAnnotation(kind, value)


def goal(value: AnnotationValue) -> HasAnnotation:
    """Shorthand for a goal annotation predicate."""
    return HasAnnotation(AnnotationKind.GOAL, value)


def moving_object(mo_id: str) -> OfMovingObject:
    """One moving object's trajectories."""
    return OfMovingObject(mo_id)


def time_window(start: float, end: float) -> ActiveBetween:
    """Trajectories with a stay intersecting ``[start, end]``."""
    return ActiveBetween(start, end)


def min_duration(seconds: float) -> MinDuration:
    """Trajectories lasting at least ``seconds``."""
    return MinDuration(seconds)


def min_entries(count: int) -> MinEntries:
    """Trajectories with at least ``count`` presence intervals."""
    return MinEntries(count)


def follows(*pattern: str) -> FollowsSequence:
    """Trajectories containing the contiguous state pattern."""
    return FollowsSequence(pattern)


def where(fn: Callable[[SemanticTrajectory], bool],
          label: str = "custom") -> Where:
    """An arbitrary residual predicate (not serializable)."""
    return Where(fn, label)


# ----------------------------------------------------------------------
# deserialisation
# ----------------------------------------------------------------------
_LEAF_PARSERS: Dict[str, Callable[[Mapping], Expr]] = {
    "state": lambda d: VisitsState(d["state"]),
    "annotation": lambda d: HasAnnotation(AnnotationKind(d["kind"]),
                                          d["value"]),
    "mo": lambda d: OfMovingObject(d["mo_id"]),
    "window": lambda d: ActiveBetween(d["start"], d["end"]),
    "min-duration": lambda d: MinDuration(d["seconds"]),
    "min-entries": lambda d: MinEntries(d["count"]),
    "follows": lambda d: FollowsSequence(d["pattern"]),
}


def expr_from_dict(data: Mapping) -> Expr:
    """Inverse of :meth:`Expr.to_dict`.

    Raises:
        ValueError: for an unknown or malformed node.
    """
    op = data.get("op")
    if op == "and":
        return And([expr_from_dict(c) for c in data["children"]])
    if op == "or":
        return Or([expr_from_dict(c) for c in data["children"]])
    if op == "not":
        return Not(expr_from_dict(data["child"]))
    parser = _LEAF_PARSERS.get(op)
    if parser is None:
        raise ValueError("unknown expression op {!r}".format(op))
    return parser(data)
