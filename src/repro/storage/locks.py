"""A readers–writer lock for store concurrency.

The service layer (:mod:`repro.service`) ingests trajectories from a
background build job while HTTP worker threads read the same store, so
:class:`~repro.storage.store.TrajectoryStore` needs one invariant the
GIL alone does not give it: *no index is mutated while a reader walks
it*.  (Copying a ``set`` that another thread is ``add``-ing to raises
``RuntimeError: set changed size during iteration`` — the posting-list
copies in :class:`~repro.storage.index.InvertedIndex` do exactly that
copy on every lookup.)

:class:`ReadWriteLock` is the classic condition-variable formulation
with writer preference: any number of readers share the lock, writers
get exclusive access, and arriving writers block *new* readers so a
steady query stream cannot starve ingestion.

The lock is deliberately non-reentrant; holders must keep critical
sections short and must not call back into locked methods (the store
keeps its internal helpers lock-free and takes the lock only at the
public surface).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class ReadWriteLock:
    """Shared-read / exclusive-write lock with writer preference."""

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    # reader side
    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        """Block until no writer is active or waiting, then share."""
        with self._condition:
            while self._writer_active or self._writers_waiting:
                self._condition.wait()
            self._readers += 1

    def release_read(self) -> None:
        """Release one shared hold; wakes a waiting writer when last
        out."""
        with self._condition:
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    # ------------------------------------------------------------------
    # writer side
    # ------------------------------------------------------------------
    def acquire_write(self) -> None:
        """Block until exclusive (no readers, no other writer)."""
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        """Release exclusivity; wakes every waiter."""
        with self._condition:
            self._writer_active = False
            self._condition.notify_all()

    # ------------------------------------------------------------------
    # context managers
    # ------------------------------------------------------------------
    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """``with lock.read_locked():`` — a shared critical section."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """``with lock.write_locked():`` — an exclusive critical
        section."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
