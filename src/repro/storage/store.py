"""The in-memory semantic trajectory store.

:class:`TrajectoryStore` owns a corpus of
:class:`~repro.core.trajectory.SemanticTrajectory` objects and
maintains three secondary indexes over them:

* an inverted index state → trajectories that visit it;
* an inverted index (annotation kind, value) → trajectories carrying
  it (whole-trajectory or stay-level);
* an inverted index moving object → its trajectories;
* a centered interval index over presence intervals for time queries.

Indexes are maintained incrementally on insert; the interval index —
a static structure — is rebuilt lazily on first temporal query after a
write.

The store is safe for **concurrent readers with a single writer**: a
:class:`~repro.storage.locks.ReadWriteLock` guards every public
method, so a background ingestion job (the service layer's
``BuildDataset``) can extend the corpus while HTTP worker threads run
queries against it.  Reads are snapshot-consistent per call — a query
sees the store as of some instant, never a half-indexed trajectory —
and iteration snapshots the document count up front so a concurrent
``extend`` cannot leak items into an in-flight scan.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.core.annotations import AnnotationKind, AnnotationValue
from repro.core.trajectory import SemanticTrajectory
from repro.storage.index import InvertedIndex
from repro.storage.intervals import Interval, IntervalIndex
from repro.storage.locks import ReadWriteLock


@dataclass(frozen=True)
class StoredTrajectory:
    """A trajectory with its store-assigned id."""

    doc_id: int
    trajectory: SemanticTrajectory


#: Process-wide store identities (see :attr:`TrajectoryStore.serial`).
_STORE_SERIALS = itertools.count(1)


class TrajectoryStore:
    """Insert-only trajectory corpus with secondary indexes."""

    def __init__(self) -> None:
        self._serial = next(_STORE_SERIALS)
        self._version = 0
        self._docs: List[SemanticTrajectory] = []
        self._by_state = InvertedIndex()
        self._by_annotation = InvertedIndex()
        self._by_mo = InvertedIndex()
        self._interval_index: Optional[IntervalIndex] = None
        self._span: Optional[Tuple[float, float]] = None
        self._lock = ReadWriteLock()
        self._wal = None

    @classmethod
    def from_documents(cls, docs: Iterable[SemanticTrajectory],
                       indexes: Optional[Tuple[Dict, Dict, Dict]]
                       = None) -> "TrajectoryStore":
        """A store over already-built documents (the snapshot-load
        path).

        Args:
            docs: the corpus, in document-id order.
            indexes: optional pre-built ``(by_state, by_annotation,
                by_mo)`` posting maps (key → id set), installed
                verbatim instead of re-indexing every document.
        """
        store = cls()
        if indexes is None:
            for trajectory in docs:
                store._index_one(trajectory)
        else:
            store._docs = list(docs)
            by_state, by_annotation, by_mo = indexes
            store._by_state.install(by_state)
            store._by_annotation.install(by_annotation)
            store._by_mo.install(by_mo)
        return store

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def insert(self, trajectory: SemanticTrajectory) -> int:
        """Store a trajectory; returns its document id."""
        return self.extend([trajectory])[0]

    def insert_many(self,
                    trajectories: Iterable[SemanticTrajectory]
                    ) -> List[int]:
        """Store several trajectories; returns their document ids."""
        return self.extend(trajectories)

    def extend(self, trajectories: Iterable[SemanticTrajectory],
               rebuild_interval: bool = False) -> List[int]:
        """Bulk-insert a batch; returns the document ids.

        The ingest path for pipeline sinks: the inverted indexes are
        updated incrementally per trajectory, but the interval index —
        a static structure — is touched exactly once per batch, and
        can optionally be rebuilt on the spot so batched ingest
        interleaved with temporal queries pays one rebuild per batch
        rather than one per query-after-insert.

        The input iterable is materialized *before* the write lock is
        taken, so a lazy source cannot stall readers (or call back
        into the store) mid-ingestion.

        Args:
            trajectories: the batch to store.
            rebuild_interval: rebuild the interval index immediately
                after the batch (keeps temporal queries warm) instead
                of lazily on the next temporal query.
        """
        batch = list(trajectories)
        with self._lock.write_locked():
            if self._wal is not None and batch:
                # Write-ahead: the batch is durable before it is
                # visible — a crash after this line replays it.
                self._wal.append(batch)
            doc_ids = [self._index_one(t) for t in batch]
            if doc_ids:
                self._version += 1
                self._interval_index = None  # one invalidation per batch
                self._span = None
                if rebuild_interval:
                    self._build_interval_index()
        return doc_ids

    # ------------------------------------------------------------------
    # durability (repro.persist)
    # ------------------------------------------------------------------
    def attach_wal(self, wal) -> None:
        """Journal every future insert/extend to a write-ahead log.

        The log (:class:`~repro.persist.wal.WriteAheadLog`) is
        appended *before* the batch is indexed, under the write lock,
        so the on-disk record order always matches document-id order.
        """
        with self._lock.write_locked():
            self._wal = wal

    def detach_wal(self):
        """Stop journaling; returns the previously attached log."""
        with self._lock.write_locked():
            wal, self._wal = self._wal, None
            return wal

    @property
    def wal(self):
        """The attached write-ahead log, if any."""
        return self._wal

    def snapshot_state(self) -> Tuple[List[SemanticTrajectory],
                                      Dict, Dict, Dict]:
        """One consistent ``(docs, by_state, by_annotation, by_mo)``
        capture for the snapshot writer — taken under the read lock,
        so a concurrent build cannot tear it."""
        with self._lock.read_locked():
            return (list(self._docs), self._by_state.postings(),
                    self._by_annotation.postings(),
                    self._by_mo.postings())

    def save(self, path: str, include_indexes: bool = True,
             space: Optional[str] = None):
        """Write a verified on-disk snapshot of this store.

        Sugar over :func:`repro.persist.format.save_store`; see
        ``docs/persistence.md``.
        """
        from repro.persist.format import save_store

        return save_store(self, path, include_indexes=include_indexes,
                          space=space)

    @classmethod
    def load(cls, path: str, use_indexes: bool = True,
             verify: bool = True) -> "TrajectoryStore":
        """Reconstruct a store from a snapshot directory.

        Sugar over :func:`repro.persist.format.load_store` (which
        also returns the manifest metadata, when needed).
        """
        from repro.persist.format import load_store

        store, _ = load_store(path, use_indexes=use_indexes,
                              verify=verify)
        return store

    def _index_one(self, trajectory: SemanticTrajectory) -> int:
        """Append one trajectory and update every inverted index."""
        doc_id = len(self._docs)
        self._docs.append(trajectory)
        self._by_mo.add(trajectory.mo_id, doc_id)
        for state in set(trajectory.states()):
            self._by_state.add(state, doc_id)
        for annotation in trajectory.annotations:
            self._by_annotation.add((annotation.kind, annotation.value),
                                    doc_id)
        for entry in trajectory.trace:
            for annotation in entry.annotations:
                self._by_annotation.add(
                    (annotation.kind, annotation.value), doc_id)
        return doc_id

    # ------------------------------------------------------------------
    # identity (the service response cache keys on these)
    # ------------------------------------------------------------------
    @property
    def serial(self) -> int:
        """Process-unique store identity.

        Unlike ``id()``, serials are never reused after garbage
        collection, so ``(serial, version)`` names one exact corpus
        state for the lifetime of the process — the validity stamp
        the service-layer response cache checks.
        """
        return self._serial

    @property
    def version(self) -> int:
        """Mutation counter: bumped once per non-empty ``extend``.

        The store is insert-only and every write funnels through
        :meth:`extend`, so an unchanged version guarantees unchanged
        query/mining results.
        """
        return self._version

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock.read_locked():
            return len(self._docs)

    def __iter__(self) -> Iterator[SemanticTrajectory]:
        """Iterate the corpus as of iteration start.

        The document count is snapshotted under the read lock, then
        items are yielded *without* holding it — consumers may run
        queries per item, and a concurrent ``extend`` neither breaks
        the scan nor leaks its new documents into it (the store is
        insert-only, so ids below the snapshot are immutable).
        """
        with self._lock.read_locked():
            count = len(self._docs)
        for doc_id in range(count):
            yield self._docs[doc_id]

    def get(self, doc_id: int) -> SemanticTrajectory:
        """Fetch by document id.

        Raises:
            IndexError: for unknown ids.
        """
        with self._lock.read_locked():
            return self._docs[doc_id]

    def all_ids(self) -> FrozenSet[int]:
        """Every document id."""
        with self._lock.read_locked():
            return frozenset(range(len(self._docs)))

    # ------------------------------------------------------------------
    # index lookups (used by the Query planner)
    # ------------------------------------------------------------------
    def ids_visiting_state(self, state: str) -> FrozenSet[int]:
        """Trajectories with at least one stay in ``state``."""
        with self._lock.read_locked():
            return self._by_state.lookup(state)

    def ids_visiting_any(self, states: Iterable[str]) -> FrozenSet[int]:
        """Trajectories visiting any of the states."""
        with self._lock.read_locked():
            return self._by_state.lookup_any(states)

    def ids_visiting_all(self, states: Iterable[str]) -> FrozenSet[int]:
        """Trajectories visiting every one of the states."""
        with self._lock.read_locked():
            return self._by_state.lookup_all(states)

    def ids_with_annotation(self, kind: AnnotationKind,
                            value: object) -> FrozenSet[int]:
        """Trajectories carrying the annotation anywhere."""
        with self._lock.read_locked():
            return self._by_annotation.lookup((kind, value))

    def ids_of_mo(self, mo_id: str) -> FrozenSet[int]:
        """Trajectories of one moving object."""
        with self._lock.read_locked():
            return self._by_mo.lookup(mo_id)

    def ids_active_between(self, start: float,
                           end: float) -> FrozenSet[int]:
        """Trajectories with a presence interval intersecting the window."""
        with self._lock.read_locked():
            index = self._ensure_interval_index()
            return frozenset(iv.payload[0]
                             for iv in index.overlapping(start, end))

    def states_occupied_at(self, t: float) -> Dict[int, str]:
        """doc id → state for every trajectory present at time ``t``.

        The interval payload carries the stay's state, so no trace is
        rescanned — the stab answers the question outright.  When
        bounded sensing overlap makes two stays of one trajectory
        contain ``t``, the later stay wins (the newer detection
        supersedes, matching ``Trace.entry_at``).
        """
        with self._lock.read_locked():
            index = self._ensure_interval_index()
            hits: Dict[int, str] = {}
            starts: Dict[int, float] = {}
            for interval in index.stab(t):
                doc_id, state = interval.payload
                if doc_id not in hits or interval.start >= starts[doc_id]:
                    hits[doc_id] = state
                    starts[doc_id] = interval.start
            return hits

    def _ensure_interval_index(self) -> IntervalIndex:
        """The interval index; payloads are ``(doc_id, state)``.

        Caller must hold the lock (read side suffices: concurrent
        readers may both build, which is idempotent — writers, the
        only invalidators, are excluded while any reader is in here).
        """
        if self._interval_index is None:
            self._build_interval_index()
        return self._interval_index

    def _build_interval_index(self) -> None:
        intervals: List[Interval] = []
        for doc_id, trajectory in enumerate(self._docs):
            for entry in trajectory.trace:
                intervals.append(Interval(entry.t_start, entry.t_end,
                                          (doc_id, entry.state)))
        self._interval_index = IntervalIndex(intervals)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def state_cardinalities(self) -> Dict[str, int]:
        """State → number of trajectories visiting it (selectivity)."""
        with self._lock.read_locked():
            return {str(k): v
                    for k, v in self._by_state.posting_sizes().items()}

    def annotation_cardinalities(
            self) -> Dict[Tuple[AnnotationKind, AnnotationValue], int]:
        """(kind, value) → number of trajectories carrying it."""
        with self._lock.read_locked():
            return dict(self._by_annotation.posting_sizes())

    def time_span(self) -> Optional[Tuple[float, float]]:
        """``(earliest t_start, latest t_end)`` over the corpus.

        ``None`` for an empty store.  Cached; invalidated on insert
        alongside the interval index.
        """
        with self._lock.read_locked():
            if not self._docs:
                return None
            if self._span is None:
                self._span = (min(t.t_start for t in self._docs),
                              max(t.t_end for t in self._docs))
            return self._span

    def moving_objects(self) -> List[str]:
        """All distinct moving-object ids."""
        with self._lock.read_locked():
            return [str(k) for k in self._by_mo.keys()]

    def mo_cardinalities(self) -> Dict[str, int]:
        """Moving object → number of trajectories (selectivity)."""
        with self._lock.read_locked():
            return {str(k): v
                    for k, v in self._by_mo.posting_sizes().items()}
