"""A cost-based planner compiling expression trees to index plans.

The planner turns a :mod:`repro.storage.expr` tree into a physical
plan over :class:`~repro.storage.store.TrajectoryStore` id sets:

* index-backed leaves become **index scans** with a cardinality
  estimate pulled from the store's statistics
  (:meth:`~repro.storage.store.TrajectoryStore.state_cardinalities`
  and friends);
* ``And`` becomes an **intersection** evaluated smallest-estimate
  first (with an early exit on an empty intermediate);
* ``Or`` becomes an **index union**;
* ``Not`` is normalized inward (De Morgan, double-negation) and then
  pushed into **set differences** — ``a & ~b`` evaluates as
  ``ids(a) - ids(b)``, never as a scan;
* residual predicates at the top level of a conjunction stay **lazy**:
  they are streamed over the candidates during execution, so
  ``count()`` without residuals never fetches a trajectory.  A
  residual buried under ``Or``/``Not`` cannot be deferred and compiles
  to an explicit **filter** node over its operand's candidates.

One more cost-based decision: inside a conjunction, an index leaf
whose estimated posting list dwarfs the smallest one is **demoted to
per-candidate verification** — with three candidates left, checking
``ActiveBetween`` on each beats materializing a thousand-entry id set
from the interval index.  Demoted leaves appear as residuals in
``explain()``.

:meth:`Plan.explain` renders the chosen plan as an indented tree with
the estimates that drove the ordering.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterator, List, \
    Optional, Tuple

from repro.storage.expr import (
    ActiveBetween,
    And,
    Expr,
    HasAnnotation,
    Not,
    OfMovingObject,
    Or,
    VisitsState,
)
from repro.storage.store import StoredTrajectory, TrajectoryStore


# ----------------------------------------------------------------------
# plan nodes
# ----------------------------------------------------------------------
class PlanNode:
    """One operator of a physical plan; evaluates to an id set."""

    #: Estimated result cardinality (drives intersection order).
    estimate: int = 0

    def ids(self) -> FrozenSet[int]:
        """Evaluate the operator."""
        raise NotImplementedError

    def render(self, indent: int = 0) -> List[str]:
        """Indented ``explain()`` lines for this subtree."""
        raise NotImplementedError

    def _line(self, indent: int, text: str) -> str:
        return "  " * indent + text


class IndexScan(PlanNode):
    """Answer one leaf from a secondary index."""

    def __init__(self, label: str, estimate: int,
                 fetch: Callable[[], FrozenSet[int]]) -> None:
        self.label = label
        self.estimate = estimate
        self._fetch = fetch

    def ids(self) -> FrozenSet[int]:
        return self._fetch()

    def render(self, indent: int = 0) -> List[str]:
        return [self._line(indent, "index-scan {}  [est={}]".format(
            self.label, self.estimate))]


class FullScan(PlanNode):
    """Every document id (the universe)."""

    def __init__(self, store: TrajectoryStore) -> None:
        self._store = store
        self.estimate = len(store)

    def ids(self) -> FrozenSet[int]:
        return self._store.all_ids()

    def render(self, indent: int = 0) -> List[str]:
        return [self._line(indent, "full-scan  [est={}]".format(
            self.estimate))]


class Intersect(PlanNode):
    """Smallest-first id-set intersection with early exit."""

    def __init__(self, children: List[PlanNode]) -> None:
        self.children = sorted(children, key=lambda c: c.estimate)
        self.estimate = min(c.estimate for c in self.children)

    def ids(self) -> FrozenSet[int]:
        result = set(self.children[0].ids())
        for child in self.children[1:]:
            if not result:
                break
            result &= child.ids()
        return frozenset(result)

    def render(self, indent: int = 0) -> List[str]:
        lines = [self._line(indent,
                            "intersect (smallest-first)  [est≤{}]".format(
                                self.estimate))]
        for child in self.children:
            lines.extend(child.render(indent + 1))
        return lines


class Union(PlanNode):
    """Id-set union (``Or`` over index-backed operands)."""

    def __init__(self, children: List[PlanNode]) -> None:
        self.children = children
        self.estimate = sum(c.estimate for c in children)

    def ids(self) -> FrozenSet[int]:
        result: set = set()
        for child in self.children:
            result |= child.ids()
        return frozenset(result)

    def render(self, indent: int = 0) -> List[str]:
        lines = [self._line(indent, "union  [est≤{}]".format(
            self.estimate))]
        for child in self.children:
            lines.extend(child.render(indent + 1))
        return lines


class Difference(PlanNode):
    """``left - right``: ``Not`` pushed into a set difference."""

    def __init__(self, left: PlanNode, right: PlanNode) -> None:
        self.left = left
        self.right = right
        self.estimate = left.estimate

    def ids(self) -> FrozenSet[int]:
        return self.left.ids() - self.right.ids()

    def render(self, indent: int = 0) -> List[str]:
        lines = [self._line(indent, "difference  [est≤{}]".format(
            self.estimate))]
        lines.extend(self.left.render(indent + 1))
        lines.append(self._line(indent + 1, "minus"))
        lines.extend(self.right.render(indent + 1))
        return lines


class Filter(PlanNode):
    """Evaluate residual predicates eagerly over a child's candidates.

    Only used when a residual sits under ``Or``/``Not`` and therefore
    cannot be deferred to the lazy streaming phase.
    """

    def __init__(self, store: TrajectoryStore, child: PlanNode,
                 predicates: Tuple[Expr, ...]) -> None:
        self._store = store
        self.child = child
        self.predicates = predicates
        self.estimate = child.estimate

    def ids(self) -> FrozenSet[int]:
        hits = []
        for doc_id in self.child.ids():
            trajectory = self._store.get(doc_id)
            if all(p.matches(trajectory) for p in self.predicates):
                hits.append(doc_id)
        return frozenset(hits)

    def render(self, indent: int = 0) -> List[str]:
        label = ", ".join(p.describe() for p in self.predicates)
        lines = [self._line(indent, "filter {}  [est≤{}]".format(
            label, self.estimate))]
        lines.extend(self.child.render(indent + 1))
        return lines


# ----------------------------------------------------------------------
# the plan
# ----------------------------------------------------------------------
class Plan:
    """A compiled query: an id-set operator tree plus lazy residuals."""

    def __init__(self, store: TrajectoryStore, root: PlanNode,
                 residuals: Tuple[Expr, ...]) -> None:
        self._store = store
        self.root = root
        self.residuals = residuals

    def candidate_ids(self) -> FrozenSet[int]:
        """The id set before the lazy residual phase."""
        return self.root.ids()

    def iter_results(self, start_after: Optional[int] = None
                     ) -> Iterator[StoredTrajectory]:
        """Stream matches in document-id order, applying residuals.

        Args:
            start_after: skip documents with ``doc_id <= start_after``
                *before* fetching or residual-checking them — the
                resume primitive behind the service layer's stable
                cursors (each page costs O(page), not O(prefix)).
        """
        residuals = self.residuals
        candidates = self.candidate_ids()
        if start_after is not None:
            candidates = [doc_id for doc_id in candidates
                          if doc_id > start_after]
        for doc_id in sorted(candidates):
            trajectory = self._store.get(doc_id)
            if all(p.matches(trajectory) for p in residuals):
                yield StoredTrajectory(doc_id, trajectory)

    @property
    def exact_count_available(self) -> bool:
        """True when counting never needs to fetch a trajectory."""
        return not self.residuals

    def count(self) -> int:
        """Matching-document count, short-circuiting when possible."""
        if self.exact_count_available:
            return len(self.candidate_ids())
        return sum(1 for _ in self.iter_results())

    def explain(self) -> str:
        """Render the plan as an indented operator tree."""
        lines = self.root.render()
        if self.residuals:
            lines.append("residual (streamed): " + ", ".join(
                p.describe() for p in self.residuals))
        else:
            lines.append("residual: none (count() is index-only)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# statistics
# ----------------------------------------------------------------------
class PlannerStatistics:
    """Cached selectivity estimates for one store snapshot."""

    def __init__(self, store: TrajectoryStore) -> None:
        self._store = store
        self._states: Dict[str, int] = store.state_cardinalities()
        self._annotations = store.annotation_cardinalities()
        self._corpus = len(store)

    def estimate(self, leaf: Expr) -> int:
        """Estimated hit count of one index-backed leaf."""
        if isinstance(leaf, VisitsState):
            return self._states.get(leaf.state, 0)
        if isinstance(leaf, HasAnnotation):
            return self._annotations.get((leaf.kind, leaf.value), 0)
        if isinstance(leaf, OfMovingObject):
            return len(self._store.ids_of_mo(leaf.mo_id))
        if isinstance(leaf, ActiveBetween):
            return self._window_estimate(leaf)
        return self._corpus

    def _window_estimate(self, leaf: ActiveBetween) -> int:
        """Corpus fraction covered by the window, over the store span."""
        span = self._store.time_span()
        if span is None:
            return 0
        start, end = span
        extent = end - start
        if extent <= 0:
            return self._corpus
        overlap = min(leaf.end, end) - max(leaf.start, start)
        if overlap < 0:
            return 0
        fraction = min(1.0, overlap / extent)
        return max(1, int(self._corpus * fraction))


#: Inside a conjunction, an index leaf is demoted to per-candidate
#: verification when its estimate exceeds both this absolute floor …
VERIFY_ABS_THRESHOLD = 128
#: … and this multiple of the smallest conjunct's estimate.
VERIFY_RATIO = 8


# ----------------------------------------------------------------------
# compilation
# ----------------------------------------------------------------------
def normalize(expr: Expr) -> Expr:
    """Push ``Not`` inward (De Morgan, double negation) and flatten."""
    if isinstance(expr, Not):
        inner = expr.child
        if isinstance(inner, Not):
            return normalize(inner.child)
        if isinstance(inner, And):
            return normalize(Or([Not(c) for c in inner.children]))
        if isinstance(inner, Or):
            return normalize(And([Not(c) for c in inner.children]))
        return Not(normalize(inner))
    if isinstance(expr, And):
        return And.of(*[normalize(c) for c in expr.children])
    if isinstance(expr, Or):
        return Or.of(*[normalize(c) for c in expr.children])
    return expr


def plan_expression(store: TrajectoryStore, expr: Expr) -> Plan:
    """Compile an expression tree into a physical plan."""
    stats = PlannerStatistics(store)
    normalized = normalize(expr)
    if isinstance(normalized, And):
        conjuncts: Tuple[Expr, ...] = normalized.children
    else:
        conjuncts = (normalized,)
    root, residuals = _compile_conjunction(store, stats, conjuncts)
    return Plan(store, root, residuals)


def _compile_conjunction(store: TrajectoryStore,
                         stats: PlannerStatistics,
                         conjuncts: Tuple[Expr, ...]
                         ) -> Tuple[PlanNode, Tuple[Expr, ...]]:
    """Compile one conjunction; residuals are returned, not applied.

    Residual leaves stay out of the operator tree so callers can
    stream them lazily.  Index leaves are ordered by estimate; any
    whose posting list dwarfs the smallest one is demoted to a
    residual (per-candidate verification beats materializing it).
    ``Not`` children become set differences — or demoted negated
    residuals when the negated posting list is the oversized one.
    """
    residuals: List[Expr] = []
    scans: List[Tuple[int, Expr, bool]] = []  # (estimate, leaf, negated)
    positives: List[PlanNode] = []
    negatives: List[PlanNode] = []
    for conjunct in conjuncts:
        if conjunct.residual:
            residuals.append(conjunct)
        elif isinstance(conjunct, Not):
            if conjunct.child.residual:
                residuals.append(conjunct)
            elif isinstance(conjunct.child, (And, Or)):
                negatives.append(
                    _compile_set(store, stats, conjunct.child))
            else:
                scans.append((stats.estimate(conjunct.child),
                              conjunct.child, True))
        elif isinstance(conjunct, (And, Or)):
            positives.append(_compile_set(store, stats, conjunct))
        else:
            scans.append((stats.estimate(conjunct), conjunct, False))

    anchor_estimates = [est for est, _, negated in scans
                        if not negated]
    anchor_estimates.extend(p.estimate for p in positives)
    if anchor_estimates and scans:
        threshold = max(VERIFY_ABS_THRESHOLD,
                        VERIFY_RATIO * min(anchor_estimates))
        kept: List[Tuple[int, Expr, bool]] = []
        have_anchor = bool(positives)
        for est, leaf, negated in sorted(scans, key=lambda s: s[0]):
            if not negated and not have_anchor:
                kept.append((est, leaf, negated))  # keep one anchor
                have_anchor = True
            elif est > threshold:
                residuals.append(Not(leaf) if negated else leaf)
            else:
                kept.append((est, leaf, negated))
        scans = kept
    for _, leaf, negated in scans:
        node = _leaf_scan(store, stats, leaf)
        (negatives if negated else positives).append(node)

    if positives:
        root: PlanNode = positives[0] if len(positives) == 1 \
            else Intersect(positives)
    else:
        root = FullScan(store)
    if negatives:
        subtrahend = negatives[0] if len(negatives) == 1 \
            else Union(negatives)
        root = Difference(root, subtrahend)
    return root, tuple(residuals)


def _compile_set(store: TrajectoryStore, stats: PlannerStatistics,
                 expr: Expr) -> PlanNode:
    """Compile a (normalized) subtree to a set-producing operator."""
    if isinstance(expr, And):
        node, residuals = _compile_conjunction(store, stats,
                                               expr.children)
        if residuals:
            node = Filter(store, node, residuals)
        return node
    if isinstance(expr, Or):
        return Union([_compile_set(store, stats, c)
                      for c in expr.children])
    if isinstance(expr, Not):
        # Only hit for Not over a leaf (normalization pushed the rest).
        return Difference(FullScan(store),
                          _compile_set(store, stats, expr.child))
    if expr.residual:
        return Filter(store, FullScan(store), (expr,))
    return _leaf_scan(store, stats, expr)


def _leaf_scan(store: TrajectoryStore, stats: PlannerStatistics,
               leaf: Expr) -> IndexScan:
    """An index scan for one index-backed leaf."""
    if isinstance(leaf, VisitsState):
        fetch = lambda: store.ids_visiting_state(leaf.state)  # noqa: E731
    elif isinstance(leaf, HasAnnotation):
        fetch = lambda: store.ids_with_annotation(  # noqa: E731
            leaf.kind, leaf.value)
    elif isinstance(leaf, OfMovingObject):
        fetch = lambda: store.ids_of_mo(leaf.mo_id)  # noqa: E731
    elif isinstance(leaf, ActiveBetween):
        fetch = lambda: store.ids_active_between(  # noqa: E731
            leaf.start, leaf.end)
    else:
        raise TypeError(
            "cannot compile leaf {!r} to an index scan".format(leaf))
    return IndexScan(leaf.describe(), stats.estimate(leaf), fetch)
