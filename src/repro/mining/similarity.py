"""Trajectory similarity metrics, including a hierarchy-aware one.

Section 5: "We will next focus on ... proposing semantic similarity
metrics for trajectories (e.g. for visitor profiling)."  Three metrics
are provided:

* **edit distance** over symbolic state sequences (Levenshtein);
* **longest common subsequence** length;
* **hierarchy similarity** — a Wu–Palmer-style measure where the cost
  of substituting two states shrinks with the depth of their lowest
  common ancestor in the layer hierarchy: two exhibits in the same
  room are nearly interchangeable, two zones in different wings are
  not.  This is only expressible because the SITM carries the static
  layer hierarchy of Section 3.2.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.indoor.hierarchy import LayerHierarchy


def edit_distance(a: Sequence[str], b: Sequence[str]) -> int:
    """Levenshtein distance between two state sequences."""
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, item_a in enumerate(a, start=1):
        current = [i] + [0] * len(b)
        for j, item_b in enumerate(b, start=1):
            substitution = previous[j - 1] + (0 if item_a == item_b else 1)
            current[j] = min(previous[j] + 1,      # deletion
                             current[j - 1] + 1,   # insertion
                             substitution)
        previous = current
    return previous[-1]


def normalized_edit_similarity(a: Sequence[str],
                               b: Sequence[str]) -> float:
    """``1 - distance / max_length`` in [0, 1]; 1 means identical."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - edit_distance(a, b) / longest


def longest_common_subsequence(a: Sequence[str],
                               b: Sequence[str]) -> int:
    """Length of the longest (gap-allowed) common subsequence."""
    if not a or not b:
        return 0
    previous = [0] * (len(b) + 1)
    for item_a in a:
        current = [0] * (len(b) + 1)
        for j, item_b in enumerate(b, start=1):
            if item_a == item_b:
                current[j] = previous[j - 1] + 1
            else:
                current[j] = max(previous[j], current[j - 1])
        previous = current
    return previous[-1]


def state_similarity(hierarchy: LayerHierarchy, state_a: str,
                     state_b: str) -> float:
    """Wu–Palmer-style similarity of two states in [0, 1].

    ``2·depth(lca) / (depth(a) + depth(b))`` with layer levels as
    depths (+1 so the root level is non-zero).  States with no common
    ancestor score 0.
    """
    if state_a == state_b:
        return 1.0
    lca = hierarchy.lowest_common_ancestor(state_a, state_b)
    if lca is None:
        return 0.0
    depth_a = hierarchy.depth_of_node(state_a) + 1
    depth_b = hierarchy.depth_of_node(state_b) + 1
    depth_lca = hierarchy.depth_of_node(lca) + 1
    return 2.0 * depth_lca / (depth_a + depth_b)


def hierarchy_similarity(hierarchy: LayerHierarchy,
                         a: Sequence[str], b: Sequence[str]) -> float:
    """Hierarchy-aware sequence similarity in [0, 1].

    A soft edit distance: substitution cost is
    ``1 − state_similarity``, insert/delete cost 1, normalised by the
    longer sequence's length.  Sequences through sibling cells score
    higher than through unrelated ones even with zero exact matches.
    """
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    previous: List[float] = [float(j) for j in range(len(b) + 1)]
    for i, item_a in enumerate(a, start=1):
        current = [float(i)] + [0.0] * len(b)
        for j, item_b in enumerate(b, start=1):
            cost = 1.0 - state_similarity(hierarchy, item_a, item_b)
            current[j] = min(previous[j] + 1.0,
                             current[j - 1] + 1.0,
                             previous[j - 1] + cost)
        previous = current
    distance = previous[-1]
    return 1.0 - distance / max(len(a), len(b))


def similarity_matrix(hierarchy: Optional[LayerHierarchy],
                      sequences: Sequence[Sequence[str]]
                      ) -> List[List[float]]:
    """Pairwise similarity matrix (hierarchy-aware when given one)."""
    size = len(sequences)
    matrix = [[1.0] * size for _ in range(size)]
    for i in range(size):
        for j in range(i + 1, size):
            if hierarchy is not None:
                value = hierarchy_similarity(hierarchy, sequences[i],
                                             sequences[j])
            else:
                value = normalized_edit_similarity(sequences[i],
                                                   sequences[j])
            matrix[i][j] = value
            matrix[j][i] = value
    return matrix
