"""Trajectory similarity metrics, including a hierarchy-aware one.

Section 5: "We will next focus on ... proposing semantic similarity
metrics for trajectories (e.g. for visitor profiling)."  Three metrics
are provided:

* **edit distance** over symbolic state sequences (Levenshtein);
* **longest common subsequence** length;
* **hierarchy similarity** — a Wu–Palmer-style measure where the cost
  of substituting two states shrinks with the depth of their lowest
  common ancestor in the layer hierarchy: two exhibits in the same
  room are nearly interchangeable, two zones in different wings are
  not.  This is only expressible because the SITM carries the static
  layer hierarchy of Section 3.2.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.indoor.hierarchy import LayerHierarchy


def edit_distance(a: Sequence[str], b: Sequence[str]) -> int:
    """Levenshtein distance between two state sequences."""
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, item_a in enumerate(a, start=1):
        current = [i] + [0] * len(b)
        for j, item_b in enumerate(b, start=1):
            substitution = previous[j - 1] + (0 if item_a == item_b else 1)
            current[j] = min(previous[j] + 1,      # deletion
                             current[j - 1] + 1,   # insertion
                             substitution)
        previous = current
    return previous[-1]


def normalized_edit_similarity(a: Sequence[str],
                               b: Sequence[str]) -> float:
    """``1 - distance / max_length`` in [0, 1]; 1 means identical."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - edit_distance(a, b) / longest


def longest_common_subsequence(a: Sequence[str],
                               b: Sequence[str]) -> int:
    """Length of the longest (gap-allowed) common subsequence."""
    if not a or not b:
        return 0
    previous = [0] * (len(b) + 1)
    for item_a in a:
        current = [0] * (len(b) + 1)
        for j, item_b in enumerate(b, start=1):
            if item_a == item_b:
                current[j] = previous[j - 1] + 1
            else:
                current[j] = max(previous[j], current[j - 1])
        previous = current
    return previous[-1]


def state_similarity(hierarchy: LayerHierarchy, state_a: str,
                     state_b: str) -> float:
    """Wu–Palmer-style similarity of two states in [0, 1].

    ``2·depth(lca) / (depth(a) + depth(b))`` with layer levels as
    depths (+1 so the root level is non-zero).  States with no common
    ancestor score 0.
    """
    if state_a == state_b:
        return 1.0
    lca = hierarchy.lowest_common_ancestor(state_a, state_b)
    if lca is None:
        return 0.0
    depth_a = hierarchy.depth_of_node(state_a) + 1
    depth_b = hierarchy.depth_of_node(state_b) + 1
    depth_lca = hierarchy.depth_of_node(lca) + 1
    return 2.0 * depth_lca / (depth_a + depth_b)


def state_similarity_table(hierarchy: LayerHierarchy,
                           states: Sequence[str]
                           ) -> Dict[Tuple[str, str], float]:
    """Precomputed :func:`state_similarity` over a state alphabet.

    The hierarchy metric's DP recomputes the same state-pair
    similarities for every cell of every sequence pair, yet a corpus
    draws its states from a small alphabet (the detection layer's ~70
    zones).  Computing each unordered pair once turns the dominant
    cost of :func:`similarity_matrix` from O(n²·len²·h) hierarchy
    walks into O(k²) table builds plus O(n²·len²) dict lookups.
    """
    alphabet = sorted(set(states))
    table: Dict[Tuple[str, str], float] = {}
    for index, state_a in enumerate(alphabet):
        table[(state_a, state_a)] = 1.0
        for state_b in alphabet[index + 1:]:
            value = state_similarity(hierarchy, state_a, state_b)
            table[(state_a, state_b)] = value
            table[(state_b, state_a)] = value
    return table


def hierarchy_similarity(hierarchy: LayerHierarchy,
                         a: Sequence[str], b: Sequence[str],
                         table: Optional[Dict[Tuple[str, str], float]]
                         = None) -> float:
    """Hierarchy-aware sequence similarity in [0, 1].

    A soft edit distance: substitution cost is
    ``1 − state_similarity``, insert/delete cost 1, normalised by the
    longer sequence's length.  Sequences through sibling cells score
    higher than through unrelated ones even with zero exact matches.

    Args:
        table: optional precomputed pair-similarity table
            (:func:`state_similarity_table`) covering every state of
            both sequences; built on the fly when omitted.
    """
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    if table is None:
        table = state_similarity_table(hierarchy, list(a) + list(b))
    previous: List[float] = [float(j) for j in range(len(b) + 1)]
    for i, item_a in enumerate(a, start=1):
        current = [float(i)] + [0.0] * len(b)
        for j, item_b in enumerate(b, start=1):
            cost = 1.0 - table[(item_a, item_b)]
            current[j] = min(previous[j] + 1.0,
                             current[j - 1] + 1.0,
                             previous[j - 1] + cost)
        previous = current
    distance = previous[-1]
    return 1.0 - distance / max(len(a), len(b))


def _encoded_costs(hierarchy: LayerHierarchy,
                   sequences: Sequence[Sequence[str]]
                   ) -> Tuple[List[List[int]], List[List[float]]]:
    """Sequences as state codes plus a dense substitution-cost matrix.

    Integer codes turn the DP's per-cell tuple-dict lookup into a list
    index — the remaining constant factor after the alphabet table
    removed the per-cell hierarchy walks.
    """
    alphabet = sorted({state for sequence in sequences
                       for state in sequence})
    code_of = {state: code for code, state in enumerate(alphabet)}
    costs = [[0.0] * len(alphabet) for _ in alphabet]
    for code_a, state_a in enumerate(alphabet):
        for code_b in range(code_a + 1, len(alphabet)):
            cost = 1.0 - state_similarity(hierarchy, state_a,
                                          alphabet[code_b])
            costs[code_a][code_b] = cost
            costs[code_b][code_a] = cost
    encoded = [[code_of[state] for state in sequence]
               for sequence in sequences]
    return encoded, costs


def _soft_edit_similarity(a: List[int], b: List[int],
                          costs: List[List[float]]) -> float:
    """The hierarchy_similarity DP over coded sequences."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    width = len(b)
    previous: List[float] = [float(j) for j in range(width + 1)]
    for i, code_a in enumerate(a, start=1):
        row = costs[code_a]
        current = [float(i)] + [0.0] * width
        for j, code_b in enumerate(b, start=1):
            substitution = previous[j - 1] + row[code_b]
            deletion = previous[j] + 1.0
            insertion = current[j - 1] + 1.0
            best = substitution if substitution <= deletion \
                else deletion
            current[j] = best if best <= insertion else insertion
        previous = current
    return 1.0 - previous[-1] / max(len(a), len(b))


def similarity_matrix(hierarchy: Optional[LayerHierarchy],
                      sequences: Sequence[Sequence[str]]
                      ) -> List[List[float]]:
    """Pairwise similarity matrix (hierarchy-aware when given one).

    With a hierarchy, the state-pair similarities are precomputed once
    over the sequences' alphabet and shared across all O(n²) DP runs
    on integer-coded sequences; the values are identical to calling
    :func:`hierarchy_similarity` per pair.
    """
    size = len(sequences)
    matrix = [[1.0] * size for _ in range(size)]
    if hierarchy is not None:
        encoded, costs = _encoded_costs(hierarchy, sequences)
        # Corpora repeat state sequences heavily (short symbolic
        # paths over a small alphabet): run the DP once per unique
        # sequence pair and broadcast.  hierarchy_similarity depends
        # only on sequence contents, so values are unchanged.
        unique_index: Dict[Tuple[int, ...], int] = {}
        member_of: List[int] = []
        unique: List[List[int]] = []
        for codes in encoded:
            key = tuple(codes)
            found = unique_index.get(key)
            if found is None:
                found = len(unique)
                unique_index[key] = found
                unique.append(codes)
            member_of.append(found)
        pair_value: Dict[Tuple[int, int], float] = {}
        for i in range(size):
            unique_i = member_of[i]
            for j in range(i + 1, size):
                unique_j = member_of[j]
                if unique_i == unique_j:
                    value = 1.0
                else:
                    pair = (unique_i, unique_j) \
                        if unique_i < unique_j else (unique_j, unique_i)
                    value = pair_value.get(pair)
                    if value is None:
                        value = _soft_edit_similarity(
                            unique[pair[0]], unique[pair[1]], costs)
                        pair_value[pair] = value
                matrix[i][j] = value
                matrix[j][i] = value
        return matrix
    for i in range(size):
        for j in range(i + 1, size):
            value = normalized_edit_similarity(sequences[i],
                                               sequences[j])
            matrix[i][j] = value
            matrix[j][i] = value
    return matrix


def similarity_block(hierarchy: Optional[LayerHierarchy],
                     sequences: Sequence[Sequence[str]],
                     row_start: int, row_end: int
                     ) -> List[List[float]]:
    """Rows ``[row_start, row_end)`` of :func:`similarity_matrix`.

    The shard-partition unit for distributed similarity: every pair's
    score depends only on the two sequences and the hierarchy (the
    cost table is symmetric and per-state-pair), and the DP is always
    run with the lower unique index first — exactly as the full
    matrix does — so a block computed against the full column set is
    bit-identical to the same rows of the full matrix.
    """
    size = len(sequences)
    if not 0 <= row_start <= row_end <= size:
        raise ValueError("row block [{}, {}) out of range for {} "
                         "sequences".format(row_start, row_end, size))
    if hierarchy is None:
        block = []
        for i in range(row_start, row_end):
            row = [1.0] * size
            for j in range(size):
                if j != i:
                    row[j] = normalized_edit_similarity(sequences[i],
                                                        sequences[j])
            block.append(row)
        return block
    encoded, costs = _encoded_costs(hierarchy, sequences)
    unique_index: Dict[Tuple[int, ...], int] = {}
    member_of: List[int] = []
    unique: List[List[int]] = []
    for codes in encoded:
        key = tuple(codes)
        found = unique_index.get(key)
        if found is None:
            found = len(unique)
            unique_index[key] = found
            unique.append(codes)
        member_of.append(found)
    pair_value: Dict[Tuple[int, int], float] = {}
    block = []
    for i in range(row_start, row_end):
        unique_i = member_of[i]
        row = [1.0] * size
        for j in range(size):
            if j == i:
                continue
            unique_j = member_of[j]
            if unique_i == unique_j:
                value = 1.0
            else:
                pair = (unique_i, unique_j) \
                    if unique_i < unique_j else (unique_j, unique_i)
                value = pair_value.get(pair)
                if value is None:
                    value = _soft_edit_similarity(
                        unique[pair[0]], unique[pair[1]], costs)
                    pair_value[pair] = value
            row[j] = value
        block.append(row)
    return block
