"""PrefixSpan sequential pattern mining over symbolic trajectories.

Bogorny et al. [7] (cited in Section 2.2) extended semantic trajectory
models "with fundamental data mining concepts in order to support
frequent/sequential patterns and association rules"; the SITM is
designed so its symbolic state sequences feed such miners directly —
at any hierarchy granularity (zones, floors, wings) thanks to lifting.

This is the classic PrefixSpan algorithm (Pei et al. 2001) specialised
to single-item events (a visitor is in one cell at a time), which
makes the projected-database machinery simple and fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple


@dataclass(frozen=True)
class SequentialPattern:
    """One frequent sequential pattern.

    Attributes:
        sequence: the pattern's state tuple (order matters, gaps
            allowed — it is a subsequence pattern, not a substring).
        support: number of input sequences containing the pattern.
    """

    sequence: Tuple[str, ...]
    support: int

    @property
    def length(self) -> int:
        """Pattern length in items."""
        return len(self.sequence)

    def describe(self) -> str:
        """Compact form, e.g. ``zone60886→zone60861 (support 120)``."""
        return "{} (support {})".format("→".join(self.sequence),
                                        self.support)

    def to_dict(self) -> Dict:
        """JSON-safe plain-data form (service wire format)."""
        return {"sequence": list(self.sequence),
                "support": self.support}

    @staticmethod
    def from_dict(data: Mapping) -> "SequentialPattern":
        """Inverse of :meth:`to_dict`."""
        return SequentialPattern(tuple(data["sequence"]),
                                 int(data["support"]))


def prefixspan(sequences: Sequence[Sequence[str]],
               min_support: int,
               max_length: int = 6) -> List[SequentialPattern]:
    """Mine frequent sequential patterns.

    Args:
        sequences: the symbolic state sequences (one per trajectory).
        min_support: minimum number of sequences a pattern must occur
            in (absolute count).
        max_length: maximum pattern length to explore.

    Returns:
        Patterns sorted by descending support, then lexicographically.

    Raises:
        ValueError: for ``min_support < 1`` or ``max_length < 1``.
    """
    if min_support < 1:
        raise ValueError("min_support must be at least 1")
    if max_length < 1:
        raise ValueError("max_length must be at least 1")
    patterns: List[SequentialPattern] = []
    # A projected database is a list of (sequence index, start offset).
    initial = [(index, 0) for index in range(len(sequences))]
    _grow((), initial, sequences, min_support, max_length, patterns)
    patterns.sort(key=lambda p: (-p.support, p.sequence))
    return patterns


def _grow(prefix: Tuple[str, ...],
          projected: List[Tuple[int, int]],
          sequences: Sequence[Sequence[str]],
          min_support: int, max_length: int,
          out: List[SequentialPattern]) -> None:
    """Extend ``prefix`` by every frequent item in its projection."""
    if len(prefix) >= max_length:
        return
    # Count, per candidate item, the number of distinct sequences where
    # the item occurs at or after the projection point.
    support: Dict[str, int] = {}
    first_position: Dict[Tuple[str, int], int] = {}
    for seq_index, offset in projected:
        seen_here = set()
        sequence = sequences[seq_index]
        for position in range(offset, len(sequence)):
            item = sequence[position]
            if item in seen_here:
                continue
            seen_here.add(item)
            support[item] = support.get(item, 0) + 1
            first_position[(item, seq_index)] = position
    for item in sorted(support):
        count = support[item]
        if count < min_support:
            continue
        new_prefix = prefix + (item,)
        out.append(SequentialPattern(new_prefix, count))
        new_projected: List[Tuple[int, int]] = []
        for seq_index, _ in projected:
            position = first_position.get((item, seq_index))
            if position is not None:
                new_projected.append((seq_index, position + 1))
        _grow(new_prefix, new_projected, sequences, min_support,
              max_length, out)


def contains_pattern(sequence: Sequence[str],
                     pattern: Sequence[str]) -> bool:
    """True when ``pattern`` is a (gap-allowed) subsequence."""
    iterator = iter(sequence)
    return all(item in iterator for item in pattern)


def pattern_support(sequences: Sequence[Sequence[str]],
                    pattern: Sequence[str]) -> int:
    """Recount a pattern's support (used to cross-check the miner)."""
    return sum(1 for sequence in sequences
               if contains_pattern(sequence, pattern))
