"""Mining and analysis methods the SITM is designed to support.

Section 3 requires the model to support "mining and analysis
applications using both statistical and reasoning approaches in order
to provide insight both at the individual and collective level", and
Section 5 announces "new data mining methods that exploit the
expressiveness of the SITM" and "semantic similarity metrics for
trajectories (e.g. for visitor profiling)".  This package implements
the named method families:

* :mod:`repro.mining.sequences` — symbolic sequence statistics
  (detection counts, transition matrices, n-grams — Figure 3's input);
* :mod:`repro.mining.prefixspan` — sequential pattern mining
  (PrefixSpan), the "frequent/sequential patterns" of [7];
* :mod:`repro.mining.association` — Apriori association rules over
  annotated visits;
* :mod:`repro.mining.similarity` — symbolic edit distance, LCS, and a
  hierarchy-aware semantic similarity;
* :mod:`repro.mining.profiling` — feature extraction + k-medoids
  visitor profiling;
* :mod:`repro.mining.patterns` — floor-switching / wing-switching
  pattern detection ("the data can already provide some interesting
  insight ... e.g. floor-switching patterns" — Section 5).
"""

from repro.mining.corpus import Corpus, as_trajectory_list, \
    iter_trajectories
from repro.mining.sequences import (
    detection_counts,
    state_sequences,
    transition_matrix,
    ngram_counts,
    dwell_statistics,
)
from repro.mining.prefixspan import SequentialPattern, prefixspan
from repro.mining.association import AssociationRule, apriori, mine_rules
from repro.mining.similarity import (
    edit_distance,
    hierarchy_similarity,
    longest_common_subsequence,
    normalized_edit_similarity,
)
from repro.mining.profiling import (
    VisitFeatures,
    extract_features,
    k_medoids,
)
from repro.mining.patterns import (
    FloorSwitchProfile,
    floor_switch_profile,
    switch_sequences,
)
from repro.mining.flow import (
    FlowBalance,
    flow_balances,
    hourly_occupancy,
    od_matrix,
    simultaneous_occupancy,
)
from repro.mining.stops import (
    StopMoveConfig,
    segment_stops_moves,
    stop_cells,
)

__all__ = [
    "Corpus",
    "as_trajectory_list",
    "iter_trajectories",
    "detection_counts",
    "state_sequences",
    "transition_matrix",
    "ngram_counts",
    "dwell_statistics",
    "SequentialPattern",
    "prefixspan",
    "AssociationRule",
    "apriori",
    "mine_rules",
    "edit_distance",
    "hierarchy_similarity",
    "longest_common_subsequence",
    "normalized_edit_similarity",
    "VisitFeatures",
    "extract_features",
    "k_medoids",
    "FloorSwitchProfile",
    "floor_switch_profile",
    "switch_sequences",
    "FlowBalance",
    "flow_balances",
    "hourly_occupancy",
    "od_matrix",
    "simultaneous_occupancy",
    "StopMoveConfig",
    "segment_stops_moves",
    "stop_cells",
]
