"""Collective-level flow analytics.

Section 3 requires support for "insight both at the individual and
collective level".  The individual level is covered by episodes,
similarity and profiling; this module adds the collective level:

* origin–destination matrices over any layer granularity;
* time-of-day occupancy series per cell (the temporal cousin of the
  Figure 3 choropleth);
* flow imbalance — cells whose in-flow and out-flow differ, which in
  a museum flags entrances, exits and one-way bottlenecks;
* simultaneous-occupancy (congestion) estimation from the store's
  interval index.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.timeutil import SECONDS_PER_DAY
from repro.mining.corpus import Corpus, iter_trajectories
from repro.storage.store import TrajectoryStore


def od_matrix(trajectories: Corpus) -> Dict[Tuple[str, str], int]:
    """Origin–destination counts: first state → last state per visit."""
    counter: Counter = Counter()
    for trajectory in iter_trajectories(trajectories):
        sequence = trajectory.distinct_state_sequence()
        counter[(sequence[0], sequence[-1])] += 1
    return dict(counter)


@dataclass(frozen=True)
class FlowBalance:
    """In/out flow of one cell across a corpus.

    Attributes:
        state: the cell.
        inflow: transitions arriving at the cell.
        outflow: transitions leaving the cell.
        started_here: visits whose first detection was here.
        ended_here: visits whose last detection was here.
    """

    state: str
    inflow: int
    outflow: int
    started_here: int
    ended_here: int

    @property
    def imbalance(self) -> int:
        """``inflow - outflow``; large positive values mark sinks
        (exits), large negative values mark sources (entrances)."""
        return self.inflow - self.outflow

    def to_dict(self) -> Dict:
        """JSON-safe plain-data form (service wire format).

        ``imbalance`` is included for consumers but ignored on the
        way back in (it is derived).
        """
        return {"state": self.state, "inflow": self.inflow,
                "outflow": self.outflow,
                "started_here": self.started_here,
                "ended_here": self.ended_here,
                "imbalance": self.imbalance}

    @staticmethod
    def from_dict(data: Mapping) -> "FlowBalance":
        """Inverse of :meth:`to_dict`."""
        return FlowBalance(data["state"], int(data["inflow"]),
                           int(data["outflow"]),
                           int(data["started_here"]),
                           int(data["ended_here"]))


def flow_balances(trajectories: Corpus) -> List[FlowBalance]:
    """Per-cell flow balance, sorted by |imbalance| descending."""
    inflow: Counter = Counter()
    outflow: Counter = Counter()
    starts: Counter = Counter()
    ends: Counter = Counter()
    states: set = set()
    for trajectory in iter_trajectories(trajectories):
        sequence = trajectory.distinct_state_sequence()
        states.update(sequence)
        starts[sequence[0]] += 1
        ends[sequence[-1]] += 1
        for source, target in zip(sequence, sequence[1:]):
            outflow[source] += 1
            inflow[target] += 1
    balances = [FlowBalance(state, inflow[state], outflow[state],
                            starts[state], ends[state])
                for state in states]
    return sorted(balances, key=lambda b: (-abs(b.imbalance), b.state))


def hourly_occupancy(trajectories: Corpus,
                     states: Optional[Sequence[str]] = None
                     ) -> Dict[str, List[float]]:
    """Seconds of presence per cell per hour-of-day (24 buckets).

    Stays are apportioned to the hours they span, so a 90-minute stay
    starting at 10:30 contributes 30 minutes to hour 10 and 60 to
    hour 11 (capped at the stay end).
    """
    occupancy: Dict[str, List[float]] = {}
    for trajectory in iter_trajectories(trajectories):
        for entry in trajectory.trace:
            series = occupancy.setdefault(entry.state, [0.0] * 24)
            _apportion(series, entry.t_start, entry.t_end)
    if states is None:
        return occupancy
    return {state: occupancy.get(state, [0.0] * 24)
            for state in states}


def _apportion(series: List[float], t_start: float,
               t_end: float) -> None:
    cursor = t_start
    while cursor < t_end:
        second_of_day = cursor % SECONDS_PER_DAY
        hour = int(second_of_day // 3600)
        hour_end = cursor + (3600.0 - second_of_day % 3600.0)
        slice_end = min(hour_end, t_end)
        series[hour] += slice_end - cursor
        cursor = slice_end


def peak_hour(series: Sequence[float]) -> int:
    """The hour-of-day with the highest occupancy."""
    return max(range(len(series)), key=lambda h: series[h])


def simultaneous_occupancy(store: TrajectoryStore, t: float
                           ) -> Dict[str, int]:
    """How many moving objects occupy each cell at time ``t``.

    Uses the store's interval index, so the cost is proportional to
    the number of simultaneously-present objects, not the corpus size.
    """
    counts: Counter = Counter()
    for state in store.states_occupied_at(t).values():
        counts[state] += 1
    return dict(counts)


def congestion_profile(store: TrajectoryStore,
                       t_start: float, t_end: float,
                       step: float = 3600.0
                       ) -> List[Tuple[float, int, Optional[str]]]:
    """Sampled congestion: (time, objects present, busiest cell).

    Raises:
        ValueError: for a non-positive step or reversed window.
    """
    if step <= 0:
        raise ValueError("step must be positive")
    if t_end < t_start:
        raise ValueError("window end precedes start")
    samples: List[Tuple[float, int, Optional[str]]] = []
    t = t_start
    while t <= t_end:
        occupancy = simultaneous_occupancy(store, t)
        total = sum(occupancy.values())
        busiest = max(occupancy, key=lambda s: (occupancy[s], s),
                      default=None)
        samples.append((t, total, busiest))
        t += step
    return samples
