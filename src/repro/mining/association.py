"""Apriori association rules over annotated visits.

The classical companion to sequential patterns in the trajectory
mining literature the paper builds on ([7]: "frequent/sequential
patterns and association rules").  Transactions here are visits; items
are whatever the caller derives from a trajectory — visited zones,
floors reached, goal annotations, visitor-profile tags — which is
exactly the kind of mixed spatio-semantic itemset the SITM makes easy
to produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class AssociationRule:
    """One mined rule ``antecedent ⇒ consequent``.

    Attributes:
        antecedent: the left-hand itemset.
        consequent: the right-hand itemset (disjoint from the left).
        support: fraction of transactions containing both sides.
        confidence: ``support(A ∪ C) / support(A)``.
        lift: ``confidence / support(C)``; > 1 means positive
            correlation.
    """

    antecedent: FrozenSet[str]
    consequent: FrozenSet[str]
    support: float
    confidence: float
    lift: float

    def describe(self) -> str:
        """Compact form, e.g. ``{a, b} ⇒ {c} (conf 0.82, lift 1.4)``."""
        return "{{{}}} ⇒ {{{}}} (supp {:.3f}, conf {:.2f}, lift {:.2f})".format(
            ", ".join(sorted(self.antecedent)),
            ", ".join(sorted(self.consequent)),
            self.support, self.confidence, self.lift)


def apriori(transactions: Sequence[Iterable[str]],
            min_support: float,
            max_size: int = 4) -> Dict[FrozenSet[str], float]:
    """Mine frequent itemsets with the Apriori algorithm.

    Args:
        transactions: item collections, one per visit.
        min_support: minimum relative support in (0, 1].
        max_size: largest itemset size explored.

    Returns:
        Mapping itemset → relative support.

    Raises:
        ValueError: for an empty transaction list or a support outside
            (0, 1].
    """
    if not transactions:
        raise ValueError("apriori needs at least one transaction")
    if not 0.0 < min_support <= 1.0:
        raise ValueError("min_support must lie in (0, 1]")
    sets = [frozenset(t) for t in transactions]
    total = len(sets)
    threshold = min_support * total

    # 1-itemsets.
    counts: Dict[FrozenSet[str], int] = {}
    for transaction in sets:
        for item in transaction:
            key = frozenset([item])
            counts[key] = counts.get(key, 0) + 1
    frequent: Dict[FrozenSet[str], float] = {
        itemset: count / total for itemset, count in counts.items()
        if count >= threshold}
    current_level = [s for s in frequent if len(s) == 1]

    size = 2
    while current_level and size <= max_size:
        candidates = _candidates(current_level, size)
        level_counts: Dict[FrozenSet[str], int] = {}
        for transaction in sets:
            for candidate in candidates:
                if candidate <= transaction:
                    level_counts[candidate] = \
                        level_counts.get(candidate, 0) + 1
        current_level = []
        for candidate, count in level_counts.items():
            if count >= threshold:
                frequent[candidate] = count / total
                current_level.append(candidate)
        size += 1
    return frequent


def _candidates(previous_level: List[FrozenSet[str]],
                size: int) -> List[FrozenSet[str]]:
    """Join step with Apriori pruning."""
    previous = set(previous_level)
    joined = set()
    for a, b in combinations(previous_level, 2):
        union = a | b
        if len(union) != size:
            continue
        # Prune: every (size-1)-subset must be frequent.
        if all(frozenset(subset) in previous
               for subset in combinations(union, size - 1)):
            joined.add(union)
    return sorted(joined, key=sorted)


def mine_rules(transactions: Sequence[Iterable[str]],
               min_support: float = 0.05,
               min_confidence: float = 0.5,
               max_size: int = 4) -> List[AssociationRule]:
    """Mine association rules from frequent itemsets.

    Returns rules sorted by descending lift then confidence.
    """
    frequent = apriori(transactions, min_support, max_size)
    rules: List[AssociationRule] = []
    for itemset, support in frequent.items():
        if len(itemset) < 2:
            continue
        for split in range(1, len(itemset)):
            for antecedent_items in combinations(sorted(itemset), split):
                antecedent = frozenset(antecedent_items)
                consequent = itemset - antecedent
                base = frequent.get(antecedent)
                cons_support = frequent.get(consequent)
                if base is None or cons_support is None:
                    continue
                confidence = support / base
                if confidence < min_confidence:
                    continue
                rules.append(AssociationRule(
                    antecedent, consequent, support, confidence,
                    confidence / cons_support))
    rules.sort(key=lambda r: (-r.lift, -r.confidence,
                              sorted(r.antecedent)))
    return rules
