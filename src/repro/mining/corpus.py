"""Corpus coercion: every miner accepts query results directly.

Mining entry points take a *corpus* argument that may be any of:

* an iterable of :class:`~repro.core.trajectory.SemanticTrajectory`
  (the historical form);
* an iterable of :class:`~repro.storage.store.StoredTrajectory`
  (store hits — ids are stripped);
* a lazy :class:`~repro.storage.results.ResultSet`;
* an unexecuted :class:`~repro.storage.query.Query` (executed here);
* a whole :class:`~repro.storage.store.TrajectoryStore`.

:func:`iter_trajectories` normalizes all of them to a stream of plain
trajectories, so ``patterns(Query(store).visiting_state("z"))`` works
without materializing anything the caller didn't ask for.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Union

from repro.core.trajectory import SemanticTrajectory
from repro.storage.store import StoredTrajectory

#: Anything the miners accept as a corpus.
Corpus = Union[
    Iterable[SemanticTrajectory],
    Iterable[StoredTrajectory],
    "repro.storage.query.Query",          # noqa: F821
    "repro.storage.results.ResultSet",    # noqa: F821
    "repro.storage.store.TrajectoryStore",  # noqa: F821
]


def iter_trajectories(corpus: Corpus) -> Iterator[SemanticTrajectory]:
    """Stream plain trajectories out of any corpus form."""
    execute = getattr(corpus, "execute", None)
    if callable(execute):  # an unexecuted Query
        corpus = execute()
    for item in corpus:
        if isinstance(item, StoredTrajectory):
            yield item.trajectory
        else:
            yield item


def as_trajectory_list(corpus: Corpus) -> List[SemanticTrajectory]:
    """Materialize a corpus (for multi-pass consumers)."""
    return list(iter_trajectories(corpus))
