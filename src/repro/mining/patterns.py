"""Floor-switching and wing-switching pattern analysis.

Section 5 closes with: "the data can already provide some interesting
insight albeit at a coarse level of granularity (e.g. floor-switching
patterns)".  This module delivers that insight: zone-level trajectories
are lifted to the floor (or wing) layer via the hierarchy, and the
resulting coarse sequences are profiled — exactly the multi-granularity
analysis the static layer hierarchy of Section 3.2 was designed to
enable.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.inference import lift_trajectory
from repro.core.trajectory import SemanticTrajectory
from repro.indoor.hierarchy import LayerHierarchy
from repro.mining.corpus import Corpus, iter_trajectories


@dataclass(frozen=True)
class FloorSwitchProfile:
    """Corpus-level floor-switching behaviour.

    Attributes:
        visits: trajectories successfully lifted.
        switch_histogram: switches-per-visit → visit count.
        mean_switches: average floor changes per visit.
        top_sequences: most frequent coarse sequences with counts.
        top_switches: most frequent (from-floor, to-floor) moves.
    """

    visits: int
    switch_histogram: Dict[int, int]
    mean_switches: float
    top_sequences: List[Tuple[Tuple[str, ...], int]]
    top_switches: List[Tuple[Tuple[str, str], int]]


def switch_sequences(trajectories: Corpus,
                     hierarchy: LayerHierarchy,
                     target_layer: str) -> List[List[str]]:
    """Lift every trajectory and return its coarse state sequence.

    Trajectories that cannot be lifted at all are skipped (e.g. all
    their states are orphans at the target layer).
    """
    sequences: List[List[str]] = []
    for trajectory in iter_trajectories(trajectories):
        try:
            lifted = lift_trajectory(trajectory, hierarchy, target_layer)
        except ValueError:
            continue
        sequences.append(lifted.distinct_state_sequence())
    return sequences


def floor_switch_profile(trajectories: Corpus,
                         hierarchy: LayerHierarchy,
                         target_layer: str = "floors",
                         top: int = 10) -> FloorSwitchProfile:
    """Profile floor-switching behaviour across a corpus."""
    sequences = switch_sequences(trajectories, hierarchy, target_layer)
    histogram: Counter = Counter()
    sequence_counter: Counter = Counter()
    move_counter: Counter = Counter()
    for sequence in sequences:
        switches = len(sequence) - 1
        histogram[switches] += 1
        sequence_counter[tuple(sequence)] += 1
        for move in zip(sequence, sequence[1:]):
            move_counter[move] += 1
    total_switches = sum(count * switches
                         for switches, count in histogram.items())
    visits = len(sequences)
    return FloorSwitchProfile(
        visits=visits,
        switch_histogram=dict(histogram),
        mean_switches=(total_switches / visits) if visits else 0.0,
        top_sequences=sequence_counter.most_common(top),
        top_switches=move_counter.most_common(top),
    )


def multi_floor_share(profile: FloorSwitchProfile) -> float:
    """Fraction of visits that touched more than one floor."""
    if profile.visits == 0:
        return 0.0
    single = profile.switch_histogram.get(0, 0)
    return 1.0 - single / profile.visits


def vertical_explorers(trajectories: Corpus,
                       hierarchy: LayerHierarchy,
                       min_floors: int = 3,
                       target_layer: str = "floors"
                       ) -> List[SemanticTrajectory]:
    """Visits that reached at least ``min_floors`` distinct floors."""
    explorers: List[SemanticTrajectory] = []
    for trajectory in iter_trajectories(trajectories):
        floors = set()
        for state in trajectory.distinct_state_sequence():
            lifted = hierarchy.lift(state, target_layer)
            if lifted is not None:
                floors.add(lifted)
        if len(floors) >= min_floors:
            explorers.append(trajectory)
    return explorers
