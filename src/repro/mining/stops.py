"""Stop/move segmentation in SITM terms.

The stop-and-move decomposition is the founding operation of semantic
outdoor trajectory models ([24], with [3] implementing stops "based on
temporal stay value thresholds").  The paper judges "the segmentation
of trajectories into episodes" a transferable practice, so this module
expresses stops and moves as SITM **episodes**: a stop is a maximal
run of presence intervals in one cell lasting at least a threshold; a
move is what lies between stops.  The result is an (overlap-free)
episodic segmentation that downstream tooling treats like any other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.annotations import AnnotationSet
from repro.core.episodes import Episode, EpisodicSegmentation
from repro.core.subtrajectory import extract_by_entries
from repro.core.trajectory import SemanticTrajectory

#: Episode labels used for the two segment kinds.
STOP_LABEL = "stop"
MOVE_LABEL = "move"


@dataclass(frozen=True)
class StopMoveConfig:
    """Segmentation thresholds.

    Attributes:
        min_stop_seconds: minimum accumulated stay in one cell for a
            run to count as a stop ([3]'s temporal threshold).
        max_internal_gap: a silence longer than this inside a run
            breaks it.
    """

    min_stop_seconds: float = 300.0
    max_internal_gap: float = 600.0


def _runs(trajectory: SemanticTrajectory,
          config: StopMoveConfig) -> List[Tuple[int, int]]:
    """Maximal same-cell entry runs as (first, last) index pairs."""
    entries = trajectory.trace.entries
    runs: List[Tuple[int, int]] = []
    first = 0
    for index in range(1, len(entries)):
        same_cell = entries[index].state == entries[first].state
        gap = entries[index].t_start - entries[index - 1].t_end
        if not same_cell or gap > config.max_internal_gap:
            runs.append((first, index - 1))
            first = index
    runs.append((first, len(entries) - 1))
    return runs


def segment_stops_moves(trajectory: SemanticTrajectory,
                        config: Optional[StopMoveConfig] = None
                        ) -> EpisodicSegmentation:
    """Segment a trajectory into stop and move episodes.

    Runs meeting the stop threshold become ``stop`` episodes annotated
    ``activity:stay``; the stretches between consecutive stops become
    ``move`` episodes annotated ``activity:transit``.  Entry ranges
    spanning the whole trace (a single all-stop or all-move
    trajectory) cannot be proper subtrajectories (Definition 3.3), so
    such trajectories yield an empty segmentation — a trajectory that
    *is* one stop has no meaningful sub-part.
    """
    config = config or StopMoveConfig()
    entries = trajectory.trace.entries
    total = len(entries)
    stop_ranges: List[Tuple[int, int]] = []
    for first, last in _runs(trajectory, config):
        stay = sum(entries[i].duration for i in range(first, last + 1))
        if stay >= config.min_stop_seconds:
            stop_ranges.append((first, last))

    episodes: List[Episode] = []

    def add(first: int, last: int, label: str, activity: str) -> None:
        if first > last:
            return
        if first == 0 and last == total - 1:
            return  # not a proper subtrajectory
        sub = extract_by_entries(trajectory, first, last,
                                 annotations=_activity_set(activity))
        episodes.append(Episode(sub, label))

    cursor = 0
    for first, last in stop_ranges:
        add(cursor, first - 1, MOVE_LABEL, "transit")
        add(first, last, STOP_LABEL, "stay")
        cursor = last + 1
    add(cursor, total - 1, MOVE_LABEL, "transit")
    return EpisodicSegmentation(trajectory, episodes)


def _activity_set(activity: str) -> AnnotationSet:
    from repro.core.annotations import SemanticAnnotation
    return AnnotationSet.of(SemanticAnnotation.activity(activity))


def stops_of(segmentation: EpisodicSegmentation) -> List[Episode]:
    """The stop episodes, in time order."""
    return [e for e in segmentation if e.label == STOP_LABEL]


def moves_of(segmentation: EpisodicSegmentation) -> List[Episode]:
    """The move episodes, in time order."""
    return [e for e in segmentation if e.label == MOVE_LABEL]


def stop_cells(segmentation: EpisodicSegmentation) -> List[str]:
    """The cells where the object stopped, in stop order.

    This is [7]'s "important visited places" list, derivable here
    without any geometry because cells are already symbolic.
    """
    cells: List[str] = []
    for episode in stops_of(segmentation):
        state = episode.subtrajectory.trace.entries[0].state
        cells.append(state)
    return cells
