"""Symbolic sequence statistics over semantic trajectories.

These are the corpus-level aggregations behind the paper's Figure 3
(detections per zone) and the descriptive statistics of Section 4.1.
Everything works on the symbolic state sequences of SITM traces, which
is the point of the model: no geometry is touched.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.mining.corpus import Corpus, as_trajectory_list, \
    iter_trajectories


def state_sequences(trajectories: Corpus) -> List[List[str]]:
    """The distinct state sequence of every trajectory."""
    return [t.distinct_state_sequence()
            for t in iter_trajectories(trajectories)]


def detection_counts(trajectories: Corpus,
                     states: Optional[Sequence[str]] = None
                     ) -> Dict[str, int]:
    """Number of presence intervals per state across the corpus.

    Args:
        trajectories: the corpus (any form, incl. a query/result set).
        states: when given, restrict (and zero-fill) to these states —
            e.g. the 11 ground-floor zones for the Figure 3 choropleth.
    """
    counter: Counter = Counter()
    for trajectory in iter_trajectories(trajectories):
        for entry in trajectory.trace:
            counter[entry.state] += 1
    if states is None:
        return dict(counter)
    return {state: counter.get(state, 0) for state in states}


def visitor_counts(trajectories: Corpus,
                   states: Optional[Sequence[str]] = None
                   ) -> Dict[str, int]:
    """Number of distinct moving objects that visited each state."""
    seen: Dict[str, set] = {}
    for trajectory in iter_trajectories(trajectories):
        for state in set(trajectory.states()):
            seen.setdefault(state, set()).add(trajectory.mo_id)
    counts = {state: len(mos) for state, mos in seen.items()}
    if states is None:
        return counts
    return {state: counts.get(state, 0) for state in states}


def transition_matrix(trajectories: Corpus
                      ) -> Dict[Tuple[str, str], int]:
    """Counts of observed state-to-state moves across the corpus."""
    counter: Counter = Counter()
    for trajectory in iter_trajectories(trajectories):
        for pair in trajectory.trace.transitions():
            counter[pair] += 1
    return dict(counter)


def top_transitions(matrix: Mapping[Tuple[str, str], int],
                    count: int = 10) -> List[Tuple[Tuple[str, str], int]]:
    """The most frequent transitions, ties broken lexicographically."""
    return sorted(matrix.items(), key=lambda kv: (-kv[1], kv[0]))[:count]


def ngram_counts(sequences: Sequence[Sequence[str]],
                 n: int = 2) -> Dict[Tuple[str, ...], int]:
    """Frequency of contiguous state n-grams across sequences.

    Raises:
        ValueError: for ``n < 1``.
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    counter: Counter = Counter()
    for sequence in sequences:
        for i in range(len(sequence) - n + 1):
            counter[tuple(sequence[i:i + n])] += 1
    return dict(counter)


def dwell_statistics(trajectories: Corpus
                     ) -> Dict[str, Dict[str, float]]:
    """Per-state dwell-time statistics (count/total/mean/max seconds)."""
    dwell: Dict[str, List[float]] = {}
    for trajectory in iter_trajectories(trajectories):
        for entry in trajectory.trace:
            dwell.setdefault(entry.state, []).append(entry.duration)
    stats: Dict[str, Dict[str, float]] = {}
    for state, durations in dwell.items():
        stats[state] = {
            "count": float(len(durations)),
            "total": sum(durations),
            "mean": sum(durations) / len(durations),
            "max": max(durations),
        }
    return stats


def corpus_summary(trajectories: Corpus) -> Dict[str, float]:
    """Section 4.1-style corpus headline numbers."""
    trajectories = as_trajectory_list(trajectories)
    if not trajectories:
        return {"visits": 0, "visitors": 0, "detections": 0,
                "transitions": 0, "max_visit_duration": 0.0,
                "min_visit_duration": 0.0}
    visitors = {t.mo_id for t in trajectories}
    detections = sum(len(t.trace) for t in trajectories)
    transitions = sum(len(t.trace) - 1 for t in trajectories)
    durations = [t.duration for t in trajectories]
    return {
        "visits": len(trajectories),
        "visitors": len(visitors),
        "detections": detections,
        "transitions": transitions,
        "max_visit_duration": max(durations),
        "min_visit_duration": min(durations),
    }
