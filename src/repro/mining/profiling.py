"""Visitor profiling: feature extraction and k-medoids clustering.

The paper motivates "semantic similarity metrics for trajectories
(e.g. for visitor profiling)" (Section 5).  Profiling here is a
two-step pipeline:

1. :func:`extract_features` — numeric behavioural features per visit
   (duration, zone coverage, dwell style, vertical movement);
2. :func:`k_medoids` — clustering under any distance (feature-space
   Euclidean by default, or a trajectory-similarity-derived distance),
   recovering the ant/fish/grasshopper/butterfly styles from data.

k-medoids (PAM-style) is chosen over k-means because it accepts
arbitrary distance matrices — which is what lets the hierarchy-aware
similarity of :mod:`repro.mining.similarity` drive the clustering.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.trajectory import SemanticTrajectory
from repro.indoor.hierarchy import LayerHierarchy


@dataclass(frozen=True)
class VisitFeatures:
    """Behavioural features of one visit.

    Attributes:
        mo_id: the visitor.
        duration: visit span, seconds.
        cell_count: distinct cells visited.
        entry_count: presence intervals (revisits included).
        mean_dwell: mean stay duration, seconds.
        max_dwell: longest stay, seconds.
        floor_switches: number of floor changes (needs a hierarchy).
    """

    mo_id: str
    duration: float
    cell_count: int
    entry_count: int
    mean_dwell: float
    max_dwell: float
    floor_switches: int

    def as_vector(self) -> Tuple[float, ...]:
        """Numeric vector (log-scaled durations to tame heavy tails)."""
        return (
            math.log1p(self.duration),
            float(self.cell_count),
            float(self.entry_count),
            math.log1p(self.mean_dwell),
            math.log1p(self.max_dwell),
            float(self.floor_switches),
        )


def extract_features(trajectory: SemanticTrajectory,
                     hierarchy: Optional[LayerHierarchy] = None,
                     floor_layer: str = "floors") -> VisitFeatures:
    """Compute :class:`VisitFeatures` for one trajectory."""
    durations = [entry.duration for entry in trajectory.trace]
    states = trajectory.states()
    switches = 0
    if hierarchy is not None:
        floors = []
        for state in trajectory.distinct_state_sequence():
            lifted = hierarchy.lift(state, floor_layer)
            if lifted is not None:
                floors.append(lifted)
        switches = sum(1 for a, b in zip(floors, floors[1:]) if a != b)
    return VisitFeatures(
        mo_id=trajectory.mo_id,
        duration=trajectory.duration,
        cell_count=len(set(states)),
        entry_count=len(states),
        mean_dwell=sum(durations) / len(durations),
        max_dwell=max(durations),
        floor_switches=switches,
    )


def _euclidean(a: Sequence[float], b: Sequence[float]) -> float:
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


def standardize(vectors: Sequence[Sequence[float]]
                ) -> List[Tuple[float, ...]]:
    """Z-score each feature dimension (zero-variance dims pass through)."""
    if not vectors:
        return []
    dims = len(vectors[0])
    means = [sum(v[d] for v in vectors) / len(vectors)
             for d in range(dims)]
    stds = []
    for d in range(dims):
        variance = sum((v[d] - means[d]) ** 2 for v in vectors) \
            / len(vectors)
        stds.append(math.sqrt(variance) or 1.0)
    return [tuple((v[d] - means[d]) / stds[d] for d in range(dims))
            for v in vectors]


def k_medoids(items: Sequence,
              k: int,
              distance: Callable[[object, object], float] = _euclidean,
              max_iterations: int = 50,
              seed: int = 0) -> Tuple[List[int], List[int]]:
    """PAM-style k-medoids clustering.

    Args:
        items: the objects to cluster (vectors, sequences, ...).
        k: number of clusters.
        distance: pairwise distance function.
        max_iterations: swap-phase iteration cap.
        seed: RNG seed for the initial medoids.

    Returns:
        ``(assignments, medoid_indices)`` where ``assignments[i]`` is
        the cluster index of ``items[i]``.

    Raises:
        ValueError: when ``k`` exceeds the item count or is < 1.
    """
    if not 1 <= k <= len(items):
        raise ValueError("k must lie in [1, len(items)]")
    rng = random.Random(seed)
    size = len(items)
    # Distance cache — PAM probes pairs repeatedly.
    cache: dict = {}

    def dist(i: int, j: int) -> float:
        if i == j:
            return 0.0
        key = (i, j) if i < j else (j, i)
        value = cache.get(key)
        if value is None:
            value = distance(items[key[0]], items[key[1]])
            cache[key] = value
        return value

    medoids = rng.sample(range(size), k)

    def assign() -> List[int]:
        return [min(range(k), key=lambda c: dist(i, medoids[c]))
                for i in range(size)]

    def total_cost(assignment: List[int]) -> float:
        return sum(dist(i, medoids[assignment[i]]) for i in range(size))

    assignment = assign()
    cost = total_cost(assignment)
    for _ in range(max_iterations):
        improved = False
        for cluster in range(k):
            members = [i for i in range(size)
                       if assignment[i] == cluster]
            for candidate in members:
                if candidate == medoids[cluster]:
                    continue
                old = medoids[cluster]
                medoids[cluster] = candidate
                new_assignment = assign()
                new_cost = total_cost(new_assignment)
                if new_cost < cost - 1e-12:
                    cost = new_cost
                    assignment = new_assignment
                    improved = True
                else:
                    medoids[cluster] = old
        if not improved:
            break
    return assignment, medoids


def cluster_summary(features: Sequence[VisitFeatures],
                    assignment: Sequence[int],
                    k: int) -> List[dict]:
    """Mean raw features per cluster — the interpretable profile card."""
    summaries = []
    for cluster in range(k):
        members = [f for f, a in zip(features, assignment)
                   if a == cluster]
        if not members:
            summaries.append({"size": 0})
            continue
        summaries.append({
            "size": len(members),
            "mean_duration": sum(f.duration for f in members)
            / len(members),
            "mean_cells": sum(f.cell_count for f in members)
            / len(members),
            "mean_dwell": sum(f.mean_dwell for f in members)
            / len(members),
            "mean_floor_switches": sum(f.floor_switches for f in members)
            / len(members),
        })
    return summaries
