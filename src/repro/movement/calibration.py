"""Movement calibration shared by every synthetic corpus generator.

The Louvre dataset generator of :mod:`repro.louvre.dataset` originally
hardcoded its walk tuning — the revisit penalty, the chance a visit
starts at the entrance, the transit-time band between zones, the
dead-end retry budget.  Those numbers are not Louvre facts; they are
*movement* facts (museum visitors rarely loop, walking between rooms
takes tens of seconds), so they live here and parameterise both the
Louvre generator and the parametric venue crowds of
:mod:`repro.synth.crowd`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MovementCalibration:
    """Tuning of a profile-driven walk through a venue.

    Attributes:
        revisit_penalty: multiplicative weight on already-visited
            successors (0 forbids revisits, 1 is an unbiased walk).
        entrance_start_probability: chance a visit starts at a
            designated entrance instead of a random interior cell
            (coverage gaps mean the first detection is not always at
            the door).
        transit_min_s / transit_max_s: uniform band of seconds spent
            walking between two detected cells.
        normal_dwell_cap_s: cap on ordinary per-cell dwell times, so
            a lognormal tail sample cannot dominate a visit.
        dead_end_retries: attempts to step away from exit/dead-end
            cells before the walker teleports (re-appears elsewhere,
            as sparse real data does).
    """

    revisit_penalty: float = 0.25
    entrance_start_probability: float = 0.8
    transit_min_s: float = 20.0
    transit_max_s: float = 90.0
    normal_dwell_cap_s: float = 3600.0
    dead_end_retries: int = 6

    def __post_init__(self) -> None:
        if not 0.0 <= self.revisit_penalty <= 1.0:
            raise ValueError("revisit_penalty must lie in [0, 1]")
        if not 0.0 <= self.entrance_start_probability <= 1.0:
            raise ValueError(
                "entrance_start_probability must lie in [0, 1]")
        if self.transit_min_s < 0 or self.transit_max_s \
                < self.transit_min_s:
            raise ValueError("transit band must satisfy 0 <= min <= max")
        if self.normal_dwell_cap_s <= 0:
            raise ValueError("normal_dwell_cap_s must be positive")
        if self.dead_end_retries < 1:
            raise ValueError("dead_end_retries must be >= 1")


#: The calibration the Louvre corpus has always used (the values that
#: were hardcoded in ``LouvreDatasetGenerator`` before extraction).
LOUVRE_CALIBRATION = MovementCalibration()
