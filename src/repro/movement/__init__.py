"""Synthetic moving objects.

Since the paper's proprietary visitor data cannot be redistributed, the
library simulates moving objects at two fidelities:

* **symbolic** — random walks over an accessibility NRG with dwell
  times (:mod:`repro.movement.walker`), which is what the headline
  Louvre dataset generator uses;
* **geometric** — agents following waypoints through the floorplan
  polygon space (:mod:`repro.movement.agents`), which feeds the full
  positioning pipeline (beacons → RSSI → trilateration → EKF → zones).

Visitor *styles* follow the museum-visitor typology popularised by the
Louvre studies of Yoshimura et al. (reference [27] of the paper):
ant, fish, grasshopper, butterfly (:mod:`repro.movement.profiles`).
"""

from repro.movement.profiles import VisitorProfile, PROFILES
from repro.movement.walker import GraphWalker, WalkStep
from repro.movement.agents import GeometricAgent, WaypointPath
from repro.movement.calibration import (
    MovementCalibration,
    LOUVRE_CALIBRATION,
)

__all__ = [
    "VisitorProfile",
    "PROFILES",
    "GraphWalker",
    "WalkStep",
    "GeometricAgent",
    "WaypointPath",
    "MovementCalibration",
    "LOUVRE_CALIBRATION",
]
