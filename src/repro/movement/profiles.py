"""Visitor style profiles (the ant/fish/grasshopper/butterfly typology).

Museum studies — including the Louvre Bluetooth study the paper cites
as [27] — classify visitors by movement style:

* **ant** — follows the curatorial path closely, long visits, stops at
  most exhibits;
* **fish** — glides through the middle of rooms, few stops, moderate
  visit length;
* **grasshopper** — long stops at a few chosen exhibits, skips the
  rest;
* **butterfly** — wanders without a fixed route, many medium stops.

Profiles parameterise the synthetic walkers: number of zones visited,
dwell-time distribution, and the probability of actually keeping the
app running (detection sparsity).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class VisitorProfile:
    """Distribution parameters for one visitor style.

    Attributes:
        name: profile name.
        mean_zone_count: mean number of zone detections per visit.
        dwell_median: median dwell per zone, seconds.
        dwell_sigma: lognormal sigma of dwell times.
        detection_probability: chance a traversed zone is actually
            detected (app running, coverage available) — drives the
            dataset's sparsity and therefore the Figure 6 inference
            opportunities.
        weight: prevalence of this profile in the population.
    """

    name: str
    mean_zone_count: float
    dwell_median: float
    dwell_sigma: float
    detection_probability: float
    weight: float

    def sample_zone_count(self, rng: random.Random) -> int:
        """Number of detections for one visit (geometric-ish, >= 1)."""
        # Geometric distribution with the profile's mean: p = 1/mean.
        p = 1.0 / max(1.0, self.mean_zone_count)
        count = 1
        while rng.random() > p and count < 60:
            count += 1
        return count

    def sample_dwell(self, rng: random.Random) -> float:
        """Dwell time for one zone visit (lognormal, seconds)."""
        return rng.lognormvariate(_ln(self.dwell_median), self.dwell_sigma)


def _ln(x: float) -> float:
    import math
    return math.log(x)


#: The four canonical profiles.  Weights sum to 1.
PROFILES: Dict[str, VisitorProfile] = {
    "ant": VisitorProfile(
        name="ant", mean_zone_count=7.0, dwell_median=540.0,
        dwell_sigma=0.7, detection_probability=0.85, weight=0.22),
    "fish": VisitorProfile(
        name="fish", mean_zone_count=4.5, dwell_median=240.0,
        dwell_sigma=0.6, detection_probability=0.75, weight=0.33),
    "grasshopper": VisitorProfile(
        name="grasshopper", mean_zone_count=2.8, dwell_median=900.0,
        dwell_sigma=0.8, detection_probability=0.65, weight=0.25),
    "butterfly": VisitorProfile(
        name="butterfly", mean_zone_count=5.5, dwell_median=360.0,
        dwell_sigma=0.9, detection_probability=0.70, weight=0.20),
}


def choose_profile(rng: random.Random) -> VisitorProfile:
    """Draw a profile according to the population weights."""
    roll = rng.random()
    cumulative = 0.0
    profiles: Tuple[VisitorProfile, ...] = tuple(PROFILES.values())
    for profile in profiles:
        cumulative += profile.weight
        if roll <= cumulative:
            return profile
    return profiles[-1]
