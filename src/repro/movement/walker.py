"""Symbolic random walks over an accessibility NRG.

The walker produces the symbolic movement that the Louvre dataset
generator turns into zone detections: a biased random walk over the
directed accessibility graph, with per-zone dwell times drawn from a
visitor profile and a revisit-avoidance bias (museum visitors rarely
loop through already-seen themes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.indoor.nrg import NodeRelationGraph
from repro.movement.profiles import VisitorProfile


@dataclass(frozen=True)
class WalkStep:
    """One step of a symbolic walk: a state and the dwell spent in it."""

    state: str
    dwell: float


class GraphWalker:
    """Biased random walk over a directed accessibility NRG.

    Args:
        nrg: the graph to walk.
        rng: deterministic random source.
        revisit_penalty: multiplicative weight applied to already
            visited successors (0 forbids revisits entirely, 1 is an
            unbiased walk).
        attraction_key: optional node attribute (cell attribute name)
            whose numeric value multiplies a successor's selection
            weight — used to make popular zones (Mona Lisa!) actually
            popular in the synthetic corpus.
        attractions: optional explicit weight mapping overriding the
            attribute lookup.
    """

    def __init__(self, nrg: NodeRelationGraph, rng: random.Random,
                 revisit_penalty: float = 0.25,
                 attractions: Optional[dict] = None) -> None:
        if not 0.0 <= revisit_penalty <= 1.0:
            raise ValueError("revisit_penalty must lie in [0, 1]")
        self.nrg = nrg
        self.rng = rng
        self.revisit_penalty = revisit_penalty
        self.attractions = attractions or {}

    def next_state(self, current: str,
                   visited: Sequence[str]) -> Optional[str]:
        """Draw the next state, or ``None`` at a dead end."""
        successors = self.nrg.successors(current)
        if not successors:
            return None
        weights: List[float] = []
        for candidate in successors:
            weight = float(self.attractions.get(candidate, 1.0))
            if candidate in visited:
                weight *= self.revisit_penalty
            weights.append(weight)
        total = sum(weights)
        if total <= 0:
            return self.rng.choice(successors)
        roll = self.rng.random() * total
        cumulative = 0.0
        for candidate, weight in zip(successors, weights):
            cumulative += weight
            if roll <= cumulative:
                return candidate
        return successors[-1]

    def walk(self, start: str, steps: int,
             profile: VisitorProfile) -> List[WalkStep]:
        """Walk ``steps`` states starting (and dwelling) at ``start``.

        The walk stops early at dead ends.  Dwell times come from the
        profile's lognormal distribution.
        """
        if start not in self.nrg:
            raise KeyError("unknown start state {!r}".format(start))
        if steps < 1:
            raise ValueError("a walk needs at least one step")
        path: List[WalkStep] = [WalkStep(
            start, profile.sample_dwell(self.rng))]
        visited = [start]
        current = start
        while len(path) < steps:
            nxt = self.next_state(current, visited)
            if nxt is None:
                break
            path.append(WalkStep(nxt, profile.sample_dwell(self.rng)))
            visited.append(nxt)
            current = nxt
        return path

    def walk_towards(self, start: str, goal: str,
                     profile: VisitorProfile) -> List[WalkStep]:
        """Walk the shortest path from ``start`` to ``goal`` with dwells.

        Used for goal-driven sub-walks (e.g. heading to an exit zone at
        the end of a visit).

        Raises:
            ValueError: when the goal is unreachable.
        """
        path = self.nrg.shortest_path(start, goal)
        if path is None:
            raise ValueError("{!r} is unreachable from {!r}".format(
                goal, start))
        return [WalkStep(state, profile.sample_dwell(self.rng))
                for state in path]
