"""Geometric agents walking through the floorplan polygon space.

These agents feed the full positioning pipeline: an agent's ground-truth
track is sampled at a fixed rate, the RSSI channel observes each sample,
trilateration and filtering estimate positions, and the
:class:`~repro.positioning.detection.ZoneDetector` aggregates the
estimates into zone detections — exercising the same code path the
Louvre app's data went through (Section 4.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Sequence

from repro.spatial.geometry import Point, Vector


@dataclass(frozen=True)
class WaypointPath:
    """A piecewise-linear ground-truth route with per-waypoint dwells.

    Attributes:
        waypoints: route vertices (e.g. zone/room representative points).
        dwells: seconds spent stationary at each waypoint; must be
            parallel to ``waypoints``.
        floor: the floor the route lies on (single-floor routes; floor
            changes are modelled as separate paths).
    """

    waypoints: Sequence[Point]
    dwells: Sequence[float]
    floor: int = 0

    def __post_init__(self) -> None:
        if len(self.waypoints) != len(self.dwells):
            raise ValueError("waypoints and dwells must be parallel")
        if not self.waypoints:
            raise ValueError("a path needs at least one waypoint")


@dataclass(frozen=True)
class TrackSample:
    """One ground-truth sample of an agent's movement."""

    t: float
    position: Point
    floor: int


class GeometricAgent:
    """Simulates a pedestrian following a waypoint path.

    Args:
        path: the route.
        speed: walking speed in m/s (museum stroll ≈ 0.8).
        jitter: lateral Gaussian position noise (gait wobble), metres.
        rng: deterministic random source.
    """

    def __init__(self, path: WaypointPath, speed: float = 0.8,
                 jitter: float = 0.15,
                 rng: random.Random = None) -> None:
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.path = path
        self.speed = speed
        self.jitter = jitter
        self.rng = rng or random.Random(0)

    def duration(self) -> float:
        """Total route duration: walking time plus dwells."""
        walking = 0.0
        waypoints = self.path.waypoints
        for a, b in zip(waypoints, waypoints[1:]):
            walking += a.distance_to(b) / self.speed
        return walking + sum(self.path.dwells)

    def track(self, t_start: float,
              sample_interval: float = 1.0) -> List[TrackSample]:
        """Ground-truth samples at a fixed interval.

        The agent dwells at each waypoint for its dwell time, then walks
        to the next at constant speed.  Positions carry small lateral
        jitter.
        """
        if sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        samples: List[TrackSample] = []
        t = t_start
        waypoints = list(self.path.waypoints)
        for index, waypoint in enumerate(waypoints):
            dwell_end = t + self.path.dwells[index]
            while t < dwell_end:
                samples.append(self._sample(t, waypoint))
                t += sample_interval
            if index + 1 < len(waypoints):
                target = waypoints[index + 1]
                distance = waypoint.distance_to(target)
                travel_time = distance / self.speed
                arrival = t + travel_time
                while t < arrival:
                    fraction = 1.0 - (arrival - t) / travel_time
                    position = Point(
                        waypoint.x + (target.x - waypoint.x) * fraction,
                        waypoint.y + (target.y - waypoint.y) * fraction)
                    samples.append(self._sample(t, position))
                    t += sample_interval
        samples.append(self._sample(t, waypoints[-1]))
        return samples

    def _sample(self, t: float, position: Point) -> TrackSample:
        noisy = Point(position.x + self.rng.gauss(0.0, self.jitter),
                      position.y + self.rng.gauss(0.0, self.jitter))
        return TrackSample(t, noisy, self.path.floor)
