"""The Louvre's layered indoor graph — the Figure 2 instantiation.

Section 4.2: "Layer 4 is instantiated as the whole 'Louvre Museum',
Layer 3 as its three wings ... as well as the 'Napoleon' area ...,
Layer 2 as a wing's five different floors, Layer 1 as a floor's rooms
and halls, and Layer 0 as a room's exhibits.  In addition, we add a
semantic layer that happens to fall right between Layer 2 and Layer 1,
representing the thematic zones of our dataset."

:class:`LouvreSpace` assembles all six layers with their directed
accessibility NRGs, the contains/covers joint edges of the core
hierarchy, the thematic-zone layer's joint edges to floors and rooms,
and exposes ready-made :class:`~repro.indoor.hierarchy.LayerHierarchy`
objects plus the 30-zone dataset NRG of Figure 6.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.indoor.cells import BoundaryKind, CellBoundary, CellSpace
from repro.indoor.dual import derive_accessibility_nrg
from repro.indoor.hierarchy import LayerHierarchy, LayerRole
from repro.indoor.multilayer import JointEdge, LayeredIndoorGraph
from repro.indoor.nrg import NodeRelationGraph
from repro.louvre.floorplan import (
    LouvreFloorplan,
    floor_cell_id,
    wing_cell_id,
)
from repro.louvre.zones import (
    DATASET_ZONE_IDS,
    WING_FLOORS,
    WINGS,
    ZONES,
    zone_accessibility_edges,
)
from repro.spatial.topology import TopologicalRelation, relate

def _accessibility_layer(space: CellSpace) -> NodeRelationGraph:
    """Derive a layer NRG named after its cell space.

    :func:`derive_accessibility_nrg` suffixes the graph name with
    ``:accessibility``; layer names must match the space name so that
    lookups like ``graph.space("rooms")`` work.
    """
    nrg = derive_accessibility_nrg(space)
    nrg.name = space.name
    return nrg


#: Boundary kind strings of the zone edge list → BoundaryKind.
_KINDS = {
    "opening": BoundaryKind.OPENING,
    "checkpoint": BoundaryKind.CHECKPOINT,
    "staircase": BoundaryKind.STAIRCASE,
    "door": BoundaryKind.DOOR,
}


class LouvreSpace:
    """Builds and holds the full Louvre layered indoor graph.

    Attributes:
        floorplan: the underlying synthetic geometry.
        graph: the :class:`LayeredIndoorGraph` with six layers
            (``louvre-museum``, ``wings``, ``floors``, ``zones``,
            ``rooms``, ``rois``).
        core_hierarchy: the Figure 2 five-layer hierarchy
            BuildingComplex → Building → Floor → Room → RoI.
        zone_hierarchy: the two-layer Floor → ThematicZone hierarchy
            used to lift zone-level data to floors/wings.
    """

    def __init__(self, floorplan: Optional[LouvreFloorplan] = None) -> None:
        self.floorplan = floorplan or LouvreFloorplan()
        self.graph = LayeredIndoorGraph("louvre")
        self._build_layers()
        self._build_core_hierarchy_edges()
        self._build_zone_layer_edges()
        self.core_hierarchy = LayerHierarchy(
            self.graph,
            ["louvre-museum", "wings", "floors", "rooms", "rois"],
            roles=[LayerRole.BUILDING_COMPLEX, LayerRole.BUILDING,
                   LayerRole.FLOOR, LayerRole.ROOM, LayerRole.ROI],
        )
        self.zone_hierarchy = LayerHierarchy(
            self.graph,
            ["floors", "zones"],
            roles=[LayerRole.FLOOR, LayerRole.SEMANTIC],
        )

    # ------------------------------------------------------------------
    # layers
    # ------------------------------------------------------------------
    def _build_layers(self) -> None:
        plan = self.floorplan
        self.graph.add_layer(_accessibility_layer(plan.complex_space),
                             plan.complex_space)
        self.graph.add_layer(_accessibility_layer(plan.wing_space),
                             plan.wing_space)
        self.graph.add_layer(_accessibility_layer(plan.floor_space),
                             plan.floor_space)
        self._zone_nrg = self._build_zone_nrg(plan.zone_space)
        self.graph.add_layer(self._zone_nrg, plan.zone_space)
        self.graph.add_layer(_accessibility_layer(plan.room_space),
                             plan.room_space)
        self.graph.add_layer(_accessibility_layer(plan.roi_space),
                             plan.roi_space)

    @staticmethod
    def _build_zone_nrg(zone_space: CellSpace) -> NodeRelationGraph:
        """The hand-authored zone accessibility NRG (Figure 6)."""
        for src, dst, bidi, kind, boundary_id in zone_accessibility_edges():
            zone_space.add_boundary(CellBoundary(
                boundary_id=boundary_id,
                source=src,
                target=dst,
                kind=_KINDS[kind],
                bidirectional=bidi,
            ))
        return _accessibility_layer(zone_space)

    # ------------------------------------------------------------------
    # joint edges
    # ------------------------------------------------------------------
    def _add_parthood(self, parent_layer: str, parent: str,
                      child_layer: str, child: str,
                      declared: Optional[TopologicalRelation] = None
                      ) -> None:
        """Add a contains/covers joint edge.

        The relation is derived from the 2D footprints unless
        ``declared`` is given.  Declaration is needed where the third
        dimension carries the parthood: a wing's floors share the
        wing's 2D footprint (their projection is ``equal``) but are
        proper parts of the wing's 3D volume, so their joint edges are
        declared ``covers``.
        """
        if declared is None:
            parent_cell = self.graph.space(parent_layer).cell(parent)
            child_cell = self.graph.space(child_layer).cell(child)
            relation = relate(parent_cell.geometry, child_cell.geometry)
            if relation not in (TopologicalRelation.CONTAINS,
                                TopologicalRelation.COVERS):
                raise ValueError(
                    "{} does not contain/cover {} (got {})".format(
                        parent, child, relation.value))
        else:
            relation = declared
        self.graph.add_joint_edge(JointEdge(
            parent_layer, parent, child_layer, child, relation))

    def _build_core_hierarchy_edges(self) -> None:
        plan = self.floorplan
        for wing in WINGS:
            self._add_parthood("louvre-museum", "louvre",
                               "wings", wing_cell_id(wing))
            for floor in WING_FLOORS[wing]:
                self._add_parthood(
                    "wings", wing_cell_id(wing),
                    "floors", floor_cell_id(wing, floor),
                    declared=TopologicalRelation.COVERS)
        for spec in ZONES:
            parent_floor = floor_cell_id(spec.wing, spec.floor)
            for room_id in plan.rooms_of_zone(spec.zone_id):
                self._add_parthood("floors", parent_floor,
                                   "rooms", room_id)
                for roi_id in plan.rois_of_room(room_id):
                    self._add_parthood("rooms", room_id, "rois", roi_id)

    def _build_zone_layer_edges(self) -> None:
        """Link the semantic zone layer to floors and rooms.

        Floors cover their zone strips (hierarchy edges for
        ``zone_hierarchy``); zones cover/contain their rooms — extra
        semantic joint edges outside any hierarchy, which is legal in
        the MLSM.
        """
        plan = self.floorplan
        zones_per_floor: Dict[Tuple[str, int], int] = {}
        for spec in ZONES:
            key = (spec.wing, spec.floor)
            zones_per_floor[key] = zones_per_floor.get(key, 0) + 1
        for spec in ZONES:
            # A floor with a single zone makes the synthetic strip
            # coincide with the floor footprint (2D 'equal'); the real
            # zone excludes service areas the idealised strip does not,
            # so the parthood is declared.
            declared = (TopologicalRelation.COVERS
                        if zones_per_floor[(spec.wing, spec.floor)] == 1
                        else None)
            self._add_parthood("floors",
                               floor_cell_id(spec.wing, spec.floor),
                               "zones", spec.zone_id, declared=declared)
            for room_id in plan.rooms_of_zone(spec.zone_id):
                self._add_parthood("zones", spec.zone_id,
                                   "rooms", room_id)

    # ------------------------------------------------------------------
    # derived graphs and lookups
    # ------------------------------------------------------------------
    @property
    def zone_nrg(self) -> NodeRelationGraph:
        """The full 52-zone accessibility NRG."""
        return self._zone_nrg

    def dataset_zone_nrg(self) -> NodeRelationGraph:
        """The 30-zone subgraph present in the dataset (Figure 6)."""
        return self._zone_nrg.subgraph(DATASET_ZONE_IDS)

    def zone_of_room(self, room_id: str) -> str:
        """The thematic zone a room belongs to."""
        return str(self.graph.space("rooms").cell(room_id)
                   .attribute("zone"))

    def wing_of_zone(self, zone_id: str) -> str:
        """The wing cell id of a zone."""
        wing = str(self.graph.space("zones").cell(zone_id)
                   .attribute("wing"))
        return wing_cell_id(wing)

    def floor_of_zone(self, zone_id: str) -> str:
        """The floor cell id of a zone (via the zone hierarchy)."""
        parent = self.zone_hierarchy.parent(zone_id)
        if parent is None:
            raise KeyError("zone {!r} has no floor parent".format(zone_id))
        return parent

    def zone_attractions(self) -> Dict[str, float]:
        """Zone popularity weights for the synthetic walker."""
        weights: Dict[str, float] = {}
        for spec in ZONES:
            weights[spec.zone_id] = float(
                spec.attributes.get("popularity", 1.0))
        return weights

    def exit_zones(self) -> List[str]:
        """Zones flagged as museum exits (Section 4.2's 'exit zones')."""
        return [spec.zone_id for spec in ZONES
                if spec.attributes.get("exit")]

    def entrance_zones(self) -> List[str]:
        """Zones flagged as entrances."""
        return [spec.zone_id for spec in ZONES
                if spec.attributes.get("entrance")]

    def summary(self) -> Dict[str, int]:
        """Node/edge counts per layer — the Figure 2 size card."""
        stats: Dict[str, int] = {}
        for layer_name in self.graph.layer_names:
            layer = self.graph.layer(layer_name)
            stats[layer_name + ":nodes"] = len(layer)
            stats[layer_name + ":edges"] = layer.transition_count()
        stats["joint_edges"] = self.graph.joint_edge_count
        return stats
