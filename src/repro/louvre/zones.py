"""The Louvre's 52 thematic zones and their accessibility topology.

Section 4.1: "raw geometric positions have already been spatially
aggregated into 52 non-overlapping zones.  Each zone corresponds to a
large polygonal area of the museum ... specified by the museum
administration in such a way so as to reflect a single exhibition theme
(e.g. Italian paintings) but also only extend within a single floor."

The real zone list is proprietary; this module reconstructs a faithful
synthetic one (the DESIGN.md substitution):

* exactly **52** zones, each within a single (area, floor);
* exactly **11** zones on the ground floor (Figure 3's choropleth);
* exactly **30** zones flagged as present in the dataset (Figure 6);
* the floor −2 zones of the paper's worked examples with their paper
  ids: 60887 (**E**, temporary exhibition, separate ticket), 60888
  (**P**, Carrousel passage/cloakroom), 60890 (**S**, souvenir shops),
  60891 (**C**, Carrousel exit), and the chain E→P→S→C (Figures 5/6);
* zones 60853/60854 on Denon +1 hosting the RoIs of Figure 4 (60853 is
  the Salle des États / Mona Lisa zone).

The accessibility topology (:func:`zone_accessibility_edges`) plays the
role of the hand-extracted Figure 6 graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

#: The four top-level areas.  The paper treats each wing "as a separate
#: building because its spaces and usage are practically equivalent to
#: that of a typical building" (Section 4.2); the Napoleon area (under
#: the Pyramide) is the fourth.
WINGS: Tuple[str, ...] = ("richelieu", "sully", "denon", "napoleon")

#: Floors per area.  The three wings span −2..+2 ("a wing's five
#: different floors" — Section 4.2); the Napoleon area exists on the
#: lower levels only.
WING_FLOORS: Dict[str, Tuple[int, ...]] = {
    "richelieu": (-2, -1, 0, 1, 2),
    "sully": (-2, -1, 0, 1, 2),
    "denon": (-2, -1, 0, 1, 2),
    "napoleon": (-2, -1, 0),
}


@dataclass(frozen=True)
class ZoneSpec:
    """Static description of one thematic zone.

    Attributes:
        zone_id: the dataset-style identifier (``zone60853``).
        wing: the area the zone belongs to.
        floor: the single floor the zone extends within.
        theme: the exhibition theme.
        in_dataset: whether the zone appears in the visit dataset
            (30 of the 52 do).
        room_count: how many rooms the synthetic floorplan divides the
            zone into.
        attributes: semantic attributes (exit zone, separate ticket,
            shops, popularity weight for the walker, figure letter).
    """

    zone_id: str
    wing: str
    floor: int
    theme: str
    in_dataset: bool = True
    room_count: int = 4
    attributes: Mapping[str, object] = field(default_factory=dict)


def _zone(number: int, wing: str, floor: int, theme: str,
          in_dataset: bool = True, room_count: int = 4,
          **attributes: object) -> ZoneSpec:
    return ZoneSpec("zone{}".format(number), wing, floor, theme,
                    in_dataset, room_count, attributes)


#: All 52 zones.  Order within one (wing, floor) is the geometric strip
#: order used by the floorplan.
ZONES: Tuple[ZoneSpec, ...] = (
    # ---- floor -2 (8 zones) -------------------------------------------
    _zone(60886, "napoleon", -2, "Hall Napoléon (Pyramid entrance)",
          room_count=3, entrance=True, popularity=3.0),
    _zone(60887, "napoleon", -2, "Temporary Exhibition",
          room_count=4, letter="E", requires_separate_ticket=True,
          popularity=1.5),
    _zone(60888, "napoleon", -2, "Carrousel Passage & Cloakroom",
          room_count=3, letter="P", service=True, popularity=1.0),
    _zone(60890, "napoleon", -2, "Carrousel Souvenir Shops",
          room_count=4, letter="S", shops=True, popularity=1.8),
    _zone(60891, "napoleon", -2, "Carrousel Exit",
          room_count=2, letter="C", exit=True, popularity=1.0),
    _zone(60842, "richelieu", -2, "Richelieu Lower Galleries",
          in_dataset=False, room_count=4),
    _zone(60843, "sully", -2, "Medieval Louvre (Moat)",
          in_dataset=False, room_count=5),
    _zone(60844, "denon", -2, "Denon Lower Access",
          in_dataset=False, room_count=3),
    # ---- floor -1 (10 zones) ------------------------------------------
    _zone(60845, "richelieu", -1, "Islamic Art", room_count=5,
          popularity=1.4),
    _zone(60846, "richelieu", -1, "French Sculpture (Cour Marly)",
          room_count=4, popularity=1.3),
    _zone(60847, "richelieu", -1, "Richelieu Mezzanine",
          in_dataset=False, room_count=3),
    _zone(60848, "sully", -1, "Ancient Egypt (Crypt)", room_count=5,
          popularity=1.6),
    _zone(60849, "sully", -1, "Sully Mezzanine", in_dataset=False,
          room_count=3),
    _zone(60850, "sully", -1, "Greek Antiquities (Pre-Classical)",
          in_dataset=False, room_count=4),
    _zone(60851, "denon", -1, "Italian Sculpture (Donatello Gallery)",
          room_count=4, popularity=1.3),
    _zone(60852, "denon", -1, "Spanish Painting (Lower)",
          in_dataset=False, room_count=3),
    _zone(60855, "denon", -1, "Arts of Africa, Asia, Oceania, Americas",
          in_dataset=False, room_count=5),
    _zone(60856, "napoleon", -1, "Napoleon Mezzanine Services",
          in_dataset=False, room_count=2),
    # ---- floor 0 (11 zones, all in the dataset — Figure 3) ------------
    _zone(60857, "richelieu", 0, "French Sculpture (Cour Puget)",
          room_count=4, popularity=1.3),
    _zone(60858, "richelieu", 0, "Mesopotamia (Cour Khorsabad)",
          room_count=4, popularity=1.4),
    _zone(60859, "richelieu", 0, "Near Eastern Antiquities",
          room_count=5, popularity=1.1),
    _zone(60860, "sully", 0, "Ancient Egypt (Sphinx Crypt)",
          room_count=5, popularity=1.7),
    _zone(60861, "sully", 0, "Greek Antiquities (Venus de Milo)",
          room_count=4, popularity=2.2),
    _zone(60862, "sully", 0, "Ancient Iran", room_count=4,
          popularity=1.0),
    _zone(60863, "denon", 0, "Etruscan & Roman Antiquities",
          room_count=4, popularity=1.3),
    _zone(60864, "denon", 0, "Greek Antiquities (Caryatides)",
          room_count=4, popularity=1.5),
    _zone(60865, "denon", 0, "Italian Sculpture (Michelangelo Gallery)",
          room_count=4, popularity=1.6),
    _zone(60866, "denon", 0, "Denon Entrance Hall", room_count=3,
          entrance=True, popularity=1.2),
    _zone(60867, "napoleon", 0, "Pyramid Mezzanine (Groups)",
          room_count=2, entrance=True, popularity=1.1),
    # ---- floor +1 (12 zones) ------------------------------------------
    _zone(60868, "denon", 1, "French Painting (Large Formats)",
          room_count=4, popularity=1.8),
    _zone(60853, "denon", 1, "Italian Painting (Salle des États)",
          room_count=3, popularity=4.0, mona_lisa=True),
    _zone(60854, "denon", 1, "Italian Painting (Grande Galerie)",
          room_count=6, popularity=2.5),
    _zone(60869, "denon", 1, "Apollo Gallery", room_count=3,
          popularity=1.7),
    _zone(60870, "denon", 1, "Denon Balcony", in_dataset=False,
          room_count=2),
    _zone(60871, "richelieu", 1, "Decorative Arts", room_count=5,
          popularity=1.1),
    _zone(60872, "richelieu", 1, "Napoleon III Apartments",
          room_count=4, popularity=1.5),
    _zone(60873, "richelieu", 1, "Richelieu Painting Mezzanine",
          in_dataset=False, room_count=3),
    _zone(60874, "sully", 1, "Ancient Egypt (Upper)", room_count=5,
          popularity=1.4),
    _zone(60875, "sully", 1, "Greek Ceramics (Campana Gallery)",
          in_dataset=False, room_count=4),
    _zone(60876, "sully", 1, "Objets d'Art (Sully)", in_dataset=False,
          room_count=4),
    _zone(60877, "sully", 1, "Sully East Galleries", in_dataset=False,
          room_count=4),
    # ---- floor +2 (11 zones) ------------------------------------------
    _zone(60878, "richelieu", 2, "Flemish & Dutch Painting (Rubens)",
          room_count=5, popularity=1.3),
    _zone(60879, "richelieu", 2, "German Painting", in_dataset=False,
          room_count=3),
    _zone(60880, "richelieu", 2, "French Painting (17th c.)",
          room_count=5, popularity=1.2),
    _zone(60881, "richelieu", 2, "Northern Schools Cabinet",
          in_dataset=False, room_count=3),
    _zone(60882, "sully", 2, "French Painting (18th–19th c.)",
          room_count=5, popularity=1.3),
    _zone(60883, "sully", 2, "Pastels Gallery", in_dataset=False,
          room_count=3),
    _zone(60884, "sully", 2, "Sully Attic Galleries", in_dataset=False,
          room_count=4),
    _zone(60885, "sully", 2, "Prints & Drawings", in_dataset=False,
          room_count=3),
    _zone(60889, "denon", 2, "Denon Upper Mezzanine", in_dataset=False,
          room_count=3),
    _zone(60892, "denon", 2, "Denon Study Gallery", in_dataset=False,
          room_count=3),
    _zone(60893, "denon", 2, "Denon Tribune", in_dataset=False,
          room_count=2),
)

#: Zone specs by id.
ZONES_BY_ID: Dict[str, ZoneSpec] = {z.zone_id: z for z in ZONES}

#: The 30 zones present in the visit dataset (Section 4.2 / Figure 6).
DATASET_ZONE_IDS: Tuple[str, ...] = tuple(
    z.zone_id for z in ZONES if z.in_dataset)

#: The 11 ground-floor zones of the Figure 3 choropleth.
GROUND_FLOOR_ZONE_IDS: Tuple[str, ...] = tuple(
    z.zone_id for z in ZONES if z.floor == 0)

#: The paper's named floor −2 zones.
ZONE_E = "zone60887"
ZONE_P = "zone60888"
ZONE_S = "zone60890"
ZONE_C = "zone60891"
ZONE_ENTRANCE = "zone60886"

#: The Salle des États / Grande Galerie zones of Figure 4.
ZONE_SALLE_DES_ETATS = "zone60853"
ZONE_GRANDE_GALERIE = "zone60854"


def _e(a: int, b: int, bidirectional: bool = True,
       kind: str = "opening",
       boundary_id: str = "") -> Tuple[str, str, bool, str, str]:
    return ("zone{}".format(a), "zone{}".format(b), bidirectional, kind,
            boundary_id)


#: Hand-authored zone-level accessibility (the Figure 6 stand-in).
#: Each tuple is (source, target, bidirectional, boundary kind,
#: boundary id — auto-generated when empty).
_ZONE_EDGES: Tuple[Tuple[str, str, bool, str, str], ...] = (
    # --- Napoleon floor −2: the paper's E→P→S→C chain -----------------
    _e(60886, 60887, True, "checkpoint", "checkpoint001"),
    _e(60887, 60888, True, "checkpoint", "checkpoint002"),
    _e(60886, 60888, True, "opening", "opening003"),
    _e(60888, 60890, True, "opening", "opening004"),
    # Leaving through the Carrousel is one-way: no re-entry.
    _e(60890, 60891, False, "checkpoint", "checkpoint005"),
    # --- Hall Napoléon up/out to the wings (escalators) ----------------
    _e(60886, 60845, True, "staircase"),   # → Richelieu −1 (Islamic Art)
    _e(60886, 60848, True, "staircase"),   # → Sully −1 (Egypt crypt)
    _e(60886, 60851, True, "staircase"),   # → Denon −1 (Donatello)
    _e(60886, 60867, True, "staircase"),   # → Pyramid mezzanine (0)
    _e(60886, 60856, True, "opening"),     # Napoleon mezzanine services
    # --- lower-floor odds and ends -------------------------------------
    _e(60842, 60845, True, "staircase"),   # Richelieu −2 ↔ −1
    _e(60843, 60860, True, "staircase"),   # Medieval Louvre ↔ Sphinx crypt
    _e(60843, 60848, True, "opening"),
    _e(60844, 60851, True, "staircase"),   # Denon −2 ↔ −1
    # --- floor −1 intra-wing chains -------------------------------------
    _e(60845, 60846, True, "opening"),
    _e(60846, 60847, True, "opening"),
    _e(60848, 60850, True, "opening"),
    _e(60848, 60849, True, "opening"),
    _e(60851, 60852, True, "opening"),
    _e(60851, 60855, True, "opening"),
    # --- floor −1 ↔ floor 0 stairs --------------------------------------
    _e(60846, 60857, True, "staircase"),   # Cour Marly ↔ Cour Puget
    _e(60845, 60859, True, "staircase"),
    _e(60848, 60860, True, "staircase"),   # Egypt crypt ↔ Sphinx crypt
    _e(60850, 60861, True, "staircase"),   # Greek pre-classical ↔ Venus
    _e(60851, 60865, True, "staircase"),   # Donatello ↔ Michelangelo
    _e(60867, 60866, True, "opening"),     # Pyramid mezz ↔ Denon hall
    # --- floor 0 intra/inter-wing chains --------------------------------
    _e(60857, 60858, True, "opening"),
    _e(60858, 60859, True, "opening"),
    _e(60859, 60862, True, "opening"),     # Richelieu ↔ Sully (NE antiq.)
    _e(60860, 60861, True, "opening"),
    _e(60861, 60862, True, "opening"),
    _e(60861, 60864, True, "opening"),     # Venus ↔ Caryatides
    _e(60863, 60864, True, "opening"),
    _e(60864, 60865, True, "opening"),
    _e(60865, 60866, True, "opening"),
    # --- floor 0 ↔ floor +1 stairs ---------------------------------------
    _e(60864, 60868, True, "staircase"),   # Daru staircase (Samothrace)
    _e(60866, 60869, True, "staircase"),
    _e(60857, 60871, True, "staircase"),
    _e(60861, 60874, True, "staircase"),
    # --- floor +1: Denon painting circuit --------------------------------
    _e(60868, 60853, True, "opening"),
    # Entering the Salle des États from the Grande Galerie side is
    # prohibited by museum personnel; exiting that way is allowed
    # (the one-way rule of Figure 1, Section 3.2).
    _e(60853, 60854, False, "checkpoint", "checkpoint042"),
    _e(60854, 60868, True, "opening"),
    _e(60854, 60869, True, "opening"),
    _e(60869, 60870, True, "opening"),
    _e(60871, 60872, True, "opening"),
    _e(60872, 60873, True, "opening"),
    _e(60874, 60875, True, "opening"),
    _e(60875, 60876, True, "opening"),
    _e(60876, 60877, True, "opening"),
    _e(60874, 60877, True, "opening"),
    _e(60871, 60874, True, "opening"),     # Richelieu ↔ Sully link (+1)
    # --- floor +1 ↔ floor +2 stairs --------------------------------------
    _e(60871, 60878, True, "staircase"),
    _e(60872, 60880, True, "staircase"),
    _e(60874, 60882, True, "staircase"),
    _e(60869, 60889, True, "staircase"),
    # --- floor +2 chains --------------------------------------------------
    _e(60878, 60879, True, "opening"),
    _e(60878, 60880, True, "opening"),
    _e(60880, 60881, True, "opening"),
    _e(60880, 60882, True, "opening"),     # Richelieu ↔ Sully (+2)
    _e(60882, 60883, True, "opening"),
    _e(60882, 60884, True, "opening"),
    _e(60884, 60885, True, "opening"),
    _e(60889, 60892, True, "opening"),
    _e(60892, 60893, True, "opening"),
)


def zone_accessibility_edges() -> List[Tuple[str, str, bool, str, str]]:
    """The zone-level boundary list with generated boundary ids.

    Returns tuples ``(source, target, bidirectional, kind,
    boundary_id)``; empty ids are filled with a deterministic
    ``zb-<n>`` scheme.
    """
    edges: List[Tuple[str, str, bool, str, str]] = []
    for index, (src, dst, bidi, kind, bid) in enumerate(_ZONE_EDGES):
        edges.append((src, dst, bidi, kind, bid or "zb-{:03d}".format(index)))
    return edges
