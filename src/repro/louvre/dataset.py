"""Synthetic Louvre visit corpus matching the Section 4.1 statistics.

The real "My Visit to the Louvre" dataset is proprietary.  This module
generates a synthetic corpus whose *published statistics* match the
paper exactly (DESIGN.md substitution):

* 4,945 visits collected 19-01-2017 .. 29-05-2017;
* 3,228 distinct visitors, of whom 1,227 are "returning" visitors who
  made 1,717 second/third visits (737 visitors with two visits and 490
  with three: 737 + 2·490 = 1,717; 3,228 + 1,717 = 4,945);
* 20,245 zone detections and therefore 15,300 intra-visit transitions
  (20,245 − 4,945 — one less transition than detections per visit);
* visit durations from 0 s (potential error) to 7 h 41 m 37 s;
* detection durations from 0 s to 5 h 39 m 20 s;
* around 10 % of detections with zero duration;
* both iPhone and Android app versions.

Movement itself is a popularity-biased random walk over the 30-zone
accessibility NRG with per-profile dwell times and detection sparsity
(the app is not always running), which is what creates the coverage
gaps that Figure 6's inference experiment repairs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.builder import DetectionRecord
from repro.core.timeutil import from_date
from repro.indoor.nrg import NodeRelationGraph
from repro.louvre.space import LouvreSpace
from repro.louvre.zones import ZONE_C, ZONE_ENTRANCE
from repro.movement.calibration import (
    LOUVRE_CALIBRATION,
    MovementCalibration,
)
from repro.movement.profiles import PROFILES, VisitorProfile, choose_profile
from repro.movement.walker import GraphWalker

#: The paper's published corpus statistics (Section 4.1).
PAPER_STATISTICS: Dict[str, object] = {
    "visits": 4945,
    "visitors": 3228,
    "returning_visitors": 1227,
    "repeat_visits": 1717,
    "zone_detections": 20245,
    "zone_transitions": 15300,
    "max_visit_duration_s": 7 * 3600 + 41 * 60 + 37,     # 27697
    "max_detection_duration_s": 5 * 3600 + 39 * 60 + 20,  # 20360
    "min_visit_duration_s": 0,
    "min_detection_duration_s": 0,
    "zero_duration_share": 0.10,
    "collection_start": "19-01-2017",
    "collection_end": "29-05-2017",
    "dataset_zones": 30,
}


@dataclass(frozen=True)
class DatasetParameters:
    """Generator calibration (defaults reproduce the paper's corpus).

    Attributes:
        visitors: distinct visitor count.
        two_visit_visitors: returning visitors with exactly two visits.
        three_visit_visitors: returning visitors with exactly three.
        total_detections: exact corpus-wide zone detection count.
        zero_duration_detections: exact count of zero-duration records
            (the paper says "around 10 %"; 2,025 of 20,245 ≈ 10.0 %).
        collection_days: length of the collection window in days
            (19 Jan .. 29 May 2017 inclusive = 131 days).
        max_visit_duration: the longest visit's exact span (seconds).
        max_detection_duration: the longest single detection (seconds).
        normal_visit_span_cap: soft cap on every other visit's span, so
            the designated maximum stays the maximum.
        normal_dwell_cap: cap on ordinary per-zone dwell times.
        seed: master RNG seed (the corpus start date by default).
    """

    visitors: int = 3228
    two_visit_visitors: int = 737
    three_visit_visitors: int = 490
    total_detections: int = 20245
    zero_duration_detections: int = 2025
    collection_days: int = 131
    max_visit_duration: float = 27697.0
    max_detection_duration: float = 20360.0
    normal_visit_span_cap: float = 25000.0
    normal_dwell_cap: float = 3600.0
    seed: int = 20170119

    @property
    def total_visits(self) -> int:
        """First visits plus repeat visits."""
        return (self.visitors + self.two_visit_visitors
                + 2 * self.three_visit_visitors)

    def scaled(self, factor: float) -> "DatasetParameters":
        """A proportionally smaller corpus (for tests and sweeps)."""
        if not 0 < factor <= 1:
            raise ValueError("factor must lie in (0, 1]")

        def s(value: int) -> int:
            return max(1, int(round(value * factor)))

        return DatasetParameters(
            visitors=s(self.visitors),
            two_visit_visitors=s(self.two_visit_visitors),
            three_visit_visitors=s(self.three_visit_visitors),
            total_detections=s(self.total_detections),
            zero_duration_detections=s(self.zero_duration_detections),
            collection_days=self.collection_days,
            max_visit_duration=self.max_visit_duration,
            max_detection_duration=self.max_detection_duration,
            normal_visit_span_cap=self.normal_visit_span_cap,
            normal_dwell_cap=self.normal_dwell_cap,
            seed=self.seed,
        )


@dataclass
class GeneratedVisit:
    """One generated visit with its metadata."""

    visit_id: str
    visitor_id: str
    device: str
    profile_name: str
    records: List[DetectionRecord] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Visit span: last detection end minus first detection start."""
        if not self.records:
            return 0.0
        return self.records[-1].t_end - self.records[0].t_start


class LouvreDatasetGenerator:
    """Seeded generator of the synthetic visit corpus.

    Args:
        space: the Louvre space model (built on demand when omitted).
        parameters: corpus-shape calibration; defaults match the paper.
        calibration: movement tuning; defaults to the values this
            generator has always used (:data:`LOUVRE_CALIBRATION`).
    """

    def __init__(self, space: Optional[LouvreSpace] = None,
                 parameters: Optional[DatasetParameters] = None,
                 calibration: Optional[MovementCalibration] = None
                 ) -> None:
        self.space = space or LouvreSpace()
        self.parameters = parameters or DatasetParameters()
        self.calibration = calibration or LOUVRE_CALIBRATION
        self.nrg: NodeRelationGraph = self.space.dataset_zone_nrg()
        self._attractions = self.space.zone_attractions()
        self._epoch = from_date(str(
            PAPER_STATISTICS["collection_start"]))

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate(self) -> List[GeneratedVisit]:
        """Generate the full corpus (deterministic for a fixed seed)."""
        params = self.parameters
        rng = random.Random(params.seed)
        plan = self._visit_plan(rng)
        lengths = self._visit_lengths(rng, len(plan),
                                      params.total_detections)
        visits: List[GeneratedVisit] = []
        walker = GraphWalker(
            self.nrg, rng,
            revisit_penalty=self.calibration.revisit_penalty,
            attractions=self._attractions)
        for index, ((visitor_id, device), length) in enumerate(
                zip(plan, lengths)):
            visit = GeneratedVisit(
                visit_id="visit{:05d}".format(index),
                visitor_id=visitor_id,
                device=device,
                profile_name="",
            )
            if index == 0:
                self._craft_extreme_visit(visit)
            else:
                profile = choose_profile(rng)
                visit.profile_name = profile.name
                visit.records = self._walk_visit(
                    rng, walker, visit, profile, length)
            visits.append(visit)
        self._apply_zero_durations(rng, visits)
        return visits

    def detection_records(self,
                          visits: Optional[List[GeneratedVisit]] = None
                          ) -> List[DetectionRecord]:
        """Flatten a corpus into detection records."""
        visits = visits if visits is not None else self.generate()
        records: List[DetectionRecord] = []
        for visit in visits:
            records.extend(visit.records)
        return records

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def _visit_plan(self, rng: random.Random
                    ) -> List[Tuple[str, str]]:
        """The (visitor, device) of every visit, in generation order."""
        params = self.parameters
        visitor_ids = ["visitor{:04d}".format(i)
                       for i in range(params.visitors)]
        devices = {vid: ("iPhone" if rng.random() < 0.55 else "Android")
                   for vid in visitor_ids}
        shuffled = visitor_ids[:]
        rng.shuffle(shuffled)
        three = set(shuffled[:params.three_visit_visitors])
        two = set(shuffled[params.three_visit_visitors:
                           params.three_visit_visitors
                           + params.two_visit_visitors])
        plan: List[Tuple[str, str]] = []
        for visitor_id in visitor_ids:
            count = 3 if visitor_id in three else \
                2 if visitor_id in two else 1
            for _ in range(count):
                plan.append((visitor_id, devices[visitor_id]))
        rng.shuffle(plan)
        return plan

    def _visit_lengths(self, rng: random.Random, visit_count: int,
                       total: int) -> List[int]:
        """Per-visit detection counts summing exactly to ``total``."""
        mean = total / visit_count
        p = 1.0 / mean
        lengths: List[int] = []
        for _ in range(visit_count):
            count = 1
            while rng.random() > p and count < 25:
                count += 1
            lengths.append(count)
        # Exact-total adjustment: nudge random entries until the sum
        # matches, keeping every length >= 1.
        delta = total - sum(lengths)
        while delta != 0:
            index = rng.randrange(visit_count)
            if delta > 0 and lengths[index] < 25:
                lengths[index] += 1
                delta -= 1
            elif delta < 0 and lengths[index] > 1:
                lengths[index] -= 1
                delta += 1
        # Visit 0 is the crafted extreme visit with exactly 3 records;
        # keep the global total exact by moving the difference onto
        # another visit.
        adjustment = lengths[0] - 3
        lengths[0] = 3
        cursor = 1
        while adjustment != 0 and cursor < visit_count:
            if adjustment > 0 and lengths[cursor] < 25:
                step = min(adjustment, 25 - lengths[cursor])
                lengths[cursor] += step
                adjustment -= step
            elif adjustment < 0 and lengths[cursor] > 1:
                step = min(-adjustment, lengths[cursor] - 1)
                lengths[cursor] -= step
                adjustment += step
            cursor += 1
        return lengths

    def _visit_start(self, rng: random.Random) -> float:
        """Arrival timestamp: a day in the window, 09:00–17:00."""
        day = rng.randrange(self.parameters.collection_days)
        seconds = rng.uniform(9 * 3600, 17 * 3600)
        return self._epoch + day * 86400.0 + seconds

    # ------------------------------------------------------------------
    # the extreme visit (corpus maxima)
    # ------------------------------------------------------------------
    def _craft_extreme_visit(self, visit: GeneratedVisit) -> None:
        """Visit 0 carries the corpus maxima exactly.

        Three detections: the longest single detection (5 h 39 m 20 s in
        the temporary exhibition), a shop stop, and a final detection
        placed so the visit span is exactly 7 h 41 m 37 s.
        """
        params = self.parameters
        visit.profile_name = "grasshopper"
        t0 = self._epoch + 9 * 3600.0  # first collection day, 09:00
        d_max = params.max_detection_duration
        span = params.max_visit_duration
        visit.records = [
            DetectionRecord(visit.visitor_id, "zone60887",
                            t0, t0 + d_max,
                            visit_id=visit.visit_id,
                            attributes={"device": visit.device}),
            DetectionRecord(visit.visitor_id, "zone60890",
                            t0 + d_max + 1200.0,
                            t0 + d_max + 4200.0,
                            visit_id=visit.visit_id,
                            attributes={"device": visit.device}),
            DetectionRecord(visit.visitor_id, "zone60891",
                            t0 + span - 600.0, t0 + span,
                            visit_id=visit.visit_id,
                            attributes={"device": visit.device}),
        ]

    # ------------------------------------------------------------------
    # ordinary visits
    # ------------------------------------------------------------------
    def _walk_visit(self, rng: random.Random, walker: GraphWalker,
                    visit: GeneratedVisit, profile: VisitorProfile,
                    detections_needed: int) -> List[DetectionRecord]:
        """Walk the zone graph until enough detections are collected."""
        params = self.parameters
        exit_zones = set(self.space.exit_zones())
        t = self._visit_start(rng)
        deadline = t + params.normal_visit_span_cap
        current = ZONE_ENTRANCE if rng.random() \
            < self.calibration.entrance_start_probability else \
            rng.choice(["zone60866", "zone60867"])
        visited: List[str] = [current]
        records: List[DetectionRecord] = []
        steps = 0
        max_steps = detections_needed * 6 + 10
        while len(records) < detections_needed:
            steps += 1
            force = (max_steps - steps) <= (detections_needed
                                            - len(records))
            dwell = min(profile.sample_dwell(rng), params.normal_dwell_cap,
                        max(30.0, deadline - t))
            if force or rng.random() < profile.detection_probability:
                records.append(DetectionRecord(
                    visit.visitor_id, current, t, t + dwell,
                    visit_id=visit.visit_id,
                    attributes={"device": visit.device}))
            t += dwell + rng.uniform(
                self.calibration.transit_min_s,
                self.calibration.transit_max_s)  # transit to next zone
            if len(records) >= detections_needed:
                break
            nxt = self._next_zone(rng, walker, current, visited,
                                  exit_zones,
                                  detections_needed - len(records))
            visited.append(nxt)
            current = nxt
        return records

    def _next_zone(self, rng: random.Random, walker: GraphWalker,
                   current: str, visited: Sequence[str],
                   exit_zones: set, remaining: int) -> str:
        """Choose the next zone, avoiding dead-end exits too early."""
        for _ in range(self.calibration.dead_end_retries):
            candidate = walker.next_state(current, visited)
            if candidate is None:
                break
            if candidate in exit_zones and remaining > 1:
                continue  # don't get stuck at the one-way exit
            if not self.nrg.successors(candidate) and remaining > 1:
                continue
            return candidate
        # Dead end (or exit-only neighbourhood): the visitor re-appears
        # elsewhere — a coverage gap, as in the real sparse data.
        choices = [z for z in self.nrg.nodes
                   if z not in exit_zones and self.nrg.successors(z)]
        return rng.choice(choices)

    # ------------------------------------------------------------------
    # zero-duration injection
    # ------------------------------------------------------------------
    def _apply_zero_durations(self, rng: random.Random,
                              visits: List[GeneratedVisit]) -> None:
        """Zero out exactly the configured number of detections.

        Visit 0 (the crafted maxima) is protected.  At least one
        single-detection visit is zeroed first so the corpus contains a
        0-second visit, matching the paper's minimum.
        """
        params = self.parameters
        candidates: List[Tuple[int, int]] = []
        singles: List[Tuple[int, int]] = []
        for v_index, visit in enumerate(visits):
            if v_index == 0:
                continue
            for r_index in range(len(visit.records)):
                candidates.append((v_index, r_index))
                if len(visit.records) == 1:
                    singles.append((v_index, r_index))
        target = min(params.zero_duration_detections, len(candidates))
        chosen: List[Tuple[int, int]] = []
        if singles and target > 0:
            chosen.append(singles[0])
        pool = [c for c in candidates if c not in set(chosen)]
        rng.shuffle(pool)
        chosen.extend(pool[:target - len(chosen)])
        for v_index, r_index in chosen:
            record = visits[v_index].records[r_index]
            visits[v_index].records[r_index] = DetectionRecord(
                record.mo_id, record.state, record.t_start,
                record.t_start, record.visit_id, record.attributes)
