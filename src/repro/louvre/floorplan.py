"""Synthetic primal-space geometry of the Louvre.

The real floor plans are proprietary; this module builds a synthetic
2.5D geometry that preserves every property the SITM consumes
(DESIGN.md substitution table):

* four area footprints (Richelieu, Denon, Sully, Napoleon) that meet
  where the real circulation links are;
* one floor cell per (area, floor) — "a 'Floor' object describes a
  single building's floor level" (Section 4.2);
* the 52 thematic zones as strips that **partition** each floor cell
  (full coverage at the zone level);
* rooms that partition each zone (full coverage at the room level,
  "hundreds in total");
* exhibit RoIs strictly inside selected rooms that deliberately do
  **not** cover them — the Figure 4 situation — including the Mona Lisa
  RoI inside the Salle des États.

All coordinates are metres in an arbitrary local frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.indoor.cells import BoundaryKind, Cell, CellBoundary, CellSpace
from repro.louvre.zones import (
    WING_FLOORS,
    WINGS,
    ZONES,
    ZONE_SALLE_DES_ETATS,
    ZoneSpec,
)
from repro.spatial.geometry import BBox, Point, Polygon

#: Area footprints (min_x, min_y, max_x, max_y).  Denon and Richelieu
#: are the long south/north wings, Sully the east square, Napoleon the
#: central reception area under the Pyramide; Napoleon meets all three.
WING_FOOTPRINTS: Dict[str, BBox] = {
    "denon": BBox(0.0, 0.0, 200.0, 50.0),
    "richelieu": BBox(0.0, 70.0, 200.0, 120.0),
    "napoleon": BBox(200.0, 0.0, 250.0, 120.0),
    "sully": BBox(250.0, 0.0, 310.0, 120.0),
}

#: Share of a room's area jointly covered by its exhibit RoIs (kept well
#: below 1 so the RoI layer demonstrably violates the full-coverage
#: hypothesis).
ROI_ROOM_SHARE = 0.18


def wing_cell_id(wing: str) -> str:
    """Cell id of a wing in the building layer."""
    return "wing:{}".format(wing)

def floor_cell_id(wing: str, floor: int) -> str:
    """Cell id of one building's floor level (e.g. ``floor:denon:1``)."""
    return "floor:{}:{}".format(wing, floor)


def room_cell_id(zone_id: str, index: int) -> str:
    """Cell id of the ``index``-th room of a zone."""
    return "room:{}:{}".format(zone_id.replace("zone", ""), index)


def roi_cell_id(zone_id: str, room_index: int, roi_index: int) -> str:
    """Cell id of an exhibit RoI."""
    return "roi:{}:{}:{}".format(zone_id.replace("zone", ""),
                                 room_index, roi_index)


#: The Mona Lisa room and RoI get stable, human-readable identifiers.
SALLE_DES_ETATS_ROOM = room_cell_id(ZONE_SALLE_DES_ETATS, 0)
MONA_LISA_ROI = "roi:mona-lisa"


@dataclass(frozen=True)
class _ZonePlacement:
    """Where one zone strip landed."""

    spec: ZoneSpec
    bbox: BBox


class LouvreFloorplan:
    """Builds and holds the full synthetic primal-space geometry.

    Attributes (after construction):
        complex_space: the Building Complex layer cell space (1 cell).
        wing_space: the Building layer (4 wings).
        floor_space: the Floor layer (18 wing-floors).
        zone_space: the thematic-zone semantic layer (52 zones).
        room_space: the Room layer (hundreds of rooms).
        roi_space: the RoI layer (hundreds of exhibit areas).
    """

    def __init__(self, validate_geometry: bool = False) -> None:
        self.complex_space = CellSpace("louvre-museum",
                                       validate_geometry=False)
        self.wing_space = CellSpace("wings", validate_geometry=False)
        self.floor_space = CellSpace("floors",
                                     validate_geometry=validate_geometry)
        self.zone_space = CellSpace("zones",
                                    validate_geometry=validate_geometry)
        self.room_space = CellSpace("rooms",
                                    validate_geometry=validate_geometry)
        self.roi_space = CellSpace("rois",
                                   validate_geometry=validate_geometry)
        self._zone_placements: Dict[str, _ZonePlacement] = {}
        self._rooms_of_zone: Dict[str, List[str]] = {}
        self._rois_of_room: Dict[str, List[str]] = {}
        self._build_complex()
        self._build_wings()
        self._build_floors()
        self._build_zones()
        self._build_rooms()
        self._build_rois()

    # ------------------------------------------------------------------
    # layer construction
    # ------------------------------------------------------------------
    def _build_complex(self) -> None:
        footprint = BBox.union_of(WING_FOOTPRINTS.values())
        self.complex_space.add_cell(Cell(
            cell_id="louvre",
            name="Louvre Museum",
            semantic_class="BuildingComplex",
            geometry=footprint.to_polygon(),
        ))

    def _build_wings(self) -> None:
        for wing in WINGS:
            self.wing_space.add_cell(Cell(
                cell_id=wing_cell_id(wing),
                name=wing.capitalize(),
                semantic_class="Building",
                geometry=WING_FOOTPRINTS[wing].to_polygon(),
            ))
        for other in ("denon", "richelieu", "sully"):
            self.wing_space.add_boundary(CellBoundary(
                boundary_id="wb:napoleon-{}".format(other),
                source=wing_cell_id("napoleon"),
                target=wing_cell_id(other),
                kind=BoundaryKind.OPENING,
            ))

    def _build_floors(self) -> None:
        for wing in WINGS:
            for floor in WING_FLOORS[wing]:
                self.floor_space.add_cell(Cell(
                    cell_id=floor_cell_id(wing, floor),
                    name="{} floor {}".format(wing.capitalize(), floor),
                    semantic_class="Floor",
                    geometry=WING_FOOTPRINTS[wing].to_polygon(),
                    floor=floor,
                ))
        # Vertical circulation within each wing.
        for wing in WINGS:
            floors = WING_FLOORS[wing]
            for lower, upper in zip(floors, floors[1:]):
                self.floor_space.add_boundary(CellBoundary(
                    boundary_id="fs:{}:{}to{}".format(wing, lower, upper),
                    source=floor_cell_id(wing, lower),
                    target=floor_cell_id(wing, upper),
                    kind=BoundaryKind.STAIRCASE,
                ))
        # Horizontal circulation through the Napoleon area.
        for other in ("denon", "richelieu", "sully"):
            for floor in WING_FLOORS["napoleon"]:
                if floor not in WING_FLOORS[other]:
                    continue
                self.floor_space.add_boundary(CellBoundary(
                    boundary_id="fo:napoleon-{}:{}".format(other, floor),
                    source=floor_cell_id("napoleon", floor),
                    target=floor_cell_id(other, floor),
                    kind=BoundaryKind.OPENING,
                ))

    def _zones_of_wing_floor(self, wing: str,
                             floor: int) -> List[ZoneSpec]:
        return [z for z in ZONES if z.wing == wing and z.floor == floor]

    def _build_zones(self) -> None:
        for wing in WINGS:
            footprint = WING_FOOTPRINTS[wing]
            horizontal = footprint.width >= footprint.height
            for floor in WING_FLOORS[wing]:
                specs = self._zones_of_wing_floor(wing, floor)
                if not specs:
                    continue
                strips = _partition(footprint, len(specs), horizontal)
                for spec, strip in zip(specs, strips):
                    self._zone_placements[spec.zone_id] = _ZonePlacement(
                        spec, strip)
                    self.zone_space.add_cell(Cell(
                        cell_id=spec.zone_id,
                        name=spec.theme,
                        semantic_class="ThematicZone",
                        geometry=strip.to_polygon(),
                        floor=floor,
                        attributes=dict(spec.attributes,
                                        wing=wing,
                                        in_dataset=spec.in_dataset),
                    ))

    def _build_rooms(self) -> None:
        for spec in ZONES:
            placement = self._zone_placements[spec.zone_id]
            horizontal = placement.bbox.width >= placement.bbox.height
            strips = _partition(placement.bbox, spec.room_count,
                                horizontal)
            room_ids: List[str] = []
            for index, strip in enumerate(strips):
                room_id = room_cell_id(spec.zone_id, index)
                name = "{} room {}".format(spec.theme, index + 1)
                if room_id == SALLE_DES_ETATS_ROOM:
                    name = "Salle des États"
                self.room_space.add_cell(Cell(
                    cell_id=room_id,
                    name=name,
                    semantic_class="Room",
                    geometry=strip.to_polygon(),
                    floor=spec.floor,
                    attributes={"zone": spec.zone_id, "wing": spec.wing},
                ))
                room_ids.append(room_id)
            self._rooms_of_zone[spec.zone_id] = room_ids
            for first, second in zip(room_ids, room_ids[1:]):
                self.room_space.add_boundary(CellBoundary(
                    boundary_id="door:{}-{}".format(first, second),
                    source=first,
                    target=second,
                    kind=BoundaryKind.DOOR,
                ))
        self._link_rooms_across_zones()

    def _link_rooms_across_zones(self) -> None:
        """Door between the boundary rooms of consecutive zone strips.

        The Salle des États zone's link towards the Grande Galerie is
        one-way (exit only), reproducing the Section 3.2 flow rule.
        """
        for wing in WINGS:
            for floor in WING_FLOORS[wing]:
                specs = self._zones_of_wing_floor(wing, floor)
                for left, right in zip(specs, specs[1:]):
                    source = self._rooms_of_zone[left.zone_id][-1]
                    target = self._rooms_of_zone[right.zone_id][0]
                    # Only the Salle des États → Grande Galerie link is
                    # one-way (exit only); entering from the other side
                    # (large-formats gallery) stays permitted, matching
                    # checkpoint042 in the zone-level topology.
                    one_way = left.zone_id == ZONE_SALLE_DES_ETATS
                    self.room_space.add_boundary(CellBoundary(
                        boundary_id="door:{}-{}".format(source, target),
                        source=source,
                        target=target,
                        kind=BoundaryKind.DOOR,
                        bidirectional=not one_way,
                    ))

    def _build_rois(self) -> None:
        for spec in ZONES:
            # Exhibit RoIs are modelled for exhibition zones (those with
            # a popularity weight) — services/passages have none.
            roi_count = 2 if "popularity" in spec.attributes else 0
            if spec.zone_id == ZONE_SALLE_DES_ETATS:
                roi_count = 1  # the Mona Lisa wall dominates the room
            if roi_count == 0:
                continue
            for room_index, room_id in enumerate(
                    self._rooms_of_zone[spec.zone_id]):
                room_cell = self.room_space.cell(room_id)
                boxes = _roi_boxes(room_cell.geometry.bbox(), roi_count)
                ids: List[str] = []
                for roi_index, box in enumerate(boxes):
                    if room_id == SALLE_DES_ETATS_ROOM and roi_index == 0:
                        roi_id = MONA_LISA_ROI
                        roi_name = "Mona Lisa"
                    else:
                        roi_id = roi_cell_id(spec.zone_id, room_index,
                                             roi_index)
                        roi_name = "{} exhibit {}.{}".format(
                            spec.theme, room_index + 1, roi_index + 1)
                    self.roi_space.add_cell(Cell(
                        cell_id=roi_id,
                        name=roi_name,
                        semantic_class="ExhibitRoI",
                        geometry=box.to_polygon(),
                        floor=spec.floor,
                        attributes={"room": room_id,
                                    "zone": spec.zone_id},
                    ))
                    ids.append(roi_id)
                self._rois_of_room[room_id] = ids

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def rooms_of_zone(self, zone_id: str) -> Sequence[str]:
        """Room ids of a zone, in strip order."""
        return tuple(self._rooms_of_zone[zone_id])

    def rois_of_room(self, room_id: str) -> Sequence[str]:
        """RoI ids of a room (empty for rooms without exhibits)."""
        return tuple(self._rois_of_room.get(room_id, ()))

    def zone_bbox(self, zone_id: str) -> BBox:
        """The zone strip's bounding box."""
        return self._zone_placements[zone_id].bbox

    def room_count(self) -> int:
        """Total rooms."""
        return len(self.room_space)

    def roi_count(self) -> int:
        """Total exhibit RoIs."""
        return len(self.roi_space)


def _partition(bbox: BBox, count: int, horizontal: bool) -> List[BBox]:
    """Split a box into ``count`` equal strips (full coverage)."""
    if count < 1:
        raise ValueError("cannot partition into {} strips".format(count))
    strips: List[BBox] = []
    if horizontal:
        step = bbox.width / count
        for i in range(count):
            strips.append(BBox(bbox.min_x + i * step, bbox.min_y,
                               bbox.min_x + (i + 1) * step, bbox.max_y))
    else:
        step = bbox.height / count
        for i in range(count):
            strips.append(BBox(bbox.min_x, bbox.min_y + i * step,
                               bbox.max_x, bbox.min_y + (i + 1) * step))
    return strips


def _roi_boxes(room: BBox, count: int) -> List[BBox]:
    """Small exhibit boxes strictly inside a room.

    Each RoI takes :data:`ROI_ROOM_SHARE` of the room's area, placed
    along the room's long axis with clear margins, so the room is
    never fully covered (Figure 4) and RoIs never touch walls (they
    are strictly ``inside``, not ``coveredBy``).
    """
    horizontal = room.width >= room.height
    slots = _partition(room, count, horizontal)
    boxes: List[BBox] = []
    import math

    # Per-dimension scale sqrt(share) makes the RoIs jointly cover
    # exactly ROI_ROOM_SHARE of the room's area.
    scale = math.sqrt(ROI_ROOM_SHARE)
    for slot in slots:
        center = slot.center()
        half_w = slot.width * scale / 2.0
        half_h = slot.height * scale / 2.0
        boxes.append(BBox(center.x - half_w, center.y - half_h,
                          center.x + half_w, center.y + half_h))
    return boxes
