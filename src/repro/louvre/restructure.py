"""Sparsity repair: restructuring indicative visits (Section 5).

    "it would be of interest to account for the problem of data
    sparsity by restructuring longer indicative visits from the actual
    fragmented zone sequences."

Two mechanisms are provided:

* :func:`stitch_fragments` — within one visitor-day, the app may have
  produced several disconnected trajectory fragments (it was switched
  off in between).  Fragments are stitched into a single visit by
  inserting topology-inferred connecting tuples
  (:func:`repro.core.inference.infer_missing_presence` generalised
  across fragment borders).
* :func:`indicative_visits` — corpus-level: stitched visits are
  clustered by (hierarchy-aware) sequence similarity with k-medoids,
  and each cluster's medoid becomes an *indicative visit* — a longer,
  representative zone sequence standing in for its fragmented
  cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.annotations import AnnotationSet
from repro.core.inference import InferenceReport, infer_missing_presence
from repro.core.timeutil import day_index
from repro.core.trajectory import SemanticTrajectory, Trace, TraceEntry
from repro.indoor.hierarchy import LayerHierarchy
from repro.indoor.nrg import NodeRelationGraph
from repro.mining.profiling import k_medoids
from repro.mining.similarity import (
    hierarchy_similarity,
    normalized_edit_similarity,
)


@dataclass
class StitchReport:
    """Outcome of a corpus stitching run."""

    input_trajectories: int = 0
    stitched_visits: int = 0
    fragments_joined: int = 0
    inference: InferenceReport = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.inference is None:
            self.inference = InferenceReport()


def _group_key(trajectory: SemanticTrajectory,
               epoch: float) -> Tuple[str, int]:
    return (trajectory.mo_id, day_index(trajectory.t_start, epoch))


def stitch_fragments(trajectories: Sequence[SemanticTrajectory],
                     nrg: NodeRelationGraph,
                     epoch: float = 0.0,
                     max_path_length: int = 8,
                     report: Optional[StitchReport] = None
                     ) -> List[SemanticTrajectory]:
    """Merge same-visitor same-day fragments into stitched visits.

    Fragments are concatenated in time order; the seam gets an
    unobserved-transition marker which the missing-presence inference
    then replaces with the topology-explained path, so stitched visits
    are *longer and denser* than any fragment — the "longer indicative
    visits" the paper asks for.

    Args:
        trajectories: the fragmented corpus.
        nrg: the accessibility NRG of the detection layer.
        epoch: timestamp of day 0 for visitor-day grouping.
        max_path_length: inference search horizon across seams.
        report: optional mutable counters.
    """
    if report is None:
        report = StitchReport()
    report.input_trajectories = len(trajectories)
    groups: Dict[Tuple[str, int], List[SemanticTrajectory]] = {}
    for trajectory in trajectories:
        groups.setdefault(_group_key(trajectory, epoch),
                          []).append(trajectory)

    stitched: List[SemanticTrajectory] = []
    for fragments in groups.values():
        fragments.sort(key=lambda t: t.t_start)
        merged = _concatenate(fragments)
        if len(fragments) > 1:
            report.fragments_joined += len(fragments) - 1
        repaired = infer_missing_presence(
            merged, nrg, max_path_length=max_path_length,
            report=report.inference)
        stitched.append(repaired)
    report.stitched_visits = len(stitched)
    stitched.sort(key=lambda t: (t.mo_id, t.t_start))
    return stitched


def _concatenate(fragments: Sequence[SemanticTrajectory]
                 ) -> SemanticTrajectory:
    """Time-ordered concatenation of one visitor-day's fragments."""
    entries: List[TraceEntry] = []
    annotations = AnnotationSet.empty()
    for fragment in fragments:
        annotations = annotations.union(fragment.annotations)
        for entry in fragment.trace:
            if entries and entry.transition is None \
                    and entry.state != entries[-1].state:
                entry = TraceEntry(
                    "unobserved:{}->{}".format(entries[-1].state,
                                               entry.state),
                    entry.state, entry.t_start, entry.t_end,
                    entry.annotations, entry.transition_annotations)
            entries.append(entry)
    return SemanticTrajectory(fragments[0].mo_id, Trace(entries),
                              annotations)


@dataclass(frozen=True)
class IndicativeVisit:
    """One representative stitched visit.

    Attributes:
        sequence: the medoid's distinct zone sequence.
        medoid: the medoid trajectory itself.
        cluster_size: number of stitched visits it represents.
        mean_similarity: mean similarity of members to the medoid.
    """

    sequence: Tuple[str, ...]
    medoid: SemanticTrajectory
    cluster_size: int
    mean_similarity: float


def indicative_visits(stitched: Sequence[SemanticTrajectory],
                      k: int,
                      hierarchy: Optional[LayerHierarchy] = None,
                      min_length: int = 2,
                      seed: int = 0) -> List[IndicativeVisit]:
    """Cluster stitched visits and return each cluster's medoid.

    Args:
        stitched: visits (ideally from :func:`stitch_fragments`).
        k: number of indicative visits wanted.
        hierarchy: when given, similarity is hierarchy-aware (sibling
            zones count as near-matches).
        min_length: visits with fewer distinct zones are ignored —
            single-zone fragments carry no route information.
        seed: k-medoids seed.

    Raises:
        ValueError: when fewer than ``k`` usable visits exist.
    """
    usable = [t for t in stitched
              if len(t.distinct_state_sequence()) >= min_length]
    if len(usable) < k:
        raise ValueError(
            "need at least k={} visits with >= {} zones, have {}".format(
                k, min_length, len(usable)))
    sequences = [t.distinct_state_sequence() for t in usable]

    def distance(a, b) -> float:
        if hierarchy is not None:
            return 1.0 - hierarchy_similarity(hierarchy, a, b)
        return 1.0 - normalized_edit_similarity(a, b)

    assignment, medoid_indices = k_medoids(sequences, k,
                                           distance=distance, seed=seed)
    visits: List[IndicativeVisit] = []
    for cluster, medoid_index in enumerate(medoid_indices):
        members = [i for i, a in enumerate(assignment) if a == cluster]
        similarities = [1.0 - distance(sequences[medoid_index],
                                       sequences[i])
                        for i in members]
        visits.append(IndicativeVisit(
            sequence=tuple(sequences[medoid_index]),
            medoid=usable[medoid_index],
            cluster_size=len(members),
            mean_similarity=(sum(similarities) / len(similarities)
                             if similarities else 0.0),
        ))
    visits.sort(key=lambda v: -v.cluster_size)
    return visits
