"""The Louvre case study (Section 4 of the paper).

* :mod:`repro.louvre.zones` — the 52 thematic zones (Section 4.1), the
  30-zone accessibility topology "extracted by hand on site"
  (Figure 6), and the named zones of the paper's worked examples
  (E/P/S/C on floor −2; 60853/60854 near the Salle des États).
* :mod:`repro.louvre.floorplan` — a synthetic primal-space geometry:
  four areas (Richelieu, Denon, Sully wings + the Napoleon area), five
  floors, zone strips, rooms, and exhibit RoIs.
* :mod:`repro.louvre.space` — the full layered indoor graph of
  Figure 2: Building Complex → Building → Floor → Room → RoI, plus the
  thematic-zone semantic layer between Floor and Room.
* :mod:`repro.louvre.dataset` — a seeded synthetic visit corpus whose
  headline statistics match Section 4.1.
"""

from repro.louvre.zones import (
    DATASET_ZONE_IDS,
    GROUND_FLOOR_ZONE_IDS,
    ZONES,
    ZoneSpec,
    zone_accessibility_edges,
)
from repro.louvre.floorplan import LouvreFloorplan
from repro.louvre.space import LouvreSpace
from repro.louvre.dataset import (
    DatasetParameters,
    LouvreDatasetGenerator,
    PAPER_STATISTICS,
)
from repro.louvre.restructure import (
    IndicativeVisit,
    StitchReport,
    indicative_visits,
    stitch_fragments,
)

__all__ = [
    "DATASET_ZONE_IDS",
    "GROUND_FLOOR_ZONE_IDS",
    "ZONES",
    "ZoneSpec",
    "zone_accessibility_edges",
    "LouvreFloorplan",
    "LouvreSpace",
    "DatasetParameters",
    "LouvreDatasetGenerator",
    "PAPER_STATISTICS",
    "IndicativeVisit",
    "StitchReport",
    "indicative_visits",
    "stitch_fragments",
]
