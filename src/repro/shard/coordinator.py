"""The scatter-gather coordinator over N shard executors.

:class:`ShardCoordinator` presents the *engine* surface the service
front-ends already speak (``execute_command`` /
``execute_command_safely`` plus the duck-typed ``cache_stamp`` /
``health_roster`` / ``shard_report`` hooks), so the threaded server,
the asyncio server and :class:`~repro.service.executor.LocalBinding`
all serve a sharded corpus without a line of transport change.

Behind that surface every session is split across N shard executors —
in-process registries or remote ``repro serve`` workers — by
consistent hashing of **global document ids** (:mod:`repro.shard
.ring`).  The coordinator reuses the executor's route/merge phases
verbatim (:func:`~repro.service.executor.route_page` and friends), so
validation, cursors, page shapes and error strings are byte-identical
to the single-process engine; only the execute phase differs:

* ``RunQuery`` — per-shard cursor-translated page streams, k-way
  merged on ``(order key, global doc id)`` (:mod:`repro.shard.merge`);
* ``Explain`` — per-shard ``StoreStats`` summed into the logical
  corpus statistics, planned against a stats-only store proxy;
* ``MinePatterns`` — count-distribution PrefixSpan: local mining at a
  pigeonhole-lowered threshold, then an exact ``CountPatterns``
  recount of the candidate union;
* ``Similarity`` — the merged sequence list scattered as
  ``SimilarityBlock`` row ranges and stitched;
* ``Flow`` / ``Summary`` — additive partial aggregates combined
  (``SummaryParts`` carries visitor *sets* so distinct counts stay
  exact);
* ``BuildDataset`` — the pipeline runs once on the coordinator with a
  fan-out sink that routes each built batch to its shards as
  ``IngestDocuments``.

Nothing about placement is persisted beyond the shard count: shard
``k`` ingests its documents in global order, so local↔global id
translation is re-derived from the router alone (see
:class:`~repro.shard.ring.ShardTopology`).

Each shard may be backed by a *replica set* rather than a single
binding (pass a list per shard): reads rotate across live replicas
behind per-replica circuit breakers and fail over on transport
faults, writes fan out primary-first, and an optional request
deadline (``deadline_ms`` on any command) is decremented and
forwarded so a hung replica costs bounded time instead of a hung
client (:mod:`repro.resilience`).  Read commands sent with
``allow_partial`` degrade instead of failing when a whole shard is
lost: the merged live-shard result carries a
``degraded: {"missing_shards": [...]}`` marker.
"""

from __future__ import annotations

import bisect
import itertools
import math
import threading
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import replace
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.mining.prefixspan import SequentialPattern
from repro.resilience.policy import Deadline, DeadlineExceeded, RetryPolicy
from repro.resilience.replicas import (
    ReplicaUnavailable,
    ShardTarget,
    is_shard_loss,
)
from repro.service import protocol as P
from repro.service.executor import (
    MAX_PAGE_SIZE,
    CommandError,
    PageSpec,
    assemble_page,
    decode_page_cursor,
    route_page,
)
from repro.service.registry import MAX_FINISHED_JOBS, BuildJob, JobState
from repro.shard.merge import merge_sorted
from repro.shard.ring import (
    DEFAULT_REPLICAS,
    HashRing,
    ShardStateError,
    ShardTopology,
)
from repro.storage.query import Query
from repro.storage.results import ORDER_KEYS

#: Process-wide coordinator serial for response-cache stamps: two
#: coordinator instances must never produce colliding stamps.
_COORD_SERIALS = itertools.count(1)


class _CoordSession:
    """Coordinator-side bookkeeping of one sharded session."""

    def __init__(self, name: str, shard_count: int,
                 router: Callable[[int], int]) -> None:
        self.name = name
        self.space_name: Optional[str] = None
        self.doc_count = 0
        self.topology = ShardTopology(shard_count, router)
        #: Bumped per ingest batch / restore — the cache-stamp
        #: component standing in for the stores' versions.
        self.generation = 0
        #: Serializes ingestion so global ids are assigned in order.
        self.ingest_lock = threading.Lock()
        self._building = 0
        self._failed = False

    @property
    def state(self) -> str:
        """Mirrors :attr:`repro.service.registry.Session.state`."""
        if self._building:
            return "building"
        if self._failed:
            return "failed"
        return "ready" if self.doc_count else "empty"


class _StatsProxy:
    """A stats-only stand-in for :class:`TrajectoryStore`.

    Carries exactly the store surface the query planner touches while
    *explaining* (cardinalities, corpus size, time span); the fetch
    closures the plan builds are lazy and never fire during
    ``explain()``, so no document access is needed — the coordinator
    plans the logical corpus from summed per-shard statistics alone.
    """

    def __init__(self, doc_count: int, states: Dict[str, int],
                 annotations: Dict, mos: Dict[str, int],
                 time_span: Optional[Tuple[float, float]]) -> None:
        self._doc_count = doc_count
        self._states = states
        self._annotations = annotations
        self._mos = mos
        self._time_span = time_span

    def __len__(self) -> int:
        return self._doc_count

    def all_ids(self):
        return frozenset(range(self._doc_count))

    def state_cardinalities(self) -> Dict[str, int]:
        return dict(self._states)

    def annotation_cardinalities(self) -> Dict:
        return dict(self._annotations)

    def mo_cardinalities(self) -> Dict[str, int]:
        return dict(self._mos)

    def ids_of_mo(self, mo_id: str):
        return range(self._mos.get(str(mo_id), 0))

    def time_span(self) -> Optional[Tuple[float, float]]:
        return self._time_span


class _CoordStream:
    """Coordinator-side bookkeeping of one relayed stream.

    The shards own segmentation and durability (each runs a relay
    stream: segment + journal locally, hand closed episodes back in
    acks); the coordinator owns routing — harvested episodes enter
    the corpus through the global-id ingest fan-out.  Relay delivery
    is at-least-once, so ``seen`` deduplicates episodes by canonical
    content before they are ingested.
    """

    def __init__(self, session_name: str, stream: str,
                 shard_count: int, max_open_events: int) -> None:
        self.session_name = session_name
        self.stream = stream
        #: Per-shard back-pressure bound (the OpenStream shape).
        self.max_open_events = max_open_events
        self.lock = threading.Lock()
        #: Canonical bytes of every episode already in the corpus.
        self.seen: set = set()
        #: Last-known buffered events per shard (pre-checked before a
        #: scatter so no shard partially acks an overloaded append).
        self.shard_open: List[int] = [0] * shard_count
        #: Last-known per-shard watermarks; the stream's watermark is
        #: their minimum (None until every shard has one).
        self.shard_marks: List[Optional[float]] = [None] * shard_count
        #: Cached gauges for the health report (refreshed on appends
        #: and status polls — no shard round-trip from health).
        self.counters: Dict[str, int] = {
            "events_acked": 0, "episodes_stored": 0,
            "late_events": 0, "dropped_late": 0}

    @property
    def watermark(self) -> Optional[float]:
        if any(mark is None for mark in self.shard_marks):
            return None
        return min(self.shard_marks)


class _CoordStreamTable:
    """Duck-typed stand-in for the registry's ``_stream_manager``
    attribute, so ``GET /v1/health`` reports stream gauges for a
    sharded front-end through the same hook."""

    def __init__(self, coordinator: "ShardCoordinator") -> None:
        self._coordinator = coordinator

    def report(self) -> Dict:
        return self._coordinator._stream_report()


class ShardCoordinator:
    """Scatter-gather engine over N shard executors.

    Args:
        backends: one entry per shard — either a single protocol
            binding (anything with ``call(command) -> Response``
            raising :class:`~repro.service.protocol.ServiceError`,
            e.g. :class:`~repro.service.executor.LocalBinding` or
            :class:`~repro.service.client.ServiceClient`), or a
            **list** of bindings forming that shard's replica set
            (index 0 is the primary — it owns the shard's journal).
        router: global doc id → shard index; defaults to a
            :class:`~repro.shard.ring.HashRing` over ``len(backends)``
            shards.
        replicas: virtual nodes of the default ring.
        autosave: checkpoint every shard (``SaveSession``) after a
            successful build — on for durable shard sets.
        retry: per-shard read retry/backoff policy
            (:class:`~repro.resilience.policy.RetryPolicy`; a
            default one when None).
        breaker_factory: per-replica circuit-breaker constructor
            (:class:`~repro.resilience.breaker.CircuitBreaker` by
            default) — injectable for tests and tuning.

    Raises:
        ShardStateError: when sessions found on the shards do not
            match the routing-derived document layout.
    """

    def __init__(self, backends: List,
                 router: Optional[Callable[[int], int]] = None,
                 replicas: int = DEFAULT_REPLICAS,
                 autosave: bool = False,
                 retry: Optional[RetryPolicy] = None,
                 breaker_factory: Optional[Callable] = None) -> None:
        if not backends:
            raise ValueError("need at least one shard backend")
        groups = [list(group) if isinstance(group, (list, tuple))
                  else [group] for group in backends]
        #: Primaries, one per shard (the pre-replica surface).
        self.backends = [group[0] for group in groups]
        self.shard_count = len(groups)
        total_replicas = sum(len(group) for group in groups)
        # One shared guard pool for every deadline-bounded replica
        # call: sized so a full scatter with one hung replica per
        # shard still has threads for the failover tries.
        self._guard = ThreadPoolExecutor(
            max_workers=2 * total_replicas + 4,
            thread_name_prefix="repro-shard-guard")
        self.targets = [ShardTarget(shard, group, retry=retry,
                                    breaker_factory=breaker_factory,
                                    executor=self._guard)
                        for shard, group in enumerate(groups)]
        self.ring = HashRing(self.shard_count, replicas=replicas)
        self.router = router if router is not None \
            else self.ring.shard_of
        self.autosave = autosave
        self._serial = next(_COORD_SERIALS)
        self._sessions: Dict[str, _CoordSession] = {}
        self._streams: Dict[Tuple[str, str], _CoordStream] = {}
        # Health's stream hook (wire.health_payload duck-types the
        # registry attribute of the same name).
        self._stream_manager = _CoordStreamTable(self)
        self._lock = threading.Lock()
        self._jobs: Dict[str, BuildJob] = {}
        self._job_ids = itertools.count(1)
        self._pool = ThreadPoolExecutor(
            max_workers=max(2, self.shard_count),
            thread_name_prefix="repro-shard")
        # The request deadline travels by thread-local so the twenty
        # call sites below need no signature change; _scatter captures
        # it before hopping threads.
        self._deadlines = threading.local()
        self._stats_lock = threading.Lock()
        self._shard_stats = [{"requests": 0, "errors": 0,
                              "inflight": 0}
                             for _ in range(self.shard_count)]
        #: "shard-k/name" → restore failure message (local shards).
        self.restore_errors: Dict[str, str] = {}
        self._discover_sessions()

    # ------------------------------------------------------------------
    # construction sugar
    # ------------------------------------------------------------------
    @classmethod
    def local(cls, shard_count: int,
              persist_dir: Optional[str] = None, fsync: bool = True,
              router: Optional[Callable[[int], int]] = None,
              replicas: int = DEFAULT_REPLICAS,
              replicas_per_shard: int = 1,
              retry: Optional[RetryPolicy] = None,
              breaker_factory: Optional[Callable] = None
              ) -> "ShardCoordinator":
        """A coordinator over ``shard_count`` in-process registries.

        With a ``persist_dir``, shard ``k`` journals to
        ``<persist_dir>/shard-k`` and the root carries a ``shard.json``
        manifest; reopening the root with a different shard count
        raises :class:`~repro.shard.ring.ShardStateError` (run
        ``repro rebalance`` to re-split).

        ``replicas_per_shard > 1`` adds standby registries per shard:
        each reads the same snapshot + WAL directory at boot but never
        writes it (:class:`SessionRegistry(standby=True)
        <repro.service.registry.SessionRegistry>`), staying current
        through the coordinator's write fan-out.
        """
        from repro.service.executor import LocalBinding
        from repro.service.registry import SessionRegistry
        from repro.shard.rebalance import check_manifest, shard_home

        if replicas_per_shard < 1:
            raise ValueError("replicas_per_shard must be >= 1")
        if persist_dir is not None:
            check_manifest(persist_dir, shard_count, replicas)
        backends = []
        registries = []
        for shard in range(shard_count):
            home = shard_home(persist_dir, shard) \
                if persist_dir is not None else None
            registry = SessionRegistry(persist_dir=home, fsync=fsync)
            registries.append(registry)
            group: List = [LocalBinding(registry)]
            for _ in range(1, replicas_per_shard):
                standby = SessionRegistry(persist_dir=home,
                                          fsync=fsync, standby=True)
                group.append(LocalBinding(standby))
            backends.append(group if replicas_per_shard > 1
                            else group[0])
        coordinator = cls(backends, router=router, replicas=replicas,
                          autosave=persist_dir is not None,
                          retry=retry,
                          breaker_factory=breaker_factory)
        for shard, registry in enumerate(registries):
            for name, message in registry.restore_errors.items():
                coordinator.restore_errors[
                    "shard-{}/{}".format(shard, name)] = message
        return coordinator

    # ------------------------------------------------------------------
    # shard RPC plumbing
    # ------------------------------------------------------------------
    #: Mutating commands — fanned to every replica of the shard so
    #: in-memory standbys track the live corpus.
    _WRITE_ALL = (P.IngestDocuments, P.DropSession, P.RestoreSession)
    #: Commands only the journal owner may execute.
    _PRIMARY_ONLY = (P.SaveSession,)

    def _deadline(self) -> Optional[Deadline]:
        """The calling thread's request deadline (None outside a
        deadline-carrying command)."""
        return getattr(self._deadlines, "value", None)

    def _call(self, shard: int, command: P.Command,
              deadline: Optional[Deadline] = None) -> P.Response:
        """One shard call with saturation accounting, routed through
        the shard's replica set (balance/failover for reads, fan-out
        for writes, primary-only for checkpoints)."""
        if deadline is None:
            deadline = self._deadline()
        target = self.targets[shard]
        stats = self._shard_stats[shard]
        with self._stats_lock:
            stats["requests"] += 1
            stats["inflight"] += 1
        try:
            if isinstance(command, self._WRITE_ALL):
                return target.call_write(command, deadline)
            if isinstance(command, self._PRIMARY_ONLY):
                return target.call_primary(command, deadline)
            return target.call_read(command, deadline)
        except Exception:
            with self._stats_lock:
                stats["errors"] += 1
            raise
        finally:
            with self._stats_lock:
                stats["inflight"] -= 1

    def _scatter(self, commands: List[Optional[P.Command]],
                 partial: bool = False,
                 missing: Optional[List[int]] = None) -> List:
        """Run one command per shard concurrently (``None`` skips a
        shard).  Raises the lowest-indexed shard's failure, so error
        relay is deterministic regardless of completion order.

        With ``partial``, a shard lost to transport faults or an
        exhausted replica set (:func:`~repro.resilience.replicas
        .is_shard_loss`) yields ``None`` in its slot — and its index
        in ``missing`` — instead of failing the scatter; application
        errors still raise.
        """
        deadline = self._deadline()
        futures = [None if command is None
                   else self._pool.submit(self._call, shard, command,
                                          deadline)
                   for shard, command in enumerate(commands)]
        results: List = []
        failure: Optional[BaseException] = None
        for shard, future in enumerate(futures):
            if future is None:
                results.append(None)
                continue
            # The replica layer bounds each call; the grace window
            # only fires if a scatter worker itself wedges.
            grace = None if deadline is None \
                else max(0.0, deadline.remaining()) + 0.5
            try:
                results.append(future.result(timeout=grace))
                continue
            except FuturesTimeout:
                error: BaseException = DeadlineExceeded(
                    "shard {} did not answer within the "
                    "deadline".format(shard))
            except BaseException as caught:
                error = caught
            if partial and is_shard_loss(error):
                if missing is not None:
                    missing.append(shard)
                results.append(None)
                continue
            if failure is None:
                failure = error
            results.append(None)
        if failure is not None:
            raise failure
        return results

    def _scatter_same(self, command: P.Command) -> List:
        return self._scatter([command] * self.shard_count)

    # ------------------------------------------------------------------
    # session bookkeeping
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        """Session names, insertion-ordered."""
        with self._lock:
            return list(self._sessions)

    def _held(self, name: str) -> _CoordSession:
        with self._lock:
            session = self._sessions.get(name)
        if session is None:
            raise CommandError(
                "unknown_session",
                "no session named {!r}; sessions: {}".format(
                    name, ", ".join(self.names()) or "(none)"))
        return session

    def _create_session(self, name: str,
                        space: Optional[str] = None) -> _CoordSession:
        with self._lock:
            session = self._sessions.get(name)
            created = session is None
            if created:
                session = _CoordSession(name, self.shard_count,
                                        self.router)
                session.space_name = space
                self._sessions[name] = session
            elif session.space_name is None and space is not None:
                session.space_name = space
        if created:
            # Materialize the session on *every* shard up front so
            # scattered reads never 404 on a shard that received no
            # documents yet.
            self._scatter_same(P.IngestDocuments(
                session=name, docs=[], space=session.space_name))
        return session

    def _adopt_layout(self, name: str, per_shard: List[int],
                      space: Optional[str]) -> _CoordSession:
        """Adopt a session the shards already hold (discovery or
        restore), validating the counts against the routing."""
        session = _CoordSession(name, self.shard_count, self.router)
        session.space_name = space
        session.doc_count = sum(per_shard)
        session.generation = 1
        expected = session.topology.counts(session.doc_count)
        if expected != per_shard:
            raise ShardStateError(
                "session {!r}: shard document counts {} do not match "
                "the routing-derived layout {} for {} shards; run "
                "'repro rebalance' to re-split the corpus".format(
                    name, per_shard, expected, self.shard_count))
        return session

    def _discover_sessions(self) -> None:
        """Adopt sessions the shard set restored from disk."""
        listings = self._scatter_same(P.ListSessions())
        per_shard: List[Dict[str, P.SessionInfo]] = [
            {info.name: info for info in listing.sessions}
            for listing in listings]
        names: List[str] = []
        for shard_map in per_shard:
            for name in shard_map:
                if name not in names:
                    names.append(name)
        for name in names:
            counts = [len_of.get(name) for len_of in per_shard]
            space = next((info.space for info in counts
                          if info is not None
                          and info.space is not None), None)
            session = self._adopt_layout(
                name,
                [0 if info is None else info.trajectories
                 for info in counts],
                space)
            with self._lock:
                self._sessions[name] = session
            missing = [shard for shard, info in enumerate(counts)
                       if info is None]
            if missing:
                self._scatter([
                    P.IngestDocuments(session=name, docs=[],
                                      space=space)
                    if shard in missing else None
                    for shard in range(self.shard_count)])

    # ------------------------------------------------------------------
    # engine surface (duck-typed hooks the front-ends consult)
    # ------------------------------------------------------------------
    def cache_stamp(self, session) -> Optional[Tuple]:
        """Response-cache validity stamp (see
        :meth:`ResponseCache.stamp
        <repro.service.wire.ResponseCache.stamp>`)."""
        if not isinstance(session, str):
            return None
        with self._lock:
            held = self._sessions.get(session)
        if held is None:
            return None
        return (session, self._serial, held.generation)

    def health_roster(self) -> List[Dict]:
        """Per-session roster for ``GET /v1/health``."""
        with self._lock:
            sessions = list(self._sessions.values())
        return [{"name": session.name, "state": session.state,
                 "trajectories": session.doc_count}
                for session in sessions]

    def shard_report(self) -> List[Dict]:
        """Per-shard fan-out and saturation counters for
        ``GET /v1/health``."""
        with self._stats_lock:
            return [{"shard": shard, "requests": stats["requests"],
                     "errors": stats["errors"],
                     "inflight": stats["inflight"]}
                    for shard, stats in enumerate(self._shard_stats)]

    def breaker_report(self) -> List[Dict]:
        """Per-replica circuit-breaker states for ``GET /v1/ready``
        (one entry per shard×replica)."""
        report: List[Dict] = []
        for target in self.targets:
            report.extend(target.report())
        return report

    def heal_replica(self, shard: int, replica: int) -> None:
        """Re-admit a replica to its shard's read rotation (called by
        the supervisor after a restarted process replayed its
        journal, or by tests after reviving a faulty wire)."""
        self.targets[shard].heal(replica)

    def close(self) -> None:
        """Shut the scatter and guard pools down (no more calls)."""
        self._pool.shutdown(wait=False)
        self._guard.shutdown(wait=False)
        for target in self.targets:
            target.close()

    # ------------------------------------------------------------------
    # ingestion (global-id assignment + routed fan-out)
    # ------------------------------------------------------------------
    def _ingest_locked(self, session: _CoordSession,
                       docs: List[Dict]) -> None:
        """Route one already-validated batch (caller holds the
        session's ingest lock)."""
        if not docs:
            return
        start = session.doc_count
        session.topology.extend_to(start + len(docs))
        buckets: List[List[Dict]] = [[] for _ in
                                     range(self.shard_count)]
        for offset, doc in enumerate(docs):
            buckets[self.router(start + offset)].append(doc)
        self._scatter([
            P.IngestDocuments(session=session.name, docs=bucket,
                              space=session.space_name)
            if bucket else None
            for bucket in buckets])
        session.doc_count += len(docs)
        session.generation += 1

    def _ingest_documents(self,
                          command: P.IngestDocuments) -> P.Response:
        from repro.core.trajectory import SemanticTrajectory

        session = self._create_session(command.session,
                                       space=command.space)
        try:  # validate before any shard mutates
            for item in command.docs:
                SemanticTrajectory.from_dict(item)
        except (KeyError, TypeError, ValueError) as error:
            raise CommandError(
                "bad_request",
                "unparseable document: {}".format(error))
        with session.ingest_lock:
            self._ingest_locked(session, list(command.docs))
        return P.Ingested(session=command.session,
                          count=len(command.docs),
                          total=session.doc_count)

    # ------------------------------------------------------------------
    # builds (pipeline once, fan the sink out)
    # ------------------------------------------------------------------
    def _build(self, command: P.BuildDataset) -> P.Response:
        if command.source not in ("louvre", "csv"):
            raise CommandError(
                "bad_request",
                "unknown source {!r}; one of: louvre, csv".format(
                    command.source))
        if command.source == "csv" and not command.path:
            raise CommandError("bad_request", "csv source needs a path")
        session = self._create_session(command.session,
                                       space="LouvreSpace")
        name = command.session

        def target(job: BuildJob) -> None:
            from repro.core.builder import TrajectoryBuilder
            from repro.persist.session import revive_space
            from repro.pipeline import Pipeline
            from repro.pipeline.cache import DEFAULT_CACHE

            with session.ingest_lock:
                session._building += 1
                try:
                    space = revive_space(session.space_name)
                    if command.source == "louvre":
                        from repro.pipeline.sources import louvre_source
                        stream = louvre_source(space,
                                               scale=command.scale)
                    else:
                        from repro.pipeline.sources import csv_source
                        stream = csv_source(command.path)
                    builder = TrajectoryBuilder(
                        space.dataset_zone_nrg())
                    sink = _FanoutSinkStage(self, session)
                    pipeline = Pipeline(
                        builder.stages(streaming=command.streaming)
                        + [sink],
                        batch_size=command.batch_size,
                        workers=command.workers,
                        executor=command.executor,
                        cache=DEFAULT_CACHE if command.cache
                        else None)
                    job._pipeline = pipeline
                    pipeline.run(stream, collect=False)
                    session._failed = False
                    if self.autosave:
                        self._scatter_same(
                            P.SaveSession(session=name))
                except BaseException:
                    session._failed = True
                    raise
                finally:
                    session._building -= 1

        with self._lock:
            job = BuildJob("job-{}".format(next(self._job_ids)), name,
                           target)
            self._jobs[job.job_id] = job
            finished = [job_id for job_id, held in self._jobs.items()
                        if held.state in (JobState.DONE,
                                          JobState.FAILED)]
            for job_id in finished[:max(0, len(finished)
                                        - MAX_FINISHED_JOBS)]:
                del self._jobs[job_id]
        job._start()
        if command.wait:
            job.wait()
        return P.JobInfo(job_id=job.job_id, session=job.session,
                         state=job.state.value, error=job.error,
                         metrics=P.JobInfo.metrics_dict(job.metrics))

    def _job_status(self, command: P.JobStatus) -> P.Response:
        with self._lock:
            job = self._jobs.get(command.job_id)
        if job is None:
            raise CommandError("unknown_job",
                               "no job {!r}".format(command.job_id))
        return P.JobInfo(job_id=job.job_id, session=job.session,
                         state=job.state.value, error=job.error,
                         metrics=P.JobInfo.metrics_dict(job.metrics))

    # ------------------------------------------------------------------
    # session lifecycle commands
    # ------------------------------------------------------------------
    def _list_sessions(self, command: P.ListSessions) -> P.Response:
        with self._lock:
            sessions = list(self._sessions.values())
        return P.SessionList(sessions=[
            P.SessionInfo(name=session.name,
                          trajectories=session.doc_count,
                          state=session.state,
                          space=session.space_name)
            for session in sessions])

    def _drop_session(self, command: P.DropSession) -> P.Response:
        with self._lock:
            if command.session not in self._sessions:
                raise CommandError(
                    "unknown_session",
                    "no session named {!r}".format(command.session))
        for shard in range(self.shard_count):
            try:
                self._call(shard,
                           P.DropSession(session=command.session))
            except P.ServiceError as error:
                if error.code != "unknown_session":
                    raise
        with self._lock:
            self._sessions.pop(command.session, None)
            for key in [key for key in self._streams
                        if key[0] == command.session]:
                del self._streams[key]
        return P.Dropped(session=command.session)

    def _save_session(self, command: P.SaveSession) -> P.Response:
        self._held(command.session)
        saved = self._scatter_same(
            P.SaveSession(session=command.session))
        return P.SessionSaved(
            session=command.session,
            snapshot=saved[0].snapshot,
            trajectories=sum(info.trajectories for info in saved),
            total_bytes=sum(info.total_bytes for info in saved))

    def _restore_session(self,
                         command: P.RestoreSession) -> P.Response:
        restored = self._scatter_same(
            P.RestoreSession(session=command.session))
        space = next((info.space for info in restored
                      if info.space is not None), None)
        try:
            session = self._adopt_layout(
                command.session,
                [info.trajectories for info in restored], space)
        except ShardStateError as error:
            raise CommandError("persistence", str(error))
        with self._lock:
            self._sessions[command.session] = session
        return P.SessionInfo(name=command.session,
                             trajectories=session.doc_count,
                             state=session.state,
                             space=session.space_name)

    # ------------------------------------------------------------------
    # RunQuery: translated cursors + k-way merge
    # ------------------------------------------------------------------
    def _validate_query(self, query: Optional[Dict]) -> None:
        """Parse-check a query payload with the executor's message
        (parsing never touches the store, so no shard is needed)."""
        if query is None:
            return
        try:
            Query.from_dict(None, query)  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError) as error:
            raise CommandError(
                "bad_request",
                "unparseable query: {}".format(error))

    def _shard_boundary(self, spec: PageSpec, boundary: Optional[Tuple],
                        last_doc_id: Optional[int],
                        globals_list: List[int]
                        ) -> Tuple[Optional[str], Optional[Callable]]:
        """Translate the global resume boundary into shard terms.

        Returns ``(cursor, gid_filter)``: a forged shard cursor token
        (``None`` to stream the shard from the start) plus an optional
        coordinator-side filter over ``(hit, global id)`` for the one
        boundary shape a strict shard-local keyset cannot express.

        The translation leans on the local↔global order isomorphism:
        shard-local ids enumerate the shard's global ids in ascending
        order, so a global boundary maps to the local index bracketing
        it (``bisect``) — documents ingested after the cursor was
        issued only ever extend the mapping past the boundary.
        """
        if boundary is None and last_doc_id is None:
            return None, None
        if spec.order_by is None:
            # Natural order: resume past the last *global* id served.
            local = bisect.bisect_right(globals_list, last_doc_id) - 1
            if local < 0:
                return None, None  # every shard doc is past the boundary
            return P.encode_cursor({"f": spec.fingerprint,
                                    "k": local}), None
        value, gid = boundary
        if spec.order_by == "doc_id":
            if value == gid:
                # A genuine doc_id keyset token (okv == id): localize
                # both components so the shard's composite (id, id)
                # comparison lands on the same split.
                if spec.descending:
                    local = bisect.bisect_left(globals_list, gid)
                    if local >= len(globals_list):
                        return None, None  # all shard docs precede it
                else:
                    local = bisect.bisect_right(globals_list, gid) - 1
                    if local < 0:
                        return None, None
                return P.encode_cursor({"f": spec.fingerprint,
                                        "okv": local,
                                        "k": local}), None
            # Forged token (okv diverges from the id): no local
            # composite reproduces it — filter coordinator-side.
            if spec.descending:
                return None, (lambda hit, g: (g, g) < (value, gid))
            return None, (lambda hit, g: (g, g) > (value, gid))
        key_fn = ORDER_KEYS[spec.order_by]
        if spec.descending:
            # Ties on the order value must keep exactly g < gid:
            # local index bisect_left(gid) splits them identically.
            local = bisect.bisect_left(globals_list, gid)
            return P.encode_cursor({"f": spec.fingerprint,
                                    "okv": value, "k": local}), None
        local = bisect.bisect_right(globals_list, gid) - 1
        if local < 0:
            # Every shard doc sorts after the boundary id; "order
            # value strictly greater, or equal value" has no strict
            # local keyset — filter on the global composite instead.
            return None, (lambda hit, g:
                          (key_fn(hit), g) > (value, gid))
        return P.encode_cursor({"f": spec.fingerprint, "okv": value,
                                "k": local}), None

    def _merge_key(self, spec: Optional[PageSpec]) -> Callable:
        """``(hit, global id) -> sort key`` for the k-way merge."""
        if spec is None or spec.order_by is None:
            return lambda hit, gid: gid
        if spec.order_by == "doc_id":
            return lambda hit, gid: (gid, gid)
        key_fn = ORDER_KEYS[spec.order_by]
        return lambda hit, gid: (key_fn(hit), gid)

    def _shard_stream(self, shard: int, first_page: P.QueryPage,
                      command: P.RunQuery, session: _CoordSession,
                      key_of: Callable,
                      gid_filter: Optional[Callable],
                      totals: List[Optional[int]],
                      missing: Optional[List[int]] = None
                      ) -> Iterator[Tuple]:
        """One shard's hit stream as ``(merge key, global Hit)``
        pairs, following the shard's own ``next_cursor`` chain
        lazily.  With a ``missing`` list (the *allow_partial* mode),
        losing the shard mid-walk ends the stream and records the
        shard instead of raising."""
        page = first_page
        while True:
            if page.total is not None:
                totals[shard] = page.total
            for hit in page.hits:
                gid = session.topology.global_for(shard, hit.doc_id)
                if gid_filter is not None \
                        and not gid_filter(hit, gid):
                    continue
                promoted = P.Hit(doc_id=gid,
                                 trajectory=hit.trajectory)
                yield key_of(hit, gid), promoted
            if page.next_cursor is None:
                return
            try:
                page = self._call(shard,
                                  replace(command,
                                          cursor=page.next_cursor,
                                          include_total=False))
            except Exception as error:
                if missing is not None and is_shard_loss(error):
                    missing.append(shard)
                    return
                raise

    def _scatter_pages(self, session: _CoordSession,
                       query: Optional[Dict], limit: int,
                       order_by: Optional[str], descending: bool,
                       want_total: bool,
                       spec: Optional[PageSpec] = None,
                       boundary: Optional[Tuple] = None,
                       last_doc_id: Optional[int] = None,
                       partial: bool = False
                       ) -> Tuple[Iterator, List[Optional[int]],
                                  List[int]]:
        """Scatter the first page to every shard and return the
        merged hit iterator, the per-shard totals slots, and the
        missing-shard list (mutated lazily as the iterator is
        consumed — read it only after the merge is exhausted)."""
        session.topology.extend_to(session.doc_count)
        commands: List[P.RunQuery] = []
        filters: List[Optional[Callable]] = []
        for shard in range(self.shard_count):
            cursor: Optional[str] = None
            gid_filter: Optional[Callable] = None
            if spec is not None:
                cursor, gid_filter = self._shard_boundary(
                    spec, boundary, last_doc_id,
                    session.topology.globals_of(shard))
            commands.append(P.RunQuery(
                session=session.name, query=query, limit=limit,
                cursor=cursor, offset=0, order_by=order_by,
                descending=descending, include_total=want_total))
            filters.append(gid_filter)
        missing: List[int] = []
        first_pages = self._scatter(commands, partial=partial,
                                    missing=missing)
        totals: List[Optional[int]] = [None] * self.shard_count
        key_of = self._merge_key(spec)
        streams = [
            self._shard_stream(shard, first_pages[shard],
                               commands[shard], session, key_of,
                               filters[shard], totals,
                               missing=missing if partial else None)
            for shard in range(self.shard_count)
            if first_pages[shard] is not None]
        return (merge_sorted(streams, descending=descending), totals,
                missing)

    @staticmethod
    def _degraded(missing: List[int]) -> Optional[Dict]:
        """The ``degraded`` response marker (None when whole)."""
        if not missing:
            return None
        return {"missing_shards": sorted(set(missing))}

    def _run_query(self, command: P.RunQuery) -> P.Response:
        # -- route: the executor's shared validation, verbatim
        session = self._held(command.session)
        spec = route_page(command)
        self._validate_query(command.query)
        boundary, last_doc_id = decode_page_cursor(command, spec)

        # -- execute: translated per-shard streams, k-way merged.
        # The executor applies ``offset`` on ordered pages and on
        # cursor-less natural pages, but never on a natural-order
        # resume — replicated here so the skip count matches.
        skip = command.offset if (spec.order_by is not None
                                  or command.cursor is None) else 0
        needed = skip + spec.limit + 1
        want_total = command.include_total and command.cursor is None
        merged, totals, missing = self._scatter_pages(
            session, command.query,
            min(MAX_PAGE_SIZE, needed),
            command.order_by, command.descending, want_total,
            spec=spec, boundary=boundary, last_doc_id=last_doc_id,
            partial=command.allow_partial)
        window: List[P.Hit] = []
        try:
            for hit in merged:
                window.append(hit)
                if len(window) >= needed:
                    break
        except TypeError:
            raise CommandError(
                "bad_cursor",
                "cursor boundary does not order against this key")

        # -- merge: the executor's shared page assembly, verbatim
        page, next_cursor = assemble_page(window[skip:], spec)
        total = sum(count or 0 for count in totals) if want_total \
            else None
        return P.QueryPage(hits=page, total=total,
                           next_cursor=next_cursor,
                           degraded=self._degraded(missing))

    def _merged_hits(self, session: _CoordSession,
                     query: Optional[Dict],
                     partial: bool = False
                     ) -> Tuple[Iterator[P.Hit], List[int]]:
        """Every matching hit in global doc-id order (the corpus
        stream behind the mining commands) plus the lazily filled
        missing-shard list."""
        merged, _, missing = self._scatter_pages(
            session, query, MAX_PAGE_SIZE, None, False, False,
            partial=partial)
        return merged, missing

    # ------------------------------------------------------------------
    # Explain: summed statistics + the stats proxy
    # ------------------------------------------------------------------
    def _combined_stats(self, name: str) -> _StatsProxy:
        from repro.core.annotations import AnnotationKind

        replies = self._scatter_same(P.StoreStats(session=name))
        doc_count = 0
        states: Dict[str, int] = {}
        mos: Dict[str, int] = {}
        annotations: Dict = {}
        span: Optional[List[float]] = None
        for reply in replies:
            doc_count += reply.doc_count
            for state, count in reply.states.items():
                states[state] = states.get(state, 0) + count
            for mo, count in reply.mos.items():
                mos[mo] = mos.get(mo, 0) + count
            for kind, value, count in reply.annotations:
                key = (AnnotationKind(kind), value)
                annotations[key] = annotations.get(key, 0) + count
            if reply.time_span is not None:
                if span is None:
                    span = list(reply.time_span)
                else:
                    span[0] = min(span[0], reply.time_span[0])
                    span[1] = max(span[1], reply.time_span[1])
        return _StatsProxy(doc_count, states, annotations, mos,
                           None if span is None else tuple(span))

    def _explain(self, command: P.Explain) -> P.Response:
        self._held(command.session)
        proxy = self._combined_stats(command.session)
        try:
            if command.query is None:
                query = Query(proxy)  # type: ignore[arg-type]
            else:
                query = Query.from_dict(
                    proxy, command.query)  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError) as error:
            raise CommandError(
                "bad_request",
                "unparseable query: {}".format(error))
        return P.Explanation(plan=query.explain())

    def _store_stats(self, command: P.StoreStats) -> P.Response:
        self._held(command.session)
        proxy = self._combined_stats(command.session)
        annotations = [[kind.value, value, count]
                       for (kind, value), count
                       in proxy.annotation_cardinalities().items()]
        annotations.sort(key=lambda item: (item[0], repr(item[1])))
        span = proxy.time_span()
        return P.StoreStatsInfo(
            doc_count=len(proxy),
            states=proxy.state_cardinalities(),
            annotations=annotations,
            mos=proxy.mo_cardinalities(),
            time_span=None if span is None else list(span))

    # ------------------------------------------------------------------
    # mining: partial aggregates + combine
    # ------------------------------------------------------------------
    def _mine_patterns(self, command: P.MinePatterns) -> P.Response:
        session = self._held(command.session)
        probe = self._scatter_same(P.CountPatterns(
            session=command.session, query=command.query))
        total = sum(reply.sequences for reply in probe)
        if total == 0:
            # patterns_over returns [] for an empty corpus before any
            # parameter validation — mirrored for byte parity.
            return P.PatternList(patterns=[])
        if command.max_length < 1:
            raise CommandError("bad_request",
                               "max_length must be at least 1")
        if command.min_support >= 1:
            support = int(command.min_support)
        else:
            support = max(2, int(math.ceil(command.min_support
                                           * total)))
        # Pigeonhole: a pattern with global support >= S has local
        # support >= ceil(S / N) on at least one shard, so mining
        # every shard at the lowered threshold finds every candidate.
        local_support = -(-support // self.shard_count)
        mined = self._scatter_same(P.MinePatterns(
            session=command.session, query=command.query,
            min_support=local_support,
            max_length=command.max_length))
        candidates = sorted({tuple(pattern.sequence)
                             for reply in mined
                             for pattern in reply.patterns})
        if not candidates:
            return P.PatternList(patterns=[])
        recount = self._scatter_same(P.CountPatterns(
            session=command.session, query=command.query,
            patterns=[list(candidate) for candidate in candidates]))
        patterns = []
        for index, candidate in enumerate(candidates):
            count = sum(reply.supports[index] for reply in recount)
            if count >= support:
                patterns.append(SequentialPattern(
                    sequence=candidate, support=count))
        patterns.sort(key=lambda p: (-p.support, p.sequence))
        return P.PatternList(patterns=patterns)

    def _count_patterns(self, command: P.CountPatterns) -> P.Response:
        self._held(command.session)
        replies = self._scatter_same(command)
        supports = [sum(reply.supports[index] for reply in replies)
                    for index in range(len(command.patterns))]
        return P.PatternSupports(
            supports=supports,
            sequences=sum(reply.sequences for reply in replies))

    def _similarity(self, command: P.Similarity) -> P.Response:
        session = self._held(command.session)
        merged, _ = self._merged_hits(session, command.query)
        sequences = [hit.trajectory.distinct_state_sequence()
                     for hit in merged]
        size = len(sequences)
        if size == 0:
            return P.SimilarityMatrix(matrix=[])
        # Contiguous row blocks, one per shard; each pair's score
        # depends only on the two sequences + the shared hierarchy,
        # so stitched rows are bit-identical to the full matrix.
        chunk = -(-size // self.shard_count)
        commands = []
        for shard in range(self.shard_count):
            row_start = min(size, shard * chunk)
            row_end = min(size, (shard + 1) * chunk)
            commands.append(P.SimilarityBlock(
                session=command.session, sequences=sequences,
                row_start=row_start, row_end=row_end))
        blocks = self._scatter(commands)
        matrix: List[List[float]] = []
        for block in blocks:
            matrix.extend(block.rows)
        return P.SimilarityMatrix(matrix=matrix)

    def _similarity_block(self,
                          command: P.SimilarityBlock) -> P.Response:
        self._held(command.session)
        size = len(command.sequences)
        if not 0 <= command.row_start <= command.row_end <= size:
            raise CommandError(
                "bad_request",
                "row block [{}, {}) out of range for {} "
                "sequences".format(command.row_start,
                                   command.row_end, size))
        # The sequences are explicit and the hierarchy identical on
        # every shard — any one shard computes the exact block.
        return self._call(0, command)

    def _flow(self, command: P.Flow) -> P.Response:
        from repro.mining.flow import FlowBalance

        self._held(command.session)
        missing: List[int] = []
        replies = self._scatter([command] * self.shard_count,
                                partial=command.allow_partial,
                                missing=missing)
        inflow: Dict[str, int] = {}
        outflow: Dict[str, int] = {}
        starts: Dict[str, int] = {}
        ends: Dict[str, int] = {}
        for reply in replies:
            if reply is None:
                continue
            for balance in reply.balances:
                state = balance.state
                inflow[state] = inflow.get(state, 0) + balance.inflow
                outflow[state] = outflow.get(state, 0) \
                    + balance.outflow
                starts[state] = starts.get(state, 0) \
                    + balance.started_here
                ends[state] = ends.get(state, 0) + balance.ended_here
        balances = [FlowBalance(state, inflow[state], outflow[state],
                                starts[state], ends[state])
                    for state in inflow]
        balances.sort(key=lambda b: (-abs(b.imbalance), b.state))
        return P.FlowList(balances=balances,
                          degraded=self._degraded(missing))

    def _sequences(self, command: P.Sequences) -> P.Response:
        session = self._held(command.session)
        merged, missing = self._merged_hits(
            session, command.query, partial=command.allow_partial)
        sequences = [hit.trajectory.distinct_state_sequence()
                     for hit in merged]
        return P.SequenceList(sequences=sequences,
                              degraded=self._degraded(missing))

    def _summary_parts(self, command: P.SummaryParts,
                       partial: bool = False
                       ) -> Tuple[int, List[str], int, int,
                                  Optional[float], Optional[float],
                                  List[int]]:
        missing: List[int] = []
        replies = self._scatter(
            [P.SummaryParts(session=command.session,
                            query=command.query)] * self.shard_count,
            partial=partial, missing=missing)
        replies = [reply for reply in replies if reply is not None]
        visits = sum(reply.visits for reply in replies)
        mo_ids: set = set()
        for reply in replies:
            mo_ids.update(reply.mo_ids)
        detections = sum(reply.detections for reply in replies)
        transitions = sum(reply.transitions for reply in replies)
        maxima = [reply.max_visit_duration for reply in replies
                  if reply.max_visit_duration is not None]
        minima = [reply.min_visit_duration for reply in replies
                  if reply.min_visit_duration is not None]
        return (visits, sorted(mo_ids), detections, transitions,
                max(maxima) if maxima else None,
                min(minima) if minima else None, missing)

    def _summary(self, command: P.Summary) -> P.Response:
        self._held(command.session)
        (visits, mo_ids, detections, transitions, longest, shortest,
         missing) = self._summary_parts(
            P.SummaryParts(session=command.session,
                           query=command.query),
            partial=command.allow_partial)
        degraded = self._degraded(missing)
        if visits == 0:
            # corpus_summary's exact empty shape (int/float split
            # matters for canonical JSON).
            return P.SummaryStats(stats={
                "visits": 0, "visitors": 0, "detections": 0,
                "transitions": 0, "max_visit_duration": 0.0,
                "min_visit_duration": 0.0}, degraded=degraded)
        return P.SummaryStats(stats={
            "visits": visits, "visitors": len(mo_ids),
            "detections": detections, "transitions": transitions,
            "max_visit_duration": longest,
            "min_visit_duration": shortest}, degraded=degraded)

    def _summary_parts_command(self,
                               command: P.SummaryParts) -> P.Response:
        self._held(command.session)
        (visits, mo_ids, detections, transitions, longest, shortest,
         _missing) = self._summary_parts(command)
        return P.SummaryPartsInfo(
            visits=visits, mo_ids=mo_ids, detections=detections,
            transitions=transitions, max_visit_duration=longest,
            min_visit_duration=shortest)

    # ------------------------------------------------------------------
    # streams: relayed shard segmentation, routed episode harvest
    # ------------------------------------------------------------------
    def _stream_report(self) -> Dict:
        """Aggregate stream gauges for ``GET /v1/health`` from the
        coordinator's cached state (no shard round-trip; the late
        counters are as of the last append or status poll)."""
        with self._lock:
            states = list(self._streams.values())
        live = [state.watermark for state in states
                if state.watermark is not None]
        return {
            "open": len(states),
            "events_acked": sum(s.counters["events_acked"]
                                for s in states),
            "open_events": sum(sum(s.shard_open) for s in states),
            "episodes_stored": sum(s.counters["episodes_stored"]
                                   for s in states),
            "late_events": sum(s.counters["late_events"]
                               for s in states),
            "dropped_late": sum(s.counters["dropped_late"]
                                for s in states),
            "watermark_min": min(live) if live else None,
        }

    def _stream_state(self, session_name: str, stream: str,
                      statuses: Optional[List[Dict]] = None
                      ) -> _CoordStream:
        """The coordinator's state for one stream, rebuilt lazily
        after a coordinator restart by polling the shards (they own
        the durable state).  The dedup set is seeded with the whole
        corpus so redelivered episodes are never double-ingested."""
        key = (session_name, stream)
        with self._lock:
            held = self._streams.get(key)
        if held is not None:
            return held
        try:
            session = self._held(session_name)
        except CommandError:
            raise CommandError(
                "unknown_stream",
                "no stream {!r} on session {!r}".format(
                    stream, session_name))
        if statuses is None:
            replies = self._scatter_same(P.StreamStatus(
                session=session_name, stream=stream))
            statuses = [reply.status for reply in replies]
        state = _CoordStream(
            session_name, stream, self.shard_count,
            int(statuses[0].get("max_open_events") or 1))
        merged, _ = self._merged_hits(session, None)
        state.seen = {P.canonical_json(hit.trajectory.to_dict())
                      for hit in merged}
        self._apply_statuses(state, statuses)
        with self._lock:
            return self._streams.setdefault(key, state)

    @staticmethod
    def _apply_statuses(state: _CoordStream,
                        statuses: List[Dict]) -> None:
        for shard, status in enumerate(statuses):
            state.shard_open[shard] = int(
                status.get("open_events") or 0)
            state.shard_marks[shard] = status.get("watermark")
        for key in ("events_acked", "episodes_stored",
                    "late_events", "dropped_late"):
            state.counters[key] = sum(int(status.get(key) or 0)
                                      for status in statuses)

    def _merged_stream_status(self, state: _CoordStream,
                              statuses: List[Dict]) -> Dict:
        """Sum the per-shard snapshots into the logical stream's."""
        merged: Dict = {"session": state.session_name,
                        "stream": state.stream}
        for key in ("open_buffers", "open_events", "events_in",
                    "accepted", "late_events", "dropped_late",
                    "episodes", "events_acked", "episodes_stored",
                    "checkpoints", "pending"):
            merged[key] = sum(int(status.get(key) or 0)
                              for status in statuses)
        drops: Dict[str, int] = {}
        for status in statuses:
            for reason, count in (status.get("drops") or {}).items():
                drops[reason] = drops.get(reason, 0) + int(count)
        merged["drops"] = drops
        marks = [status.get("watermark") for status in statuses]
        merged["watermark"] = (None if any(mark is None
                                           for mark in marks)
                               else min(marks))
        merged["shard_watermarks"] = marks
        merged["durable"] = all(bool(status.get("durable"))
                                for status in statuses)
        merged["max_open_events"] = state.max_open_events
        merged["relay"] = True
        return merged

    def _harvest(self, session: _CoordSession, state: _CoordStream,
                 episode_lists: List[List[Dict]]) -> int:
        """Ingest relayed episodes through the routed fan-out
        (caller holds the stream's lock).  Relay delivery is
        at-least-once, so duplicates are dropped by content."""
        docs: List[Dict] = []
        for episodes in episode_lists:
            for doc in episodes:
                raw = P.canonical_json(doc)
                if raw in state.seen:
                    continue
                state.seen.add(raw)
                docs.append(doc)
        if docs:
            with session.ingest_lock:
                self._ingest_locked(session, docs)
        return len(docs)

    def _harvest_poll(self, session: _CoordSession,
                      state: _CoordStream,
                      shards: List[int]) -> None:
        """Drain pending episodes a shard recovered after a crash
        (an empty append is a pure poll — nothing is journaled)."""
        replies = self._scatter([
            P.AppendEvents(session=state.session_name,
                           stream=state.stream)
            if shard in shards else None
            for shard in range(self.shard_count)])
        self._harvest(session, state,
                      [reply.episodes for reply in replies
                       if reply is not None])

    def _open_stream(self, command: P.OpenStream) -> P.Response:
        if command.checkpoint_every < 1:
            raise CommandError("bad_request",
                               "checkpoint_every must be >= 1")
        if command.max_open_events < 1:
            raise CommandError("bad_request",
                               "max_open_events must be >= 1")
        if command.gap_seconds is not None \
                and command.gap_seconds <= 0:
            raise CommandError("bad_request",
                               "gap_seconds must be > 0")
        session = self._create_session(command.session)
        replies = self._scatter_same(replace(command, relay=True))
        statuses = [reply.status for reply in replies]
        state = self._stream_state(command.session, command.stream,
                                   statuses=statuses)
        with state.lock:
            pending = [shard for shard, status in enumerate(statuses)
                       if int(status.get("pending") or 0)]
            if pending:
                self._harvest_poll(session, state, pending)
                statuses = [reply.status for reply in
                            self._scatter_same(P.StreamStatus(
                                session=command.session,
                                stream=command.stream))]
            self._apply_statuses(state, statuses)
            merged = self._merged_stream_status(state, statuses)
        return P.StreamInfo(session=command.session,
                            stream=command.stream, status=merged)

    def _append_events(self, command: P.AppendEvents) -> P.Response:
        from repro.stream.segmenter import event_from_dict

        state = self._stream_state(command.session, command.stream)
        session = self._held(command.session)
        if command.watermark is not None \
                and not isinstance(command.watermark, (int, float)):
            raise CommandError("bad_request",
                               "watermark must be a number")
        try:  # validate up front so no shard partially acks
            for event in command.events:
                event_from_dict(event)
        except (KeyError, TypeError, ValueError) as error:
            raise CommandError("bad_request",
                               "unparseable event: {}".format(error))
        with state.lock:
            buckets: List[List[Dict]] = [
                [] for _ in range(self.shard_count)]
            for event in command.events:
                shard = self.ring.shard_of_key(str(event["mo_id"]))
                buckets[shard].append(dict(event))
            for shard, bucket in enumerate(buckets):
                if state.shard_open[shard] + len(bucket) \
                        > state.max_open_events:
                    raise CommandError(
                        "overloaded",
                        "shard {} would hold {} open events (cap "
                        "{}); retry after the watermark "
                        "advances".format(
                            shard,
                            state.shard_open[shard] + len(bucket),
                            state.max_open_events))
            # Every shard gets the watermark (even with an empty
            # bucket) so the stream watermark — their minimum —
            # advances; a shard with neither is skipped.
            replies = self._scatter([
                P.AppendEvents(session=command.session,
                               stream=command.stream, events=bucket,
                               watermark=command.watermark)
                if bucket or command.watermark is not None else None
                for bucket in buckets])
            self._harvest(session, state,
                          [reply.episodes for reply in replies
                           if reply is not None])
            episodes_closed = sum(reply.episodes_closed
                                  for reply in replies
                                  if reply is not None)
            for shard, reply in enumerate(replies):
                if reply is None:
                    continue
                state.shard_open[shard] = reply.open_events
                state.shard_marks[shard] = reply.watermark
            state.counters["events_acked"] += len(command.events)
            state.counters["episodes_stored"] += episodes_closed
            return P.EventsAppended(
                session=command.session, stream=command.stream,
                appended=len(command.events),
                episodes_closed=episodes_closed,
                watermark=state.watermark,
                open_events=sum(state.shard_open),
                seq=max([reply.seq for reply in replies
                         if reply is not None] or [0]))

    def _stream_status(self, command: P.StreamStatus) -> P.Response:
        state = self._stream_state(command.session, command.stream)
        replies = self._scatter_same(P.StreamStatus(
            session=command.session, stream=command.stream))
        statuses = [reply.status for reply in replies]
        with state.lock:
            self._apply_statuses(state, statuses)
            merged = self._merged_stream_status(state, statuses)
        return P.StreamInfo(session=command.session,
                            stream=command.stream, status=merged)

    def _close_stream(self, command: P.CloseStream) -> P.Response:
        state = self._stream_state(command.session, command.stream)
        session = self._held(command.session)
        with state.lock:
            replies = self._scatter_same(P.CloseStream(
                session=command.session, stream=command.stream))
            self._harvest(session, state,
                          [reply.episodes for reply in replies])
        with self._lock:
            self._streams.pop((command.session, command.stream),
                              None)
        return P.StreamClosed(
            session=command.session, stream=command.stream,
            episodes_closed=sum(reply.episodes_closed
                                for reply in replies),
            episodes_total=sum(reply.episodes_total
                               for reply in replies),
            events_acked=sum(reply.events_acked
                             for reply in replies))

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    _HANDLERS: Dict = {}

    def execute_command(self, command: P.Command) -> P.Response:
        """Run one command against the sharded engine.

        The same contract as :func:`~repro.service.executor
        .execute_command`: expected failures — including error replies
        relayed from a shard — come back as ``ErrorInfo``; genuine
        bugs propagate.
        """
        from repro.storage.expr import ExprSerializationError

        handler = self._HANDLERS.get(type(command))
        if handler is None:
            return P.ErrorInfo(
                code="bad_request",
                message="unhandled command {!r}".format(command.kind))
        if command.deadline_ms is not None and command.deadline_ms <= 0:
            # Mirrors the executor's check byte for byte.
            return P.ErrorInfo(
                code="deadline_exceeded",
                message="deadline expired before execution began")
        previous = getattr(self._deadlines, "value", None)
        self._deadlines.value = Deadline.of(command)
        try:
            return handler(self, command)
        except CommandError as error:
            return P.ErrorInfo(code=error.code, message=error.message)
        except DeadlineExceeded as error:
            return P.ErrorInfo(code="deadline_exceeded",
                               message=str(error))
        except ReplicaUnavailable as error:
            return P.ErrorInfo(code="unavailable", message=str(error))
        except P.ServiceError as error:
            # A shard's error reply, relayed verbatim.
            return P.ErrorInfo(code=error.code, message=error.message)
        except ExprSerializationError as error:
            return P.ErrorInfo(code="unserializable",
                               message=str(error))
        except P.ProtocolError as error:
            return P.ErrorInfo(code="protocol", message=str(error))
        finally:
            self._deadlines.value = previous

    def execute_command_safely(self,
                               command: P.Command) -> P.Response:
        """:meth:`execute_command` with the wire-boundary
        catch-all."""
        try:
            return self.execute_command(command)
        except Exception as error:
            return P.ErrorInfo(
                code="internal",
                message="{}: {}".format(type(error).__name__, error))


class _FanoutSinkStage:
    """Pipeline sink routing built trajectories to the shards.

    Takes :class:`~repro.pipeline.engine.Stage`'s place at the end of
    the build chain (imported lazily to keep module import light);
    batches arrive in stream order, so global ids are assigned exactly
    as a single-process store sink would.
    """

    def __new__(cls, coordinator: ShardCoordinator,
                session: _CoordSession):
        from repro.pipeline.engine import Stage

        class _Sink(Stage):
            name = "shard-fanout"

            def __init__(self) -> None:
                super().__init__()

            def process(self, batch):
                coordinator._ingest_locked(
                    session,
                    [trajectory.to_dict() for trajectory in batch])
                return list(batch)

        return _Sink()


ShardCoordinator._HANDLERS = {
    P.BuildDataset: ShardCoordinator._build,
    P.JobStatus: ShardCoordinator._job_status,
    P.ListSessions: ShardCoordinator._list_sessions,
    P.DropSession: ShardCoordinator._drop_session,
    P.RunQuery: ShardCoordinator._run_query,
    P.Explain: ShardCoordinator._explain,
    P.MinePatterns: ShardCoordinator._mine_patterns,
    P.Similarity: ShardCoordinator._similarity,
    P.Flow: ShardCoordinator._flow,
    P.Sequences: ShardCoordinator._sequences,
    P.Summary: ShardCoordinator._summary,
    P.IngestDocuments: ShardCoordinator._ingest_documents,
    P.CountPatterns: ShardCoordinator._count_patterns,
    P.SimilarityBlock: ShardCoordinator._similarity_block,
    P.SummaryParts: ShardCoordinator._summary_parts_command,
    P.StoreStats: ShardCoordinator._store_stats,
    P.SaveSession: ShardCoordinator._save_session,
    P.RestoreSession: ShardCoordinator._restore_session,
    P.OpenStream: ShardCoordinator._open_stream,
    P.AppendEvents: ShardCoordinator._append_events,
    P.StreamStatus: ShardCoordinator._stream_status,
    P.CloseStream: ShardCoordinator._close_stream,
}
