"""K-way ordered merge over per-shard result streams.

The scatter-gather read path turns each shard's page stream into an
iterator of ``(sort key, item)`` pairs and merges them here.  Keys are
composites like ``(order value, global doc id)`` whose first element
may be a string, so the usual heapq trick of negating keys for
descending order is unavailable; with shard counts in the single
digits, a linear scan over the current heads is simpler and plenty
fast (O(k) per item against heapq's O(log k), with k ≤ 8).

Keys never tie: every composite ends with the global document id,
unique across shards by construction.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Tuple


def merge_sorted(iterables: Iterable[Iterator[Tuple[Any, Any]]],
                 descending: bool = False) -> Iterator[Any]:
    """Merge already-sorted ``(key, item)`` iterators into one item
    stream, ascending by key (or descending when asked).

    All heads are primed **eagerly** before the first item is
    yielded: the shard read path relies on this to observe every
    shard's first page (and the totals it carries) even when the
    caller stops after a single merged item.

    A ``TypeError`` from comparing keys (e.g. a cursor boundary of
    the wrong type against an order key) propagates to the caller.
    """
    heads = []
    for iterable in iterables:
        iterator = iter(iterable)
        for key, item in iterator:
            heads.append([key, item, iterator])
            break
    pick: Callable = max if descending else min
    while heads:
        entry = pick(heads, key=lambda head: head[0])
        yield entry[1]
        iterator = entry[2]
        for key, item in iterator:
            entry[0] = key
            entry[1] = item
            break
        else:
            heads.remove(entry)
