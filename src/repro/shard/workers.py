"""Process-backed shard workers: one ``repro serve`` per shard.

:class:`ShardWorkerPool` spawns N empty servers (``repro serve
--empty --port 0``), waits for each to announce its bound URL through
an atomically written announce file, and hands the coordinator one
:class:`~repro.service.client.ServiceClient` per worker.  Each worker
owns its slice of the corpus end to end — store, WAL, snapshots — in
``<root>/shard-k``, so a ``kill -9``'d worker restarts from its own
journal with nothing but its announce file to find it again.

Restarts re-bind the worker's *recorded* port (the first boot uses an
ephemeral one): the coordinator's clients hold the URL, so the
replacement process must come back at the same address.

With ``replicas > 1`` each shard additionally gets standby worker
processes (``repro serve --standby``) reading the primary's
``shard-k`` directory: they restore the same snapshot + journal at
boot but never write it, staying current through the coordinator's
write fan-out.  A :class:`~repro.resilience.supervisor
.WorkerSupervisor` built via :meth:`ShardWorkerPool.supervisor`
respawns dead workers and re-admits them to the read rotation.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional

from repro.service.client import ServiceClient

#: Seconds to wait for a worker's announce file on spawn/restart.
SPAWN_TIMEOUT = 30.0


class ShardWorkerError(RuntimeError):
    """A shard worker failed to start or announce itself."""


def _write_announce_path(root: str, shard: int,
                         replica: int = 0) -> str:
    if replica:
        return os.path.join(root,
                            "shard-{}.r{}.url".format(shard, replica))
    return os.path.join(root, "shard-{}.url".format(shard))


class ShardWorker:
    """One shard's server process and its announce bookkeeping."""

    def __init__(self, shard: int, root: str, host: str = "127.0.0.1",
                 fsync: bool = True, verbose: bool = False,
                 replica: int = 0) -> None:
        self.shard = shard
        self.replica = replica
        self.standby = replica > 0
        self.root = root
        self.host = host
        self.fsync = fsync
        self.verbose = verbose
        self.url: Optional[str] = None
        self.port = 0  # pinned to the announced port after first boot
        self.process: Optional[subprocess.Popen] = None
        self.announce_path = _write_announce_path(root, shard,
                                                  replica)
        self.persist_dir = os.path.join(root,
                                        "shard-{}".format(shard))

    # ------------------------------------------------------------------
    def spawn(self) -> None:
        """Start (or restart) the worker and wait for its URL."""
        if os.path.exists(self.announce_path):
            os.unlink(self.announce_path)
        argv = [sys.executable, "-m", "repro.cli", "serve",
                "--empty", "--host", self.host,
                "--port", str(self.port),
                "--persist-dir", self.persist_dir,
                "--url-file", self.announce_path]
        if self.standby:
            argv.append("--standby")
        if self.verbose:
            argv.append("--verbose")
        environment = dict(os.environ)
        package_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        existing = environment.get("PYTHONPATH")
        environment["PYTHONPATH"] = package_root if not existing \
            else package_root + os.pathsep + existing
        self.process = subprocess.Popen(
            argv, env=environment,
            stdout=subprocess.DEVNULL if not self.verbose else None,
            stderr=subprocess.DEVNULL if not self.verbose else None)
        self._await_announce()

    def _read_announce(self) -> Optional[Dict]:
        """The live child's announce record, or None to keep waiting.

        The server writes the file atomically, but the *waiter* must
        still not trust whatever it finds: a ``kill -9`` during a
        previous run can leave a stale file carrying the dead
        incarnation's address, and a crash mid-replace on some
        filesystems surfaces as a truncated or empty file.  A record
        only counts when it parses AND names the pid of the child this
        spawn started — anything else is treated as not-yet-announced
        and re-polled.
        """
        try:
            with open(self.announce_path, "r",
                      encoding="utf-8") as handle:
                announce = json.load(handle)
        except (OSError, ValueError):
            return None  # absent, torn, or half-written
        if not isinstance(announce, dict) \
                or not announce.get("url"):
            return None
        if self.process is not None \
                and announce.get("pid") != self.process.pid:
            return None  # a previous incarnation's stale file
        return announce

    def _await_announce(self) -> None:
        deadline = time.monotonic() + SPAWN_TIMEOUT
        while time.monotonic() < deadline:
            if self.process is not None \
                    and self.process.poll() is not None:
                raise ShardWorkerError(
                    "shard {} worker exited with status {} before "
                    "announcing".format(self.shard,
                                        self.process.returncode))
            announce = self._read_announce()
            if announce is not None:
                self.url = announce["url"]
                self.port = int(self.url.rsplit(":", 1)[1])
                return
            time.sleep(0.05)
        raise ShardWorkerError(
            "shard {} worker did not announce within {}s".format(
                self.shard, SPAWN_TIMEOUT))

    # ------------------------------------------------------------------
    def kill(self, sig: int = signal.SIGKILL) -> None:
        """Deliver a signal to the worker process (SIGKILL by
        default — the crash-recovery drill)."""
        if self.process is not None:
            self.process.send_signal(sig)
            self.process.wait()

    def restart(self) -> None:
        """Respawn a (dead) worker on its recorded port."""
        self.spawn()

    def stop(self) -> None:
        """Terminate the worker gracefully."""
        if self.process is None:
            return
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()

    @property
    def pid(self) -> Optional[int]:
        return None if self.process is None else self.process.pid

    def alive(self) -> bool:
        return self.process is not None \
            and self.process.poll() is None


class ShardWorkerPool:
    """N shard worker processes plus their protocol clients.

    Usable as a context manager; :meth:`backends` plugs straight into
    :class:`~repro.shard.coordinator.ShardCoordinator`.
    """

    def __init__(self, shard_count: int,
                 root: Optional[str] = None,
                 host: str = "127.0.0.1", fsync: bool = True,
                 verbose: bool = False,
                 timeout: float = 60.0,
                 replicas: int = 1) -> None:
        from repro.shard.rebalance import check_manifest

        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.shard_count = shard_count
        self.replicas = replicas
        self._own_root = root is None
        self.root = root if root is not None \
            else tempfile.mkdtemp(prefix="repro-shards-")
        check_manifest(self.root, shard_count)
        self.timeout = timeout
        #: ``replica_sets[shard][replica]`` — index 0 is the primary.
        self.replica_sets = [
            [ShardWorker(shard, self.root, host=host, fsync=fsync,
                         verbose=verbose, replica=replica)
             for replica in range(replicas)]
            for shard in range(shard_count)]
        #: Flat worker list (identical to the replica-free layout
        #: when ``replicas == 1``).
        self.workers = [worker for group in self.replica_sets
                        for worker in group]

    def start(self) -> "ShardWorkerPool":
        started: List[ShardWorker] = []
        try:
            for worker in self.workers:
                worker.spawn()
                started.append(worker)
        except BaseException:
            for worker in started:
                worker.stop()
            raise
        return self

    def backends(self):
        """Coordinator-ready keep-alive clients: one per shard, or
        one replica-set list per shard when ``replicas > 1``."""
        if self.replicas == 1:
            return [ServiceClient(worker.url, timeout=self.timeout)
                    for worker in self.workers]
        return [[ServiceClient(worker.url, timeout=self.timeout)
                 for worker in group]
                for group in self.replica_sets]

    def coordinator(self, **kwargs):
        """A :class:`ShardCoordinator` over this pool's workers."""
        from repro.shard.coordinator import ShardCoordinator

        kwargs.setdefault("autosave", True)
        return ShardCoordinator(self.backends(), **kwargs)

    def supervisor(self, coordinator=None, **kwargs):
        """A :class:`~repro.resilience.supervisor.WorkerSupervisor`
        respawning this pool's dead workers (not started).

        With a ``coordinator``, each successful respawn also heals
        the worker's slot in the read rotation — the restarted
        process replayed the shard's journal, so it is current again.
        """
        from repro.resilience.supervisor import WorkerSupervisor

        def heal(worker: ShardWorker) -> None:
            if coordinator is not None:
                coordinator.heal_replica(worker.shard, worker.replica)

        kwargs.setdefault("on_restart", heal)
        return WorkerSupervisor(self.workers, **kwargs)

    def report(self) -> List[Dict]:
        return [{"shard": worker.shard, "replica": worker.replica,
                 "url": worker.url, "pid": worker.pid,
                 "alive": worker.alive()}
                for worker in self.workers]

    def stop(self, remove_root: bool = False) -> None:
        for worker in self.workers:
            worker.stop()
        if remove_root and self._own_root:
            import shutil

            shutil.rmtree(self.root, ignore_errors=True)

    def __enter__(self) -> "ShardWorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop(remove_root=True)
