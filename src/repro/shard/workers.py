"""Process-backed shard workers: one ``repro serve`` per shard.

:class:`ShardWorkerPool` spawns N empty servers (``repro serve
--empty --port 0``), waits for each to announce its bound URL through
an atomically written announce file, and hands the coordinator one
:class:`~repro.service.client.ServiceClient` per worker.  Each worker
owns its slice of the corpus end to end — store, WAL, snapshots — in
``<root>/shard-k``, so a ``kill -9``'d worker restarts from its own
journal with nothing but its announce file to find it again.

Restarts re-bind the worker's *recorded* port (the first boot uses an
ephemeral one): the coordinator's clients hold the URL, so the
replacement process must come back at the same address.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional

from repro.service.client import ServiceClient

#: Seconds to wait for a worker's announce file on spawn/restart.
SPAWN_TIMEOUT = 30.0


class ShardWorkerError(RuntimeError):
    """A shard worker failed to start or announce itself."""


def _write_announce_path(root: str, shard: int) -> str:
    return os.path.join(root, "shard-{}.url".format(shard))


class ShardWorker:
    """One shard's server process and its announce bookkeeping."""

    def __init__(self, shard: int, root: str, host: str = "127.0.0.1",
                 fsync: bool = True, verbose: bool = False) -> None:
        self.shard = shard
        self.root = root
        self.host = host
        self.fsync = fsync
        self.verbose = verbose
        self.url: Optional[str] = None
        self.port = 0  # pinned to the announced port after first boot
        self.process: Optional[subprocess.Popen] = None
        self.announce_path = _write_announce_path(root, shard)
        self.persist_dir = os.path.join(root,
                                        "shard-{}".format(shard))

    # ------------------------------------------------------------------
    def spawn(self) -> None:
        """Start (or restart) the worker and wait for its URL."""
        if os.path.exists(self.announce_path):
            os.unlink(self.announce_path)
        argv = [sys.executable, "-m", "repro.cli", "serve",
                "--empty", "--host", self.host,
                "--port", str(self.port),
                "--persist-dir", self.persist_dir,
                "--url-file", self.announce_path]
        if self.verbose:
            argv.append("--verbose")
        environment = dict(os.environ)
        package_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        existing = environment.get("PYTHONPATH")
        environment["PYTHONPATH"] = package_root if not existing \
            else package_root + os.pathsep + existing
        self.process = subprocess.Popen(
            argv, env=environment,
            stdout=subprocess.DEVNULL if not self.verbose else None,
            stderr=subprocess.DEVNULL if not self.verbose else None)
        self._await_announce()

    def _await_announce(self) -> None:
        deadline = time.monotonic() + SPAWN_TIMEOUT
        while time.monotonic() < deadline:
            if self.process is not None \
                    and self.process.poll() is not None:
                raise ShardWorkerError(
                    "shard {} worker exited with status {} before "
                    "announcing".format(self.shard,
                                        self.process.returncode))
            if os.path.exists(self.announce_path):
                with open(self.announce_path, "r",
                          encoding="utf-8") as handle:
                    announce = json.load(handle)
                self.url = announce["url"]
                self.port = int(self.url.rsplit(":", 1)[1])
                return
            time.sleep(0.05)
        raise ShardWorkerError(
            "shard {} worker did not announce within {}s".format(
                self.shard, SPAWN_TIMEOUT))

    # ------------------------------------------------------------------
    def kill(self, sig: int = signal.SIGKILL) -> None:
        """Deliver a signal to the worker process (SIGKILL by
        default — the crash-recovery drill)."""
        if self.process is not None:
            self.process.send_signal(sig)
            self.process.wait()

    def restart(self) -> None:
        """Respawn a (dead) worker on its recorded port."""
        self.spawn()

    def stop(self) -> None:
        """Terminate the worker gracefully."""
        if self.process is None:
            return
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()

    @property
    def pid(self) -> Optional[int]:
        return None if self.process is None else self.process.pid

    def alive(self) -> bool:
        return self.process is not None \
            and self.process.poll() is None


class ShardWorkerPool:
    """N shard worker processes plus their protocol clients.

    Usable as a context manager; :meth:`backends` plugs straight into
    :class:`~repro.shard.coordinator.ShardCoordinator`.
    """

    def __init__(self, shard_count: int,
                 root: Optional[str] = None,
                 host: str = "127.0.0.1", fsync: bool = True,
                 verbose: bool = False,
                 timeout: float = 60.0) -> None:
        from repro.shard.rebalance import check_manifest

        self.shard_count = shard_count
        self._own_root = root is None
        self.root = root if root is not None \
            else tempfile.mkdtemp(prefix="repro-shards-")
        check_manifest(self.root, shard_count)
        self.timeout = timeout
        self.workers = [ShardWorker(shard, self.root, host=host,
                                    fsync=fsync, verbose=verbose)
                        for shard in range(shard_count)]

    def start(self) -> "ShardWorkerPool":
        started: List[ShardWorker] = []
        try:
            for worker in self.workers:
                worker.spawn()
                started.append(worker)
        except BaseException:
            for worker in started:
                worker.stop()
            raise
        return self

    def backends(self) -> List[ServiceClient]:
        """One keep-alive client per worker, coordinator-ready."""
        return [ServiceClient(worker.url, timeout=self.timeout)
                for worker in self.workers]

    def coordinator(self, **kwargs):
        """A :class:`ShardCoordinator` over this pool's workers."""
        from repro.shard.coordinator import ShardCoordinator

        kwargs.setdefault("autosave", True)
        return ShardCoordinator(self.backends(), **kwargs)

    def report(self) -> List[Dict]:
        return [{"shard": worker.shard, "url": worker.url,
                 "pid": worker.pid, "alive": worker.alive()}
                for worker in self.workers]

    def stop(self, remove_root: bool = False) -> None:
        for worker in self.workers:
            worker.stop()
        if remove_root and self._own_root:
            import shutil

            shutil.rmtree(self.root, ignore_errors=True)

    def __enter__(self) -> "ShardWorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop(remove_root=True)
