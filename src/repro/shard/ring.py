"""Consistent document routing: the hash ring and derived topology.

Sharding routes every document by its **global id** — the id the
coordinator's logical corpus assigns in ingest order, identical to
what a single-process store would assign.  Routing is a pure function
of ``(global id, shard count, replicas)``: nothing about placement is
ever persisted beyond the shard count, because everything else is
derivable.

:class:`HashRing` is a classic consistent-hash ring with virtual
nodes, so growing the shard count moves only ``~1/N`` of the corpus
(see :mod:`repro.shard.rebalance`).

:class:`ShardTopology` is the other half of the trick: because
routing is deterministic and each shard ingests its subset **in
global order**, shard ``k``'s local document id ``i`` always maps to
the ``i``-th global id routed to ``k``.  The per-shard global-id
lists grow append-only as the corpus grows, so local↔global
translation — the basis of cross-shard cursor translation — is
stable across ingestion, restarts, and resumed pagination walks.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from typing import Callable, List

#: Virtual nodes per shard; enough for a smooth split at small N.
DEFAULT_REPLICAS = 64


class ShardStateError(RuntimeError):
    """The shard set does not match the routing-derived layout.

    Raised when the documents found on disk (or announced by running
    shards) could not have been produced by this coordinator's router
    — e.g. a persist root re-opened with a different shard count.
    The remedy is offline: ``repro rebalance``.
    """


def _hash64(data: bytes) -> int:
    """Stable 64-bit hash (never Python's salted ``hash()``)."""
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


class HashRing:
    """Consistent hashing of global document ids onto shards.

    Args:
        shard_count: number of shards (>= 1).
        replicas: virtual nodes per shard; more replicas → a more
            even split and less movement on resize.
    """

    def __init__(self, shard_count: int,
                 replicas: int = DEFAULT_REPLICAS) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.shard_count = shard_count
        self.replicas = replicas
        points = []
        for shard in range(shard_count):
            for replica in range(replicas):
                token = "shard-{}-replica-{}".format(shard, replica)
                points.append((_hash64(token.encode("ascii")), shard))
        points.sort()
        self._shards = [shard for _, shard in points]
        self._keys = [key for key, _ in points]

    def _locate(self, point: int) -> int:
        index = bisect.bisect_right(self._keys, point)
        if index == len(self._keys):
            index = 0
        return self._shards[index]

    def shard_of(self, doc_id: int) -> int:
        """The shard owning a global document id."""
        return self._locate(_hash64(b"doc-%d" % int(doc_id)))

    def shard_of_key(self, key: str) -> int:
        """The shard owning an arbitrary string key — the same ring,
        a disjoint hash domain.  Used to pin a visitor's live event
        stream to one shard so its segmenter sees every event."""
        return self._locate(_hash64(b"key-" + key.encode("utf-8")))

    def assignments(self, doc_count: int) -> List[int]:
        """``[shard_of(0), ..., shard_of(doc_count - 1)]``."""
        return [self.shard_of(doc_id) for doc_id in range(doc_count)]

    def __repr__(self) -> str:
        return "HashRing(shard_count={}, replicas={})".format(
            self.shard_count, self.replicas)


class ShardTopology:
    """Derived global↔local id mapping for one sharded session.

    Both directions follow from the router alone: walking global ids
    ``0, 1, 2, ...`` and appending each to its shard's list yields,
    for every shard, exactly the local-id → global-id array its store
    built while ingesting in global order.  The arrays only ever grow
    at the tail, so translations computed against an older corpus
    size stay valid forever — the property cursor translation relies
    on.

    Thread-safe: extension happens under a lock; reads of already
    derived prefixes need none (the lists are append-only).
    """

    def __init__(self, shard_count: int,
                 router: Callable[[int], int]) -> None:
        self.shard_count = shard_count
        self.router = router
        self._globals: List[List[int]] = [[] for _ in
                                          range(shard_count)]
        self._derived = 0
        self._lock = threading.Lock()

    def extend_to(self, doc_count: int) -> None:
        """Derive the mapping for global ids below ``doc_count``."""
        if self._derived >= doc_count:
            return
        with self._lock:
            while self._derived < doc_count:
                global_id = self._derived
                shard = self.router(global_id)
                if not 0 <= shard < self.shard_count:
                    raise ValueError(
                        "router sent doc {} to shard {} of {}".format(
                            global_id, shard, self.shard_count))
                self._globals[shard].append(global_id)
                self._derived += 1

    def globals_of(self, shard: int) -> List[int]:
        """Shard ``k``'s local-id → global-id array (do not mutate)."""
        return self._globals[shard]

    def global_for(self, shard: int, local_id: int) -> int:
        """The global id behind one shard-local id (derives more of
        the mapping on demand — e.g. for documents ingested after the
        coordinator last looked)."""
        globals_list = self._globals[shard]
        while len(globals_list) <= local_id:
            self.extend_to(self._derived + 1 + local_id
                           - len(globals_list))
        return globals_list[local_id]

    def counts(self, doc_count: int) -> List[int]:
        """Documents per shard for a corpus of ``doc_count``."""
        self.extend_to(doc_count)
        return [bisect.bisect_left(self._globals[shard], doc_count)
                for shard in range(self.shard_count)]
