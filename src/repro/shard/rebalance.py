"""Offline resharding of a durable shard set (N → M shards).

A shard persist root looks like::

    <root>/shard.json          # {"shard_count": N, "replicas": R}
    <root>/shard-0/<session>/  # shard 0's DurableSession homes
    <root>/shard-1/<session>/
    ...

Routing is a pure function of the global document id, so resharding
never needs the coordinator: :func:`rebalance` reopens every old
shard's snapshot, reassembles the global ingest order by walking the
*old* ring (shard ``k``'s local order enumerates its global ids
ascending), routes each document through the *new* ring, and
checkpoints fresh per-shard stores.  New shards are written to
``shard-new-K`` staging directories first and swapped in only after
every session checkpointed, so a crash mid-rebalance leaves the old
layout intact.

Consistent hashing keeps the work proportional: growing N → N+1 moves
only ``~1/(N+1)`` of the corpus to the new shard; everything else is
rewritten in place but never crosses a shard boundary.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from typing import Dict, List, Optional, Tuple

from repro.shard.ring import (
    DEFAULT_REPLICAS,
    HashRing,
    ShardStateError,
    ShardTopology,
)

#: Manifest file name inside a shard persist root.
MANIFEST = "shard.json"


def shard_home(root: str, shard: int) -> str:
    """Shard ``k``'s registry persist dir under a shard root."""
    return os.path.join(root, "shard-{}".format(shard))


def read_manifest(root: str) -> Optional[Dict]:
    """The shard root's manifest, or ``None`` when absent."""
    path = os.path.join(root, MANIFEST)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def write_manifest(root: str, shard_count: int,
                   replicas: int = DEFAULT_REPLICAS) -> None:
    """Atomically record the root's shard layout."""
    os.makedirs(root, exist_ok=True)
    payload = {"shard_count": shard_count, "replicas": replicas}
    handle = tempfile.NamedTemporaryFile(
        "w", encoding="utf-8", dir=root, suffix=".tmp", delete=False)
    try:
        json.dump(payload, handle)
        handle.flush()
        os.fsync(handle.fileno())
    finally:
        handle.close()
    os.replace(handle.name, os.path.join(root, MANIFEST))


def check_manifest(root: str, shard_count: int,
                   replicas: int = DEFAULT_REPLICAS) -> None:
    """Validate (or establish) a root's manifest for a coordinator
    about to open it with ``shard_count`` shards."""
    manifest = read_manifest(root)
    if manifest is None:
        write_manifest(root, shard_count, replicas)
        return
    if manifest.get("shard_count") != shard_count \
            or manifest.get("replicas", DEFAULT_REPLICAS) != replicas:
        raise ShardStateError(
            "persist root {!r} was written with shard_count={} "
            "replicas={}, but was opened with shard_count={} "
            "replicas={}; run 'repro rebalance' to re-split the "
            "corpus".format(root, manifest.get("shard_count"),
                            manifest.get("replicas", DEFAULT_REPLICAS),
                            shard_count, replicas))


def _session_names(root: str, shard_count: int) -> List[str]:
    """Union of session dir names across the old shard homes, in
    shard-then-listing order (quoted form, as stored on disk)."""
    names: List[str] = []
    for shard in range(shard_count):
        home = shard_home(root, shard)
        if not os.path.isdir(home):
            continue
        for entry in sorted(os.listdir(home)):
            if os.path.isdir(os.path.join(home, entry)) \
                    and entry not in names:
                names.append(entry)
    return names


def rebalance(root: str, new_shard_count: int,
              replicas: int = DEFAULT_REPLICAS,
              fsync: bool = True) -> Dict:
    """Re-split a durable shard root onto ``new_shard_count`` shards.

    Offline only — no coordinator or worker may hold the root open.
    Returns a report dict: per-session document counts, the number of
    documents that moved shards, and the new layout.

    Raises:
        ShardStateError: when the root carries no manifest and no
            shard dirs, or the on-disk documents do not match the old
            ring's routing.
    """
    from urllib.parse import unquote

    from repro.persist.session import DurableSession

    manifest = read_manifest(root)
    if manifest is None:
        raise ShardStateError(
            "persist root {!r} has no {} manifest; nothing to "
            "rebalance".format(root, MANIFEST))
    old_count = int(manifest["shard_count"])
    old_replicas = int(manifest.get("replicas", DEFAULT_REPLICAS))
    old_ring = HashRing(old_count, replicas=old_replicas)
    new_ring = HashRing(new_shard_count, replicas=replicas)

    staged = [os.path.join(root, "shard-new-{}".format(shard))
              for shard in range(new_shard_count)]
    for path in staged:
        if os.path.exists(path):
            shutil.rmtree(path)

    report: Dict = {"root": root, "old_shard_count": old_count,
                    "new_shard_count": new_shard_count,
                    "sessions": {}, "moved": 0}
    for entry in _session_names(root, old_count):
        name = unquote(entry)
        stores: List = []
        space_name: Optional[str] = None
        opened: List[DurableSession] = []
        try:
            for shard in range(old_count):
                home = os.path.join(shard_home(root, shard), entry)
                durable = DurableSession(home, fsync=fsync)
                if durable.exists():
                    opened.append(durable)
                    store, space = durable.open()
                    stores.append(store)
                    if space_name is None:
                        space_name = space
                else:
                    stores.append(None)
            total = sum(len(store) for store in stores
                        if store is not None)
            topology = ShardTopology(old_count, old_ring.shard_of)
            expected = topology.counts(total)
            actual = [0 if store is None else len(store)
                      for store in stores]
            if expected != actual:
                raise ShardStateError(
                    "session {!r}: shard document counts {} do not "
                    "match the ring-derived layout {} for {} "
                    "shards".format(name, actual, expected, old_count))

            # Reassemble the global ingest order from the old layout,
            # then route every document through the new ring.
            cursors = [0] * old_count
            buckets: List[List] = [[] for _ in
                                   range(new_shard_count)]
            moved = 0
            for global_id in range(total):
                old_shard = old_ring.shard_of(global_id)
                document = stores[old_shard].get(cursors[old_shard])
                cursors[old_shard] += 1
                new_shard = new_ring.shard_of(global_id)
                if new_shard != old_shard:
                    moved += 1
                buckets[new_shard].append(document)
        finally:
            for durable in opened:
                durable.close()

        from repro.storage.store import TrajectoryStore

        for shard, bucket in enumerate(buckets):
            home = os.path.join(staged[shard], entry)
            durable = DurableSession(home, fsync=fsync)
            try:
                durable.checkpoint(
                    TrajectoryStore.from_documents(bucket),
                    space=space_name)
            finally:
                durable.close()
        report["sessions"][name] = {
            "documents": total,
            "per_shard": [len(bucket) for bucket in buckets]}
        report["moved"] += moved

    # Swap: drop the old homes, promote the staged ones, restamp.
    for shard in range(old_count):
        home = shard_home(root, shard)
        if os.path.isdir(home):
            shutil.rmtree(home)
    for shard, path in enumerate(staged):
        if os.path.isdir(path):
            os.replace(path, shard_home(root, shard))
        else:
            os.makedirs(shard_home(root, shard), exist_ok=True)
    write_manifest(root, new_shard_count, replicas)
    return report
