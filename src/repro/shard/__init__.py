"""Horizontal sharding: scatter-gather execution over N executors.

The subsystem splits a session's corpus across N shard executors by
consistent hashing of global document ids and makes every read
command shard-transparent — same commands, same bytes out, whichever
engine serves them:

* :mod:`repro.shard.ring` — the consistent-hash ring and the derived
  global↔local id topology;
* :mod:`repro.shard.merge` — the k-way ordered merge under paginated
  scatter-gather reads;
* :mod:`repro.shard.coordinator` — the engine: routed ingest,
  translated cursors, partial-aggregate mining, fan-out builds;
* :mod:`repro.shard.workers` — process-backed shards (one
  ``repro serve`` each) for real isolation and kill -9 recovery;
* :mod:`repro.shard.rebalance` — offline N → M re-splitting of a
  durable shard root.

Each shard may be served by a replica set (primary + standbys) with
read failover, circuit breakers and deadline propagation — the
resilience layer lives in :mod:`repro.resilience` and plugs in
through :class:`~repro.resilience.replicas.ShardTarget`.
"""

from repro.shard.coordinator import ShardCoordinator
from repro.shard.ring import (
    DEFAULT_REPLICAS,
    HashRing,
    ShardStateError,
    ShardTopology,
)
from repro.shard.workers import ShardWorker, ShardWorkerPool

__all__ = [
    "DEFAULT_REPLICAS",
    "HashRing",
    "ShardCoordinator",
    "ShardStateError",
    "ShardTopology",
    "ShardWorker",
    "ShardWorkerPool",
]
